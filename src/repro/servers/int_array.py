"""The integer array server (Section 4.1).

"The integer array server maintains an array of (one word) integers" with
``GetCell`` and ``SetCell`` operations.  It is the very straightforward
data server of the paper: plain two-phase read/write locking and value
logging.  The implementation of ``SetCell`` tracks the paper's Pascal
listing line by line: compute the cell's object id by address arithmetic
off the base of the recoverable segment, ``LockObject(obj, Write)``,
``PinAndBuffer``, assign, ``LogAndUnPin``.

Cells are 1-indexed, as in the paper (``1 <= cellNum <= maxCell``).
"""

from __future__ import annotations

from repro.errors import ServerError
from repro.kernel.disk import PAGE_SIZE
from repro.locking.modes import READ, WRITE
from repro.servers.base import BaseDataServer
from repro.txn.ids import TransactionID

#: WordSize(integer) on the simulated Perq
WORD_SIZE = 4


class IndexOutOfRange(ServerError):
    """The paper's ``IndexOutOfRange`` return code, as an exception."""


class IntegerArrayServer(BaseDataServer):
    """GetCell/SetCell over a recoverable array of one-word integers."""

    TYPE_NAME = "integer_array"
    SEGMENT_PAGES = 5000  # large enough for the Section 5 paging benchmarks

    @property
    def max_cell(self) -> int:
        return self.SEGMENT_PAGES * (PAGE_SIZE // WORD_SIZE)

    def _cell_oid(self, cell: int):
        if not 1 <= cell <= self.max_cell:
            raise IndexOutOfRange(f"cell {cell} outside 1..{self.max_cell}")
        # baseOfArray + (cellNum-1) * size, as in the paper's listing.
        va = self.base_va + (cell - 1) * WORD_SIZE
        return self.library.create_object_id(va, WORD_SIZE)

    def op_set_cell(self, body: dict, tid: TransactionID):
        """SetCell(cellNum, value): sets array[cellNum] to contain value."""
        oid = self._cell_oid(body["cell"])
        lib = self.library
        yield from lib.lock_object(tid, oid, WRITE)
        yield from lib.pin_and_buffer(tid, oid)
        yield from lib.write_object(oid, int(body["value"]))
        yield from lib.log_and_unpin(tid, oid)
        return {"status": "success"}

    def op_get_cell(self, body: dict, tid: TransactionID):
        """GetCell(cellNum): the cell's current value (0 if never set)."""
        oid = self._cell_oid(body["cell"])
        yield from self.library.lock_object(tid, oid, READ)
        value = yield from self.library.read_object(oid)
        return {"value": int(value) if value is not None else 0}
