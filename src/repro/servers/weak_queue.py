"""The weak queue (semi-queue) server (Section 4.2).

A weak queue does not guarantee strict FIFO dequeue order: relaxing that
guarantee allows greater concurrency while retaining failure atomicity.
The implementation follows the paper exactly:

- an array of individually lockable elements with head and tail pointers
  bounding the in-use section;
- each element carries its contents plus an ``InUse`` boolean, because
  aborted enqueues leave gaps in the range;
- the head pointer is permanent and failure atomic (value logged); the
  tail pointer lives in volatile storage and is recomputed after a crash
  by examining the head pointer and the InUse bits;
- ``Enqueue`` fills the element below the tail and advances the unlocked
  tail pointer, relying on the monitor semantics of TABS coroutines (a
  coroutine switch happens only when an operation waits);
- ``Dequeue`` scans from the head with ``IsObjectLocked`` and the InUse
  bit, skipping elements another transaction is still manipulating;
- garbage collection -- moving the head past dead elements -- happens as
  a side effect of ``Enqueue``.

The design is the one that prompted ``ConditionallyLockObject`` and
``IsObjectLocked`` to be added to the server library.
"""

from __future__ import annotations

from repro.errors import ServerError
from repro.kernel.disk import PAGE_SIZE
from repro.locking.modes import WRITE
from repro.servers.base import BaseDataServer
from repro.txn.ids import TransactionID

#: bytes reserved per element slot (contents + InUse flag as one object)
SLOT_SIZE = 8
#: byte offset of the failure-atomic head pointer
HEAD_OFFSET = 0
#: first element slot (the head pointer occupies the front of the segment)
FIRST_SLOT_OFFSET = SLOT_SIZE


class QueueFull(ServerError):
    """No free element below the tail (garbage collection found nothing)."""


class QueueEmpty(ServerError):
    """Dequeue found no unlocked, in-use element."""


class WeakQueueServer(BaseDataServer):
    """Enqueue / Dequeue / IsQueueEmpty over a recoverable element array."""

    TYPE_NAME = "weak_queue"
    SEGMENT_PAGES = 16

    def __init__(self, tabs_node, name: str, capacity: int | None = None):
        super().__init__(tabs_node, name)
        max_capacity = (self.SEGMENT_PAGES * PAGE_SIZE
                        - FIRST_SLOT_OFFSET) // SLOT_SIZE
        self.capacity = capacity or max_capacity
        if self.capacity > max_capacity:
            raise ServerError(f"capacity {capacity} exceeds segment room "
                              f"({max_capacity})")
        #: volatile tail pointer (recomputed after a crash)
        self._tail = 0

    # -- object layout -------------------------------------------------------

    def _head_oid(self):
        return self.library.create_object_id(self.base_va + HEAD_OFFSET,
                                             SLOT_SIZE)

    def _slot_oid(self, index: int):
        offset = FIRST_SLOT_OFFSET + (index % self.capacity) * SLOT_SIZE
        return self.library.create_object_id(self.base_va + offset,
                                             SLOT_SIZE)

    def _read_head(self):
        value = yield from self.library.read_object(self._head_oid())
        return int(value or 0)

    def _read_slot(self, index: int):
        value = yield from self.library.read_object(self._slot_oid(index))
        if value is None:
            return (None, False)
        return value  # (contents, in_use)

    # -- recovery -------------------------------------------------------------

    def on_recovered(self):
        """Recompute the volatile tail: scan forward from the head until a
        full capacity window shows no in-use element."""
        head = yield from self._read_head()
        tail = head
        for probe in range(self.capacity):
            _, in_use = yield from self._read_slot(head + probe)
            if in_use:
                tail = head + probe + 1
        self._tail = tail

    # -- operations --------------------------------------------------------------

    def op_enqueue(self, body: dict, tid: TransactionID):
        """Place an item below the tail; the InUse flip is value-logged."""
        head = yield from self._read_head()
        yield from self._collect_garbage(tid, head)
        head = yield from self._read_head()
        if self._tail - head >= self.capacity:
            raise QueueFull(f"{self.name}: all {self.capacity} slots used")
        index = self._tail
        slot = self._slot_oid(index)
        # Monitor semantics: no wait between reading and advancing the tail,
        # so no other coroutine can claim the same slot.
        self._tail += 1
        locked = self.library.conditionally_lock_object(tid, slot, WRITE)
        if not locked:  # pragma: no cover - tail never points at locked slots
            raise ServerError("tail slot unexpectedly locked")
        yield from self.library.pin_and_buffer(tid, slot)
        yield from self.library.write_object(slot, (body["data"], True))
        yield from self.library.log_and_unpin(tid, slot)
        return {"index": index}

    def op_dequeue(self, body: dict, tid: TransactionID):
        """Scan from the head for an unlocked, in-use element."""
        del body
        head = yield from self._read_head()
        for index in range(head, self._tail):
            slot = self._slot_oid(index)
            if self._locked_by_other(tid, slot):
                continue  # another operation is still manipulating it
            contents, in_use = yield from self._read_slot(index)
            if not in_use:
                continue  # an aborted enqueue's gap, or already dequeued
            if not self.library.conditionally_lock_object(tid, slot, WRITE):
                continue  # pragma: no cover - raced with another coroutine
            yield from self.library.pin_and_buffer(tid, slot)
            yield from self.library.write_object(slot, (contents, False))
            yield from self.library.log_and_unpin(tid, slot)
            return {"data": contents, "index": index}
        raise QueueEmpty(f"{self.name}: no dequeueable element")

    def op_is_queue_empty(self, body: dict, tid: TransactionID):
        del body
        head = yield from self._read_head()
        for index in range(head, self._tail):
            slot = self._slot_oid(index)
            if self._locked_by_other(tid, slot):
                # A pending enqueue/dequeue: conservatively non-empty.
                return {"empty": False}
            _, in_use = yield from self._read_slot(index)
            if in_use:
                return {"empty": False}
        return {"empty": True}

    def _locked_by_other(self, tid: TransactionID, slot) -> bool:
        """IsObjectLocked, excluding the caller's own locks: an element
        this transaction enqueued is dequeueable by the same transaction."""
        return (self.library.is_object_locked(slot)
                and not self.library.locks.holds(tid, slot))

    # -- garbage collection ----------------------------------------------------------

    def _collect_garbage(self, tid: TransactionID, head: int):
        """Advance the head past unlocked, not-in-use elements.

        Performed as a side effect of Enqueue, standing in for the paper's
        "randomly invoked" abstract collector.  The head pointer is failure
        atomic, so the move is itself logged under the enqueuer.
        """
        new_head = head
        while new_head < self._tail:
            slot = self._slot_oid(new_head)
            if self.library.is_object_locked(slot):
                break
            _, in_use = yield from self._read_slot(new_head)
            if in_use:
                break
            new_head += 1
        if new_head == head:
            return
        head_oid = self._head_oid()
        if not self.library.conditionally_lock_object(tid, head_oid, WRITE):
            return  # someone else is moving it; skip this round
        yield from self.library.pin_and_buffer(tid, head_oid)
        yield from self.library.write_object(head_oid, new_head)
        yield from self.library.log_and_unpin(tid, head_oid)
