"""The input/output server (Section 4.3).

The I/O server extends the domain of TABS to the bitmap display: it
restores the screen after a failure and gives the user a comfortable model
of transaction-based input/output.  Output is displayed as it occurs, in a
style that indicates the state of the transaction that performed it:

- **in progress** -- grey;
- **committed** -- redrawn in black ("the operation really occurred");
- **aborted** -- lines are drawn through the output (preferable to making
  it disappear, which is disconcerting).

Mechanics, exactly as in the paper:

- The server maintains permanent, *non-failure-atomic* character data for
  each area: every write runs inside a fresh top-level transaction via
  ``ExecuteTransaction``, so a later client abort does not erase it.
- When a client transaction establishes ownership of an area, the server
  uses ``ExecuteTransaction`` to write ``aborted`` into a *state object*,
  then has the client transaction lock the state object and set it to
  ``committed`` -- putting an aborted/committed old/new pair in the log
  under the client transaction.
- The transaction's current status is then decidable without unbounded
  log data: state object locked -> in progress; unlocked and ``committed``
  -> committed; unlocked and ``aborted`` (the recovery mechanisms reset
  it) -> aborted.

User input is read from a per-area keyboard buffer and echoed inside a
rectangle (rendered here as ``[input]``).
"""

from __future__ import annotations

import collections

from repro.errors import ServerError
from repro.kernel.disk import PAGE_SIZE
from repro.locking.modes import WRITE
from repro.servers.base import BaseDataServer
from repro.sim import AnyOf, Event, Timeout
from repro.txn.ids import TransactionID

#: per-area layout, one page per area:
#:   [0]   line count (permanent, non-failure-atomic)
#:   [8+k] state slot k (ownership session states)
#:   lines live on the pages after the area header page
STATE_SLOTS_PER_AREA = 24
LINES_PER_AREA = 40
PAGES_PER_AREA = 1 + (LINES_PER_AREA * 8) // PAGE_SIZE + 1

IN_PROGRESS = "in_progress"
COMMITTED = "committed"
ABORTED = "aborted"


class IOServer(BaseDataServer):
    """Transactional terminal areas with the grey/black/struck model."""

    TYPE_NAME = "io_server"
    SEGMENT_PAGES = 64
    MAX_AREAS = 8

    def __init__(self, tabs_node, name: str):
        super().__init__(tabs_node, name)
        #: volatile: which client transaction owns each area right now
        self._owners: dict[int, tuple[TransactionID, int]] = {}
        #: volatile keyboard buffers and the waiters blocked on them
        self._keyboard: dict[int, collections.deque] = {}
        self._readers: dict[int, collections.deque] = {}
        self._next_area = 0
        self._next_state_slot: dict[int, int] = {}

    # -- layout --------------------------------------------------------------

    def _area_base(self, area: int) -> int:
        if not 0 <= area < self.MAX_AREAS:
            raise ServerError(f"bad I/O area id {area}")
        return self.base_va + area * PAGES_PER_AREA * PAGE_SIZE

    def _count_oid(self, area: int):
        return self.library.create_object_id(self._area_base(area), 8)

    def _state_oid(self, area: int, slot: int):
        return self.library.create_object_id(
            self._area_base(area) + 8 + slot * 8, 8)

    def _line_oid(self, area: int, line: int):
        offset = PAGE_SIZE + line * 8
        return self.library.create_object_id(self._area_base(area) + offset,
                                             8)

    # -- permanent, non-failure-atomic writes (ExecuteTransaction) -------------

    def _system_write(self, oid, value):
        """Write ``oid`` inside a fresh top-level transaction."""
        def body(tid):
            yield from self.library.lock_object(tid, ("sys", oid), WRITE)
            yield from self.library.pin_and_buffer(tid, oid)
            yield from self.library.write_object(oid, value)
            yield from self.library.log_and_unpin(tid, oid)
            return None
        yield from self.library.execute_transaction(body)

    # -- ownership / status ------------------------------------------------------

    def _ensure_ownership(self, area: int, tid: TransactionID):
        """First output by this transaction in this area: set up the state
        object whose lock + value encodes the transaction's status."""
        owner = self._owners.get(area)
        if owner is not None and owner[0] == tid:
            return owner[1]
        slot = self._next_state_slot.get(area, 0)
        if slot >= STATE_SLOTS_PER_AREA:
            raise ServerError(f"area {area}: out of ownership state slots")
        self._next_state_slot[area] = slot + 1
        state = self._state_oid(area, slot)
        # Step 1: a separate top-level transaction durably writes "aborted".
        yield from self._system_write(state, ABORTED)
        # Step 2: the *client* transaction locks the state object and sets
        # it to "committed" -- the old/new pair aborted/committed now sits
        # in the log under the client transaction.
        yield from self.library.lock_object(tid, state, WRITE)
        yield from self.library.pin_and_buffer(tid, state)
        yield from self.library.write_object(state, COMMITTED)
        yield from self.library.log_and_unpin(tid, state)
        self._owners[area] = (tid, slot)
        return slot

    def _status_of_slot(self, area: int, slot: int):
        """The grey/black/struck decision, via IsObjectLocked."""
        state = self._state_oid(area, slot)
        if self.library.is_object_locked(state):
            return IN_PROGRESS
        value = yield from self.library.read_object(state)
        return COMMITTED if value == COMMITTED else ABORTED

    # -- operations ------------------------------------------------------------------

    def op_obtain_io_area(self, body: dict, tid: TransactionID):
        del body, tid
        if self._next_area >= self.MAX_AREAS:
            raise ServerError("no free I/O areas")
        area = self._next_area
        self._next_area += 1
        yield from self._system_write(self._count_oid(area), 0)
        return {"area": area}

    def op_destroy_io_area(self, body: dict, tid: TransactionID):
        del tid
        area = int(body["area"])
        self._owners.pop(area, None)
        yield from self._system_write(self._count_oid(area), 0)
        return {}

    def _append_line(self, area: int, slot: int, text: str, boxed: bool):
        count_oid = self._count_oid(area)
        count = yield from self.library.read_object(count_oid)
        count = int(count or 0)
        if count >= LINES_PER_AREA:
            raise ServerError(f"area {area} is full")
        # Both the line and the count are permanent but not failure atomic.
        yield from self._system_write(self._line_oid(area, count),
                                      (text, slot, boxed))
        yield from self._system_write(count_oid, count + 1)

    def op_write_to_area(self, body: dict, tid: TransactionID):
        """WriteToArea / WritelnToArea: display now, in grey."""
        area = int(body["area"])
        slot = yield from self._ensure_ownership(area, tid)
        yield from self._append_line(area, slot, str(body["data"]),
                                     boxed=False)
        return {}

    op_writeln_to_area = op_write_to_area

    def op_feed_input(self, body: dict, tid: TransactionID):
        """Simulated keyboard: characters arrive for an area."""
        del tid
        area = int(body["area"])
        self._keyboard.setdefault(area, collections.deque()).append(
            str(body["data"]))
        readers = self._readers.get(area)
        while readers and self._keyboard[area]:
            waiter = readers.popleft()
            if not waiter.triggered:
                waiter.succeed(self._keyboard[area].popleft())
        return {}
        yield  # pragma: no cover

    def op_read_line_from_area(self, body: dict, tid: TransactionID):
        """ReadLineFromArea: wait for input, echo it boxed."""
        area = int(body["area"])
        slot = yield from self._ensure_ownership(area, tid)
        buffered = self._keyboard.setdefault(area, collections.deque())
        if buffered:
            text = buffered.popleft()
        else:
            waiter = Event(self.ctx_engine, name=f"kbd:{area}")
            self._readers.setdefault(area, collections.deque()).append(waiter)
            deadline = Timeout(self.ctx_engine,
                               float(body.get("max_wait_ms", 60_000.0)))
            which, text = yield AnyOf(self.ctx_engine, [waiter, deadline])
            if which == 1:
                raise ServerError(f"area {area}: no input arrived")
        yield from self._append_line(area, slot, text, boxed=True)
        return {"data": text}

    @property
    def ctx_engine(self):
        return self.node.ctx.engine

    def on_recovered(self):
        """Restore the screen bookkeeping after a crash.

        The permanent data (lines, counts, state slots) came back through
        log replay; what needs rebuilding is the volatile allocation state:
        which areas and ownership slots are in use.  Ownerships that were
        in progress at the crash read ``aborted`` now -- the recovery
        mechanisms reset their state objects -- so their output renders
        struck through, exactly the paper's user model.
        """
        for area in range(self.MAX_AREAS):
            count = yield from self.library.read_object(self._count_oid(area))
            if count is None:
                break
            self._next_area = area + 1
            for slot in range(STATE_SLOTS_PER_AREA):
                value = yield from self.library.read_object(
                    self._state_oid(area, slot))
                if value is None:
                    break
                self._next_state_slot[area] = slot + 1

    # -- rendering (Figure 4-1) ----------------------------------------------------------

    def render_area(self, area: int):
        """ASCII rendering of one area (generator).

        Committed lines print plainly, in-progress lines carry a ``~``
        prefix (grey), aborted lines are struck through with dashes, and
        echoed user input is boxed in brackets.
        """
        count_oid = self._count_oid(area)
        count = yield from self.library.read_object(count_oid)
        rendered = []
        for line in range(int(count or 0)):
            stored = yield from self.library.read_object(
                self._line_oid(area, line))
            if stored is None:
                continue
            text, slot, boxed = stored
            status = yield from self._status_of_slot(area, slot)
            shown = f"[{text}]" if boxed else text
            if status == IN_PROGRESS:
                rendered.append(f"~ {shown}")
            elif status == COMMITTED:
                rendered.append(f"  {shown}")
            else:
                rendered.append(f"  {'-'.join(['', *shown.split(), ''])}"
                                if shown.strip() else "  ---")
        return rendered

    def op_render_area(self, body: dict, tid: TransactionID):
        del tid
        lines = yield from self.render_area(int(body["area"]))
        return {"lines": lines}
