"""A mailbox server with type-specific locking.

Two threads of the paper meet here.  Section 2.2 points at mail systems
("The integrity guarantees of a mail system, such as one sketched by
Liskov, are also simplified"), and Section 4.6 closes with "We intend to
explore the type-specific locking capability of TABS with future data
servers."  This server is that exploration: a mailbox type whose lock
compatibility matrix admits concurrency that read/write locking cannot.

The protocol (per mailbox):

==========  ======  ========  ======
held \\ req   PUT     READ     TAKE
PUT          yes      no       no
READ         no       yes      no
TAKE         no       no       no
==========  ======  ========  ======

``PUT`` is compatible with ``PUT``: two senders delivering to the same
mailbox commute (they fill different slots), even though both *write* --
exactly the increased concurrency Schwarz & Spector's type-specific
locking buys.  Readers share; ``TAKE`` (drain) excludes everything.

Storage reuses the weak-queue technique: each mailbox is a page of
individually value-logged slots with in-use bits, plus a volatile
next-slot pointer recomputed after a crash.
"""

from __future__ import annotations

from repro.errors import ServerError
from repro.kernel.disk import PAGE_SIZE
from repro.locking.modes import LockMode, make_protocol
from repro.servers.base import BaseDataServer
from repro.txn.ids import TransactionID

MAILBOX_PROTOCOL = make_protocol(
    "mailbox", ("PUT", "READ", "TAKE"),
    (("PUT", "PUT"), ("READ", "READ")))

PUT = LockMode("PUT")
READ = LockMode("READ")
TAKE = LockMode("TAKE")

SLOT_SIZE = 8
SLOTS_PER_MAILBOX = PAGE_SIZE // SLOT_SIZE


class MailboxFull(ServerError):
    pass


class MailboxServer(BaseDataServer):
    """put / read_all / take_all over per-user mailboxes."""

    TYPE_NAME = "mailbox"
    SEGMENT_PAGES = 32
    PROTOCOL = MAILBOX_PROTOCOL

    def __init__(self, tabs_node, name: str):
        super().__init__(tabs_node, name)
        #: volatile: next free slot per mailbox (recomputed after crashes)
        self._next_slot: dict[int, int] = {}

    @property
    def max_mailboxes(self) -> int:
        return self.SEGMENT_PAGES

    def _mailbox_key(self, mailbox: int):
        if not 0 <= mailbox < self.max_mailboxes:
            raise ServerError(f"no mailbox {mailbox}")
        return ("mailbox", self.name, mailbox)

    def _slot_oid(self, mailbox: int, slot: int):
        return self.library.create_object_id(
            self.base_va + mailbox * PAGE_SIZE + slot * SLOT_SIZE,
            SLOT_SIZE)

    def _read_slot(self, mailbox: int, slot: int):
        value = yield from self.library.read_object(
            self._slot_oid(mailbox, slot))
        return value if value is not None else (None, False)

    def _recompute_top(self, mailbox: int):
        """Highest live slot index + 1; locked slots count as live (an
        uncommitted take may yet abort and restore them)."""
        top = 0
        for slot in range(SLOTS_PER_MAILBOX):
            oid = self._slot_oid(mailbox, slot)
            if self.library.is_object_locked(oid):
                top = slot + 1
                continue
            _, in_use = yield from self._read_slot(mailbox, slot)
            if in_use:
                top = slot + 1
        return top

    # -- recovery -------------------------------------------------------------

    def on_recovered(self):
        for mailbox in range(self.max_mailboxes):
            top = 0
            for slot in range(SLOTS_PER_MAILBOX):
                _, in_use = yield from self._read_slot(mailbox, slot)
                if in_use:
                    top = slot + 1
            self._next_slot[mailbox] = top

    # -- operations ----------------------------------------------------------------

    def op_put(self, body: dict, tid: TransactionID):
        """Deliver a message.  Concurrent puts to one mailbox commute:
        the PUT lock mode is compatible with itself, and each put claims
        its own slot (monitor semantics protect the slot counter)."""
        mailbox = int(body["mailbox"])
        lib = self.library
        yield from lib.lock_object(tid, self._mailbox_key(mailbox), PUT)
        slot = self._next_slot.get(mailbox, 0)
        if slot >= SLOTS_PER_MAILBOX:
            # Slot space exhausted: compact past drained messages (a
            # committed take_all freed them; locked slots stay reserved).
            slot = yield from self._recompute_top(mailbox)
            if slot >= SLOTS_PER_MAILBOX:
                raise MailboxFull(f"mailbox {mailbox} is full")
        self._next_slot[mailbox] = slot + 1
        oid = self._slot_oid(mailbox, slot)
        yield from lib.lock_object(tid, oid, PUT)
        yield from lib.pin_and_buffer(tid, oid)
        yield from lib.write_object(oid, (body["message"], True))
        yield from lib.log_and_unpin(tid, oid)
        return {"slot": slot}

    def op_read_all(self, body: dict, tid: TransactionID):
        """Read the mailbox without draining it (readers share)."""
        mailbox = int(body["mailbox"])
        yield from self.library.lock_object(
            tid, self._mailbox_key(mailbox), READ)
        messages = []
        for slot in range(self._next_slot.get(mailbox, 0)):
            message, in_use = yield from self._read_slot(mailbox, slot)
            if in_use:
                messages.append(message)
        return {"messages": messages}

    def op_take_all(self, body: dict, tid: TransactionID):
        """Drain the mailbox (exclusive: conflicts with puts and reads)."""
        mailbox = int(body["mailbox"])
        lib = self.library
        yield from lib.lock_object(tid, self._mailbox_key(mailbox), TAKE)
        messages = []
        for slot in range(self._next_slot.get(mailbox, 0)):
            oid = self._slot_oid(mailbox, slot)
            message, in_use = yield from self._read_slot(mailbox, slot)
            if not in_use:
                continue
            yield from lib.lock_object(tid, oid, TAKE)
            yield from lib.pin_and_buffer(tid, oid)
            yield from lib.write_object(oid, (None, False))
            yield from lib.log_and_unpin(tid, oid)
            messages.append(message)
        return {"messages": messages}
