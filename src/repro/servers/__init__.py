"""The Section 4 data servers.

Five data servers demonstrate the TABS prototype in use:

- :mod:`repro.servers.int_array` -- the integer array server (§4.1): plain
  two-phase read/write locking and value logging.
- :mod:`repro.servers.weak_queue` -- the weak queue (semi-queue) server
  (§4.2): permanent, failure atomic, *not* serializable.
- :mod:`repro.servers.io_server` -- the I/O server (§4.3): permanent,
  non-failure-atomic terminal output with the grey/black/struck-through
  user model.
- :mod:`repro.servers.btree` -- the B-tree server (§4.4) with its
  recoverable storage allocator.
- :mod:`repro.servers.replicated_dir` -- the replicated directory object
  (§4.5): weighted voting over B-tree-backed directory representatives.
"""

from repro.servers.base import BaseDataServer

__all__ = ["BaseDataServer"]
