"""Common scaffolding for data servers.

A data server owns one recoverable segment, a server-library instance, and
a dispatch table of user operations.  Subclasses define the class
attributes (segment size, lock protocol) and the operations; the base
class runs the Table 3-1 startup sequence (``InitServer``,
``ReadPermanentData``, ``RecoverServer``, ``AcceptRequests``) and registers
the server's name.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ServerError
from repro.locking.modes import READ_WRITE_PROTOCOL, CompatibilityMatrix
from repro.nameserver.library import NameServerLibrary
from repro.server.library import DataServerLibrary
from repro.txn.ids import TransactionID

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.facility import TabsNode


class BaseDataServer:
    """Subclass and define operations named ``op_<name>``.

    An operation is a generator method ``op_foo(self, body, tid)`` returning
    a response dict.  System messages (prepare/commit/abort/undo) are
    handled by the server library automatically.
    """

    TYPE_NAME = "data_server"
    SEGMENT_PAGES = 64
    PROTOCOL: CompatibilityMatrix = READ_WRITE_PROTOCOL

    def __init__(self, tabs_node: "TabsNode", name: str) -> None:
        self.tabs_node = tabs_node
        self.node = tabs_node.node
        self.name = name
        # Segment identity is stable across restarts: the disk file is the
        # permanent entity, the serving process is not (Section 3.1.3).
        self.segment_id = f"{tabs_node.name}:{name}"
        self.library = DataServerLibrary(
            self.node, name, protocol=self.PROTOCOL,
            lock_timeout_ms=tabs_node.config.lock_timeout_ms)
        self.names = NameServerLibrary(self.node)
        self.base_va = 0
        #: op name -> bound ``op_<name>`` handler, filled on first use
        self._op_cache: dict[str, Callable] = {}

    # -- lifecycle --------------------------------------------------------------

    def setup(self):
        """ReadPermanentData + RecoverServer + name registration (generator)."""
        base_va = self.tabs_node.allocate_segment_va(self.segment_id)
        self.base_va, _size = yield from self.library.read_permanent_data(
            self.segment_id, self.SEGMENT_PAGES, base_va)
        self.configure()
        yield from self.library.recover_server()
        yield from self.names.register(self.name, self.TYPE_NAME,
                                       self.library.port)

    def configure(self) -> None:
        """Subclass hook: register recovery operations, build tables."""

    def on_recovered(self):
        """Subclass hook (generator): rebuild volatile state after the
        node-level log replay -- e.g. the weak queue recomputes its tail
        pointer from the head pointer and the InUse bits."""
        return
        yield  # pragma: no cover

    def start(self) -> None:
        """AcceptRequests: begin serving operations."""
        self.library.accept_requests(self.dispatch)

    def dispatch(self, op: str, body: dict, tid: TransactionID | None):
        handler = self._op_cache.get(op)
        if handler is None:
            handler = getattr(self, "op_" + op, None)
            if handler is None:
                raise ServerError(f"{self.name}: unknown operation {op!r}")
            self._op_cache[op] = handler
        result = yield from handler(body, tid)
        return result

    @classmethod
    def factory(cls, name: str, **kwargs) -> Callable:
        """A factory suitable for :meth:`TabsCluster.add_server`."""
        def build(tabs_node: "TabsNode"):
            return cls(tabs_node, name, **kwargs)
        return build
