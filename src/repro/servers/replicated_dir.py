"""The replicated directory object (Section 4.5).

An abstraction identical to a conventional directory that stores its data
in multiple *directory representative* servers on different nodes, using a
variation of Gifford's weighted voting for global coordination (Gifford
79; Daniels & Spector 83; Bloch et al. 84).

Two pieces, mirroring the paper's structure:

- :class:`DirectoryRepresentativeServer` -- a data server that "uses a
  B-tree server to actually store the data" plus the localized voting
  functions: versioned read/write/delete entries (deletions leave
  versioned tombstones so they can win votes).
- :class:`ReplicatedDirectory` -- the module "linked in with the client
  program" that does global coordination of the voting.

Every replicated operation runs inside the caller's transaction, so
aborting recovers on multiple nodes and committing exercises the
multi-node two-phase commit -- the paper's own demonstration ("Our tests
so far involve 3 nodes, which permits one node to fail and have the data
remain available").

Quorum rule: each representative carries a weight; a read gathers
``read_quorum`` votes, a write installs the new version at
``write_quorum`` representatives, and ``read_quorum + write_quorum``
must exceed the total weight so any read quorum intersects any committed
write quorum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.app.library import ApplicationLibrary
from repro.errors import QuorumUnavailable, SessionBroken, TabsError
from repro.rpc.stubs import ServiceRef
from repro.servers.btree import BTreeServer, KeyNotFound
from repro.txn.ids import TransactionID


class DirectoryRepresentativeServer(BTreeServer):
    """One replica: a B-tree-backed directory with per-entry versions."""

    TYPE_NAME = "directory_representative"

    def op_rep_read(self, body: dict, tid: TransactionID):
        """The representative's vote: (value, version, deleted) or absent."""
        try:
            result = yield from self.op_lookup(body, tid)
        except KeyNotFound:
            return {"present": False, "version": 0}
        entry = result["value"]
        return {"present": True, "version": entry["version"],
                "deleted": entry["deleted"], "value": entry["value"]}

    def op_rep_write(self, body: dict, tid: TransactionID):
        """Install a versioned entry (insert-or-update semantics)."""
        entry = {"value": body.get("value"), "version": body["version"],
                 "deleted": body.get("deleted", False)}
        write = {"directory": body["directory"], "key": body["key"],
                 "value": entry}
        try:
            yield from self.op_update(write, tid)
        except KeyNotFound:
            yield from self.op_insert(write, tid)
        return {}


@dataclass(frozen=True)
class Replica:
    ref: ServiceRef
    weight: int = 1


class ReplicatedDirectory:
    """Client-side global coordination of the weighted voting."""

    def __init__(self, app: ApplicationLibrary, replicas: list[Replica],
                 read_quorum: int, write_quorum: int,
                 directory: str = "entries",
                 read_repair: bool = False) -> None:
        total = sum(replica.weight for replica in replicas)
        if read_quorum + write_quorum <= total:
            raise TabsError(
                f"quorums do not intersect: r({read_quorum}) + "
                f"w({write_quorum}) must exceed total weight {total}")
        if write_quorum <= total / 2:
            raise TabsError("write quorum must be a weighted majority, or "
                            "two writes could miss each other")
        self.app = app
        self.replicas = list(replicas)
        self.read_quorum = read_quorum
        self.write_quorum = write_quorum
        self.directory = directory
        #: extension: push the winning version to stale replicas on read
        self.read_repair = read_repair

    # -- setup ----------------------------------------------------------------

    def create(self, tid: TransactionID):
        """Create the backing directory at every representative
        (generator; run once at deployment time, all replicas up)."""
        for replica in self.replicas:
            yield from self.app.call(replica.ref, "create_directory",
                                     {"directory": self.directory}, tid)

    # -- voting ----------------------------------------------------------------

    def _gather_read_quorum(self, tid: TransactionID, key):
        """Collect votes until the read quorum's weight is reached."""
        votes = []
        weight = 0
        unreachable = 0
        for replica in self.replicas:
            if weight >= self.read_quorum:
                break
            try:
                vote = yield from self.app.call(
                    replica.ref, "rep_read",
                    {"directory": self.directory, "key": key}, tid)
            except SessionBroken:
                unreachable += 1
                continue
            votes.append((replica, vote))
            weight += replica.weight
        if weight < self.read_quorum:
            raise QuorumUnavailable(
                f"read quorum {self.read_quorum} unreachable: got weight "
                f"{weight} ({unreachable} replicas down)")
        return votes

    @staticmethod
    def _winning_vote(votes):
        best = {"present": False, "version": 0}
        for _replica, vote in votes:
            if vote["version"] > best["version"]:
                best = vote
        return best

    def _install(self, tid: TransactionID, key, value, version: int,
                 deleted: bool):
        """Write the new version to a write quorum of representatives."""
        weight = 0
        for replica in self.replicas:
            try:
                yield from self.app.call(
                    replica.ref, "rep_write",
                    {"directory": self.directory, "key": key,
                     "value": value, "version": version,
                     "deleted": deleted}, tid)
            except SessionBroken:
                continue
            weight += replica.weight
        if weight < self.write_quorum:
            raise QuorumUnavailable(
                f"write quorum {self.write_quorum} unreachable: reached "
                f"weight {weight}")

    # -- the directory abstraction --------------------------------------------------

    def lookup(self, tid: TransactionID, key):
        """Current value for ``key`` (generator); KeyNotFound if absent."""
        votes = yield from self._gather_read_quorum(tid, key)
        winner = self._winning_vote(votes)
        if self.read_repair and winner["present"]:
            yield from self._repair(tid, key, votes, winner)
        if not winner["present"] or winner.get("deleted"):
            raise KeyNotFound(f"replicated directory: no key {key!r}")
        return winner["value"]

    def insert(self, tid: TransactionID, key, value):
        """Add a new entry (generator); DuplicateKey-ish error if present."""
        votes = yield from self._gather_read_quorum(tid, key)
        winner = self._winning_vote(votes)
        if winner["present"] and not winner.get("deleted"):
            raise TabsError(f"replicated directory: key {key!r} exists")
        yield from self._install(tid, key, value, winner["version"] + 1,
                                 deleted=False)

    def update(self, tid: TransactionID, key, value):
        votes = yield from self._gather_read_quorum(tid, key)
        winner = self._winning_vote(votes)
        if not winner["present"] or winner.get("deleted"):
            raise KeyNotFound(f"replicated directory: no key {key!r}")
        yield from self._install(tid, key, value, winner["version"] + 1,
                                 deleted=False)

    def delete(self, tid: TransactionID, key):
        """Remove an entry by installing a versioned tombstone (generator)."""
        votes = yield from self._gather_read_quorum(tid, key)
        winner = self._winning_vote(votes)
        if not winner["present"] or winner.get("deleted"):
            raise KeyNotFound(f"replicated directory: no key {key!r}")
        yield from self._install(tid, key, None, winner["version"] + 1,
                                 deleted=True)

    # -- read repair (extension) -------------------------------------------------------

    def _repair(self, tid: TransactionID, key, votes, winner):
        for replica, vote in votes:
            if vote["version"] < winner["version"]:
                try:
                    yield from self.app.call(
                        replica.ref, "rep_write",
                        {"directory": self.directory, "key": key,
                         "value": winner.get("value"),
                         "version": winner["version"],
                         "deleted": winner.get("deleted", False)}, tid)
                except SessionBroken:  # pragma: no cover - best effort
                    continue
