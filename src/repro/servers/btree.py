"""The B-tree server (Section 4.4).

Maintains arbitrary collections of directory entries in B-trees, with the
standard add / delete / modify / lookup operations on multi-key
directories.  Indices on non-primary keys are separate B-trees whose
leaves point back at the primary B-tree's entries.

Two pieces of the paper's story are implemented faithfully:

- **The recoverable storage allocator.**  The B-tree allocates node pages
  dynamically inside its recoverable segment; the allocator's state (free
  list + high-water mark) is itself a value-logged object, so "if a
  transaction uses an operation that allocates storage, and the
  transaction later aborts, the memory is made available for re-use".
- **The marked-object batch.**  The original Pascal B-tree was ported by
  wrapping it with ``LockAndMark`` / ``PinAndBufferMarkedObjects`` /
  ``LogAndUnPinMarkedObjects`` rather than bracketing every assignment
  with pin/log pairs -- locks are all acquired before anything is pinned,
  which the checkpoint protocol requires.  Mutations here are computed on
  an in-memory overlay and then installed through exactly that batch.

Writers serialize on a per-directory tree lock (two-phase, held to commit);
readers share it.
"""

from __future__ import annotations

from repro.errors import ServerError
from repro.kernel.disk import PAGE_SIZE
from repro.kernel.vm import ObjectID
from repro.locking.modes import READ, WRITE
from repro.servers.base import BaseDataServer
from repro.txn.ids import TransactionID

#: maximum keys per node; a node splits when it would exceed this
MAX_KEYS = 8
MIN_KEYS = MAX_KEYS // 2

META_PAGE = 0
ALLOCATOR_PAGE = 1
FIRST_NODE_PAGE = 2


class KeyNotFound(ServerError):
    pass


class DuplicateKey(ServerError):
    pass


class NoSuchDirectory(ServerError):
    pass


def _deep_copy(value):
    """Structure-preserving copy for node/meta dictionaries."""
    if isinstance(value, dict):
        return {k: _deep_copy(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_deep_copy(v) for v in value]
    return value


def _node(leaf: bool, keys=None, vals=None, children=None) -> dict:
    if leaf:
        return {"leaf": True, "keys": list(keys or []),
                "vals": list(vals or [])}
    return {"leaf": False, "keys": list(keys or []),
            "children": list(children or [])}


class _Overlay:
    """An uncommitted view of the segment: reads fall through to the pages,
    writes collect until the marked-object batch installs them."""

    def __init__(self, server: "BTreeServer"):
        self.server = server
        self.dirty: dict[int, object] = {}
        self.allocated: list[int] = []
        #: snapshots taken at overlay start, to detect real meta/allocator
        #: changes (unchanged shared pages must be neither locked nor
        #: logged, or every writer would serialize on them)
        self.snapshots: dict[int, str] = {}

    def read(self, page: int):
        if page in self.dirty:
            return self.dirty[page]
        value = yield from self.server.library.read_object(
            self.server._page_oid(page))
        return value

    def write(self, page: int, value: object) -> None:
        self.dirty[page] = value

    def allocate(self) -> int:
        """Take a page from the recoverable allocator (via the overlay)."""
        allocator = self.dirty.get(ALLOCATOR_PAGE)
        assert allocator is not None, "caller loads the allocator first"
        if allocator["free"]:
            page = allocator["free"].pop()
        else:
            page = allocator["next_unused"]
            allocator["next_unused"] += 1
            if page >= self.server.SEGMENT_PAGES:
                raise ServerError("B-tree segment is full")
        self.allocated.append(page)
        return page

    def release(self, page: int) -> None:
        allocator = self.dirty[ALLOCATOR_PAGE]
        allocator["free"].append(page)


class BTreeServer(BaseDataServer):
    """Multi-key directories over recoverable B-trees."""

    TYPE_NAME = "btree"
    SEGMENT_PAGES = 512

    # -- layout ------------------------------------------------------------------

    def _page_oid(self, page: int) -> ObjectID:
        return self.library.create_object_id(
            self.base_va + page * PAGE_SIZE, 8)

    def _tree_lock_key(self, directory: str):
        return ("tree", self.name, directory)

    # -- overlay plumbing -----------------------------------------------------------

    def _begin_overlay(self, tid: TransactionID, load_allocator: bool):
        overlay = _Overlay(self)
        meta = yield from overlay.read(META_PAGE)
        meta = {"directories": {}, "indices": {}, **(meta or {})}
        overlay.write(META_PAGE, _deep_copy(meta))
        overlay.snapshots[META_PAGE] = repr(meta)
        if load_allocator:
            allocator = yield from overlay.read(ALLOCATOR_PAGE)
            allocator = {"free": list((allocator or {}).get("free", [])),
                         "next_unused": (allocator or {}).get(
                             "next_unused", FIRST_NODE_PAGE)}
            overlay.write(ALLOCATOR_PAGE, _deep_copy(allocator))
            overlay.snapshots[ALLOCATOR_PAGE] = repr(allocator)
        return overlay

    def _install_overlay(self, tid: TransactionID, overlay: _Overlay):
        """LockAndMark every modified page, then batch pin/log.

        The meta and allocator pages are shared by all directories; they
        are locked and logged only when this transaction actually changed
        them.  (TABS got more allocator concurrency still, with weak-queue
        techniques over per-size pools; a changed-only exclusive lock is
        the simpler discipline here.)
        """
        lib = self.library
        pages = {}
        for page, value in overlay.dirty.items():
            snapshot = overlay.snapshots.get(page)
            if snapshot is not None and repr(value) == snapshot:
                continue  # untouched shared page
            pages[page] = value
        for page in sorted(pages):
            yield from lib.lock_and_mark(tid, self._page_oid(page), WRITE)
        yield from lib.pin_and_buffer_marked_objects(tid)
        for page, value in sorted(pages.items()):
            yield from lib.write_object(self._page_oid(page), value)
        yield from lib.log_and_unpin_marked_objects(tid)

    def _root_of(self, overlay: _Overlay, directory: str) -> int:
        directories = overlay.dirty[META_PAGE]["directories"]
        try:
            return directories[directory]
        except KeyError:
            raise NoSuchDirectory(f"{self.name}: no directory "
                                  f"{directory!r}") from None

    # -- B-tree algorithms (pure, over the overlay) -------------------------------------

    def _find(self, overlay: _Overlay, page: int, key):
        node = yield from overlay.read(page)
        while not node["leaf"]:
            index = self._child_index(node, key)
            page = node["children"][index]
            node = yield from overlay.read(page)
        if key in node["keys"]:
            return node["vals"][node["keys"].index(key)]
        return None

    @staticmethod
    def _child_index(node: dict, key) -> int:
        index = 0
        while index < len(node["keys"]) and key >= node["keys"][index]:
            index += 1
        return index

    def _insert(self, overlay: _Overlay, root: int, key, value):
        """Insert; returns the (possibly new) root page."""
        split = yield from self._insert_into(overlay, root, key, value)
        if split is None:
            return root
        middle_key, right_page = split
        new_root = overlay.allocate()
        overlay.write(new_root, _node(False, keys=[middle_key],
                                      children=[root, right_page]))
        return new_root

    def _insert_into(self, overlay: _Overlay, page: int, key, value):
        """Recursive insert; returns (promoted key, new right page) on split."""
        node = dict((yield from overlay.read(page)))
        node["keys"] = list(node["keys"])
        if node["leaf"]:
            node["vals"] = list(node["vals"])
            if key in node["keys"]:
                raise DuplicateKey(f"{self.name}: duplicate key {key!r}")
            index = self._child_index(node, key)
            node["keys"].insert(index, key)
            node["vals"].insert(index, value)
        else:
            node["children"] = list(node["children"])
            index = self._child_index(node, key)
            split = yield from self._insert_into(
                overlay, node["children"][index], key, value)
            if split is None:
                overlay.write(page, node)
                return None
            middle_key, right_page = split
            node["keys"].insert(index, middle_key)
            node["children"].insert(index + 1, right_page)
        overlay.write(page, node)
        if len(node["keys"]) <= MAX_KEYS:
            return None
        return self._split(overlay, page, node)

    def _split(self, overlay: _Overlay, page: int, node: dict):
        middle = len(node["keys"]) // 2
        right_page = overlay.allocate()
        if node["leaf"]:
            right = _node(True, keys=node["keys"][middle:],
                          vals=node["vals"][middle:])
            promoted = node["keys"][middle]
            left = _node(True, keys=node["keys"][:middle],
                         vals=node["vals"][:middle])
        else:
            promoted = node["keys"][middle]
            right = _node(False, keys=node["keys"][middle + 1:],
                          children=node["children"][middle + 1:])
            left = _node(False, keys=node["keys"][:middle],
                         children=node["children"][:middle + 1])
        overlay.write(page, left)
        overlay.write(right_page, right)
        return promoted, right_page

    def _update(self, overlay: _Overlay, page: int, key, value):
        node = dict((yield from overlay.read(page)))
        if node["leaf"]:
            if key not in node["keys"]:
                raise KeyNotFound(f"{self.name}: no key {key!r}")
            node["vals"] = list(node["vals"])
            node["vals"][node["keys"].index(key)] = value
            overlay.write(page, node)
            return
        index = self._child_index(node, key)
        yield from self._update(overlay, node["children"][index], key, value)

    def _delete(self, overlay: _Overlay, root: int, key):
        """Delete; returns the (possibly changed) root page."""
        found = yield from self._delete_from(overlay, root, key)
        if not found:
            raise KeyNotFound(f"{self.name}: no key {key!r}")
        root_node = yield from overlay.read(root)
        if not root_node["leaf"] and len(root_node["keys"]) == 0:
            # The root emptied out: its sole child becomes the root.
            new_root = root_node["children"][0]
            overlay.release(root)
            return new_root
        return root

    def _delete_from(self, overlay: _Overlay, page: int, key):
        node = dict((yield from overlay.read(page)))
        node["keys"] = list(node["keys"])
        if node["leaf"]:
            if key not in node["keys"]:
                return False
            index = node["keys"].index(key)
            node["vals"] = list(node["vals"])
            del node["keys"][index]
            del node["vals"][index]
            overlay.write(page, node)
            return True
        node["children"] = list(node["children"])
        index = self._child_index(node, key)
        found = yield from self._delete_from(overlay,
                                             node["children"][index], key)
        if not found:
            return False
        overlay.write(page, node)
        yield from self._rebalance_child(overlay, page, index)
        return True

    def _rebalance_child(self, overlay: _Overlay, page: int, index: int):
        """Restore the minimum-occupancy invariant of child ``index``."""
        node = yield from overlay.read(page)
        child_page = node["children"][index]
        child = yield from overlay.read(child_page)
        if len(child["keys"]) >= MIN_KEYS:
            return
        left_page = node["children"][index - 1] if index > 0 else None
        right_page = (node["children"][index + 1]
                      if index + 1 < len(node["children"]) else None)
        left = (yield from overlay.read(left_page)) if left_page else None
        right = (yield from overlay.read(right_page)) if right_page else None

        node = dict(node)
        node["keys"] = list(node["keys"])
        node["children"] = list(node["children"])
        child = {**child, "keys": list(child["keys"])}
        if child["leaf"]:
            child["vals"] = list(child["vals"])
        else:
            child["children"] = list(child["children"])

        if left and len(left["keys"]) > MIN_KEYS:
            self._borrow_from_left(node, index, child,
                                   {**left, "keys": list(left["keys"]),
                                    **({"vals": list(left["vals"])}
                                       if left["leaf"] else
                                       {"children": list(left["children"])})},
                                   overlay, left_page, child_page, page)
        elif right and len(right["keys"]) > MIN_KEYS:
            self._borrow_from_right(node, index, child,
                                    {**right, "keys": list(right["keys"]),
                                     **({"vals": list(right["vals"])}
                                        if right["leaf"] else
                                        {"children":
                                         list(right["children"])})},
                                    overlay, right_page, child_page, page)
        elif left is not None:
            self._merge(node, index - 1, left, child, overlay,
                        left_page, child_page, page)
        elif right is not None:
            self._merge(node, index, child, right, overlay,
                        child_page, right_page, page)

    def _borrow_from_left(self, node, index, child, left, overlay,
                          left_page, child_page, page):
        if child["leaf"]:
            child["keys"].insert(0, left["keys"].pop())
            child["vals"].insert(0, left["vals"].pop())
            node["keys"][index - 1] = child["keys"][0]
        else:
            child["keys"].insert(0, node["keys"][index - 1])
            node["keys"][index - 1] = left["keys"].pop()
            child["children"].insert(0, left["children"].pop())
        overlay.write(left_page, left)
        overlay.write(child_page, child)
        overlay.write(page, node)

    def _borrow_from_right(self, node, index, child, right, overlay,
                           right_page, child_page, page):
        if child["leaf"]:
            child["keys"].append(right["keys"].pop(0))
            child["vals"].append(right["vals"].pop(0))
            node["keys"][index] = right["keys"][0]
        else:
            child["keys"].append(node["keys"][index])
            node["keys"][index] = right["keys"].pop(0)
            child["children"].append(right["children"].pop(0))
        overlay.write(right_page, right)
        overlay.write(child_page, child)
        overlay.write(page, node)

    def _merge(self, node, separator_index, left, right, overlay,
               left_page, right_page, page):
        """Fold ``right`` into ``left``; the right page returns to the pool."""
        if left["leaf"]:
            left["keys"] = left["keys"] + right["keys"]
            left["vals"] = left["vals"] + right["vals"]
        else:
            left["keys"] = (left["keys"] + [node["keys"][separator_index]]
                            + right["keys"])
            left["children"] = left["children"] + right["children"]
        del node["keys"][separator_index]
        del node["children"][separator_index + 1]
        overlay.write(left_page, left)
        overlay.write(page, node)
        overlay.release(right_page)

    def _scan(self, overlay: _Overlay, page: int, lo, hi, out: list):
        node = yield from overlay.read(page)
        if node["leaf"]:
            for key, value in zip(node["keys"], node["vals"]):
                if (lo is None or key >= lo) and (hi is None or key <= hi):
                    out.append((key, value))
            return
        for index, child in enumerate(node["children"]):
            first_key = node["keys"][index - 1] if index > 0 else None
            if hi is not None and first_key is not None and first_key > hi:
                break
            yield from self._scan(overlay, child, lo, hi, out)

    # -- operations ---------------------------------------------------------------------------

    def op_create_directory(self, body: dict, tid: TransactionID):
        directory = body["directory"]
        yield from self.library.lock_object(tid, ("meta", self.name), WRITE)
        overlay = yield from self._begin_overlay(tid, load_allocator=True)
        directories = overlay.dirty[META_PAGE]["directories"]
        if directory in directories:
            raise ServerError(f"directory {directory!r} already exists")
        root = overlay.allocate()
        overlay.write(root, _node(True))
        directories[directory] = root
        yield from self._install_overlay(tid, overlay)
        return {"root": root}

    def op_insert(self, body: dict, tid: TransactionID):
        directory, key = body["directory"], body["key"]
        yield from self.library.lock_object(
            tid, self._tree_lock_key(directory), WRITE)
        overlay = yield from self._begin_overlay(tid, load_allocator=True)
        root = self._root_of(overlay, directory)
        new_root = yield from self._insert(overlay, root, key, body["value"])
        if new_root != root:
            overlay.dirty[META_PAGE]["directories"][directory] = new_root
        yield from self._maintain_indices(overlay, tid, directory, key,
                                          None, body["value"])
        yield from self._install_overlay(tid, overlay)
        return {}

    def op_update(self, body: dict, tid: TransactionID):
        directory, key = body["directory"], body["key"]
        yield from self.library.lock_object(
            tid, self._tree_lock_key(directory), WRITE)
        overlay = yield from self._begin_overlay(tid, load_allocator=True)
        root = self._root_of(overlay, directory)
        old_value = yield from self._find(overlay, root, key)
        yield from self._update(overlay, root, key, body["value"])
        yield from self._maintain_indices(overlay, tid, directory, key,
                                          old_value, body["value"])
        yield from self._install_overlay(tid, overlay)
        return {}

    def op_delete(self, body: dict, tid: TransactionID):
        directory, key = body["directory"], body["key"]
        yield from self.library.lock_object(
            tid, self._tree_lock_key(directory), WRITE)
        overlay = yield from self._begin_overlay(tid, load_allocator=True)
        root = self._root_of(overlay, directory)
        old_value = yield from self._find(overlay, root, key)
        new_root = yield from self._delete(overlay, root, key)
        if new_root != root:
            overlay.dirty[META_PAGE]["directories"][directory] = new_root
        yield from self._maintain_indices(overlay, tid, directory, key,
                                          old_value, None)
        yield from self._install_overlay(tid, overlay)
        return {}

    def op_lookup(self, body: dict, tid: TransactionID):
        directory, key = body["directory"], body["key"]
        yield from self.library.lock_object(
            tid, self._tree_lock_key(directory), READ)
        overlay = yield from self._begin_overlay(tid, load_allocator=False)
        root = self._root_of(overlay, directory)
        value = yield from self._find(overlay, root, key)
        if value is None:
            raise KeyNotFound(f"{self.name}: no key {key!r} in "
                              f"{directory!r}")
        return {"value": value}

    def op_scan(self, body: dict, tid: TransactionID):
        directory = body["directory"]
        yield from self.library.lock_object(
            tid, self._tree_lock_key(directory), READ)
        overlay = yield from self._begin_overlay(tid, load_allocator=False)
        root = self._root_of(overlay, directory)
        out: list = []
        yield from self._scan(overlay, root, body.get("lo"),
                              body.get("hi"), out)
        return {"entries": out}

    # -- secondary indices --------------------------------------------------------------------------

    def op_create_index(self, body: dict, tid: TransactionID):
        """An index on a field of the directory's (dict-shaped) values.

        The index must be created while the directory is still empty;
        existing entries are not back-filled.
        """
        directory, field = body["directory"], body["field"]
        yield from self.library.lock_object(tid, ("meta", self.name), WRITE)
        yield from self.library.lock_object(
            tid, self._tree_lock_key(directory), WRITE)
        overlay = yield from self._begin_overlay(tid, load_allocator=True)
        meta = overlay.dirty[META_PAGE]
        self._root_of(overlay, directory)  # validates the directory exists
        index_dir = self._index_name(directory, field)
        if index_dir in meta["directories"]:
            raise ServerError(f"index on {field!r} already exists")
        root = overlay.allocate()
        overlay.write(root, _node(True))
        meta["directories"][index_dir] = root
        fields = sorted(set(meta["indices"].get(directory, [])) | {field})
        meta["indices"][directory] = fields
        yield from self._install_overlay(tid, overlay)
        return {"root": root}

    @staticmethod
    def _index_name(directory: str, field: str) -> str:
        return f"{directory}#{field}"

    def _maintain_indices(self, overlay: _Overlay, tid: TransactionID,
                          directory: str, key, old_value, new_value):
        meta = overlay.dirty[META_PAGE]
        fields = meta.get("indices", {}).get(directory, [])
        for field in fields:
            index_dir = self._index_name(directory, field)
            root = meta["directories"][index_dir]
            if isinstance(old_value, dict) and field in old_value:
                root = yield from self._delete(
                    overlay, root, (old_value[field], key))
            if isinstance(new_value, dict) and field in new_value:
                root = yield from self._insert(
                    overlay, root, (new_value[field], key), key)
            meta["directories"][index_dir] = root

    def op_lookup_by_index(self, body: dict, tid: TransactionID):
        """All (secondary key, primary key) pairs matching a secondary key."""
        directory, field = body["directory"], body["field"]
        yield from self.library.lock_object(
            tid, self._tree_lock_key(directory), READ)
        overlay = yield from self._begin_overlay(tid, load_allocator=False)
        index_dir = self._index_name(directory, field)
        root = self._root_of(overlay, index_dir)
        out: list = []
        value = body["key"]
        yield from self._scan(overlay, root, None, None, out)
        matches = [primary for (secondary, _k), primary in out
                   if secondary == value]
        return {"primary_keys": matches}
