"""An integer array server built on *operation logging*.

The paper's Conclusions call for operation logging and promise an
empirical comparison of value and operation logging; this server is that
comparison's second arm (see ``benchmarks/bench_ablations.py``).  Where
the value-logged integer array spools an old/new value pair per update,
this server spools an operation record naming the update and its inverse:

- ``add_cell(cell, delta)`` -- undone by ``add_cell(cell, -delta)``.  The
  record carries only the operation name and arguments, so it is smaller
  than a value record and permits more concurrency in principle.
- ``fill_range(start, count, value)`` -- a *multi-page* operation captured
  in **one** log record, which value logging cannot do ("operations on
  multi-page objects can be recorded in one log record", Section 2.1.3).
  Its inverse restores the previous contents, which the forward operation
  stashes in the record's undo arguments.

Recovery uses the three-pass operation algorithm: the redo decision
compares each covered page's sector-header sequence number with the
record's LSN.
"""

from __future__ import annotations

from repro.errors import ServerError
from repro.kernel.disk import PAGE_SIZE
from repro.locking.modes import READ, WRITE
from repro.servers.base import BaseDataServer
from repro.txn.ids import TransactionID

WORD_SIZE = 4


class OperationArrayServer(BaseDataServer):
    """get_cell / add_cell / fill_range with transition logging."""

    TYPE_NAME = "operation_array"
    SEGMENT_PAGES = 256

    @property
    def max_cell(self) -> int:
        return self.SEGMENT_PAGES * (PAGE_SIZE // WORD_SIZE)

    def configure(self) -> None:
        self.library.register_recovery_operation("add_cell",
                                                 self._apply_add)
        self.library.register_recovery_operation("restore_range",
                                                 self._apply_restore_range)
        self.library.register_recovery_operation("fill_range",
                                                 self._apply_fill_range)

    # -- layout -----------------------------------------------------------------

    def _cell_oid(self, cell: int):
        if not 1 <= cell <= self.max_cell:
            raise ServerError(f"cell {cell} outside 1..{self.max_cell}")
        return self.library.create_object_id(
            self.base_va + (cell - 1) * WORD_SIZE, WORD_SIZE)

    def _range_oid(self, start: int, count: int):
        """One object id covering the whole (possibly multi-page) range."""
        if count < 1 or start < 1 or start + count - 1 > self.max_cell:
            raise ServerError(f"bad range [{start}, {start + count})")
        return self.library.create_object_id(
            self.base_va + (start - 1) * WORD_SIZE, count * WORD_SIZE)

    # -- recovery appliers (run without locking or logging) ------------------------

    def _apply_add(self, args):
        cell, delta = args
        oid = self._cell_oid(cell)
        value = yield from self.node.vm.read_object(oid)
        yield from self.node.vm.write_object(oid, int(value or 0) + delta)

    def _apply_fill_range(self, args):
        start, count, value = args
        for cell in range(start, start + count):
            yield from self.node.vm.write_object(self._cell_oid(cell), value)

    def _apply_restore_range(self, args):
        start, old_values = args
        for offset, old in enumerate(old_values):
            yield from self.node.vm.write_object(
                self._cell_oid(start + offset), old)

    # -- operations -------------------------------------------------------------------

    def op_get_cell(self, body: dict, tid: TransactionID):
        oid = self._cell_oid(body["cell"])
        yield from self.library.lock_object(tid, oid, READ)
        value = yield from self.library.read_object(oid)
        return {"value": int(value or 0)}

    def op_add_cell(self, body: dict, tid: TransactionID):
        """Increment a cell; logged as a transition, not as values."""
        cell, delta = int(body["cell"]), int(body["delta"])
        oid = self._cell_oid(cell)
        lib = self.library
        yield from lib.lock_object(tid, oid, WRITE)
        yield from lib.pin_object(oid)
        try:
            value = yield from lib.read_object(oid)
            yield from lib.write_object(oid, int(value or 0) + delta)
            yield from lib.log_operation(
                tid, "add_cell", (cell, delta), "add_cell", (cell, -delta),
                (oid,))
        finally:
            lib.unpin_object(oid)
        return {"value": int(value or 0) + delta}

    def op_fill_range(self, body: dict, tid: TransactionID):
        """Set ``count`` cells from ``start``: one record, many pages."""
        start, count = int(body["start"]), int(body["count"])
        value = int(body["value"])
        range_oid = self._range_oid(start, count)
        lib = self.library
        yield from lib.lock_object(tid, ("range", self.name), WRITE)
        yield from lib.pin_object(range_oid)
        try:
            old_values = []
            for cell in range(start, start + count):
                old = yield from lib.read_object(self._cell_oid(cell))
                old_values.append(int(old or 0))
            for cell in range(start, start + count):
                yield from self.node.vm.write_object(self._cell_oid(cell),
                                                     value)
            yield from lib.log_operation(
                tid, "fill_range", (start, count, value),
                "restore_range", (start, tuple(old_values)), (range_oid,))
        finally:
            lib.unpin_object(range_oid)
        return {"filled": count}
