"""A transactional file system server (Section 2.2's motivation).

The paper cites "a few experimental transactional file systems, e.g., one
described by Paxton" as the kind of abstraction general-purpose
transactions should make easy, and its Conclusions predict "specialized
... file systems ... could be based on the implementation techniques that
our existing servers use".  This server is that prediction made concrete,
and it is deliberately a *composition*: the hierarchy lives in the B-tree
server's directories, file contents live in chunked pages drawn from the
same recoverable storage allocator, and every mutation rides the
marked-object batch -- no new recovery or locking machinery at all.

The payoff is the transactional one: any group of file operations --
create + write + rename across files -- commits or aborts as a unit, and
survives crashes, because the substrate already does.

Layout: metadata entries in B-tree directory ``fs`` map normalized paths
("/", "/etc", "/etc/motd") to ``{"kind", "pages", "size"}``; content pages
hold string chunks of at most :data:`CHUNK_CHARS` characters.
"""

from __future__ import annotations

from repro.errors import ServerError
from repro.kernel.disk import PAGE_SIZE
from repro.servers.btree import BTreeServer, KeyNotFound, META_PAGE
from repro.txn.ids import TransactionID

#: characters of file content stored per page
CHUNK_CHARS = 256

FS_DIRECTORY = "fs"


class NotAFile(ServerError):
    pass


class NotADirectory(ServerError):
    pass


class DirectoryNotEmpty(ServerError):
    pass


def normalize(path: str) -> str:
    """Canonical absolute path: '/', '/a', '/a/b' (no trailing slash)."""
    if not path.startswith("/"):
        raise ServerError(f"paths are absolute; got {path!r}")
    parts = [part for part in path.split("/") if part]
    return "/" + "/".join(parts)


def parent_of(path: str) -> str:
    if path == "/":
        raise ServerError("the root has no parent")
    return normalize(path.rsplit("/", 1)[0] or "/")


class TransactionalFileSystemServer(BTreeServer):
    """mkfs / mkdir / create / write / append / read / remove / rename /
    list_dir / stat, all inside the caller's transaction."""

    TYPE_NAME = "filesystem"
    SEGMENT_PAGES = 1024

    # -- helpers over the B-tree substrate ------------------------------------

    def _content_oid(self, page: int):
        return self.library.create_object_id(
            self.base_va + page * PAGE_SIZE, 8)

    def _lookup_entry(self, overlay, path: str):
        root = self._root_of(overlay, FS_DIRECTORY)
        entry = yield from self._find(overlay, root, path)
        return entry

    def _require(self, overlay, path: str, kind: str | None = None):
        entry = yield from self._lookup_entry(overlay, path)
        if entry is None:
            raise KeyNotFound(f"no such path {path!r}")
        if kind == "file" and entry["kind"] != "file":
            raise NotAFile(f"{path!r} is a directory")
        if kind == "dir" and entry["kind"] != "dir":
            raise NotADirectory(f"{path!r} is a file")
        return entry

    def _set_entry(self, overlay, path: str, entry: dict | None,
                   create: bool = False):
        """Insert, update, or (entry=None) delete a metadata entry."""
        root = self._root_of(overlay, FS_DIRECTORY)
        if entry is None:
            root = yield from self._delete(overlay, root, path)
        elif create:
            root = yield from self._insert(overlay, root, path, entry)
        else:
            yield from self._update(overlay, root, path, entry)
        overlay.dirty[META_PAGE]["directories"][FS_DIRECTORY] = root

    def _write_chunks(self, overlay, data: str) -> list[int]:
        pages = []
        for start in range(0, max(len(data), 1), CHUNK_CHARS):
            page = overlay.allocate()
            overlay.write(page, data[start:start + CHUNK_CHARS])
            pages.append(page)
        return pages

    def _free_pages(self, overlay, pages: list[int]) -> None:
        for page in pages:
            overlay.write(page, None)  # scrub, so reads cannot resurrect
            overlay.release(page)

    def _mutate(self, tid: TransactionID, body_fn):
        """Common mutation wrapper: tree write lock, overlay, install."""
        from repro.locking.modes import WRITE

        yield from self.library.lock_object(
            tid, self._tree_lock_key(FS_DIRECTORY), WRITE)
        overlay = yield from self._begin_overlay(tid, load_allocator=True)
        result = yield from body_fn(overlay)
        yield from self._install_overlay(tid, overlay)
        return result

    def _read_view(self, tid: TransactionID):
        from repro.locking.modes import READ

        yield from self.library.lock_object(
            tid, self._tree_lock_key(FS_DIRECTORY), READ)
        overlay = yield from self._begin_overlay(tid, load_allocator=False)
        return overlay

    # -- operations -----------------------------------------------------------

    def op_mkfs(self, body: dict, tid: TransactionID):
        """Create the (empty) file system: a root directory entry."""
        del body
        yield from self.op_create_directory({"directory": FS_DIRECTORY},
                                            tid)

        def build(overlay):
            yield from self._set_entry(
                overlay, "/", {"kind": "dir", "pages": [], "size": 0},
                create=True)
            return {}

        result = yield from self._mutate(tid, build)
        return result

    def op_mkdir(self, body: dict, tid: TransactionID):
        path = normalize(body["path"])

        def build(overlay):
            yield from self._require(overlay, parent_of(path), "dir")
            yield from self._set_entry(
                overlay, path, {"kind": "dir", "pages": [], "size": 0},
                create=True)
            return {}

        result = yield from self._mutate(tid, build)
        return result

    def op_create(self, body: dict, tid: TransactionID):
        path = normalize(body["path"])

        def build(overlay):
            yield from self._require(overlay, parent_of(path), "dir")
            yield from self._set_entry(
                overlay, path, {"kind": "file", "pages": [], "size": 0},
                create=True)
            return {}

        result = yield from self._mutate(tid, build)
        return result

    def op_write(self, body: dict, tid: TransactionID):
        """Replace a file's contents (old pages return to the pool)."""
        path = normalize(body["path"])
        data = str(body["data"])

        def build(overlay):
            entry = yield from self._require(overlay, path, "file")
            self._free_pages(overlay, entry["pages"])
            pages = self._write_chunks(overlay, data) if data else []
            yield from self._set_entry(
                overlay, path,
                {"kind": "file", "pages": pages, "size": len(data)})
            return {"size": len(data)}

        result = yield from self._mutate(tid, build)
        return result

    def op_append(self, body: dict, tid: TransactionID):
        path = normalize(body["path"])
        data = str(body["data"])

        def build(overlay):
            entry = yield from self._require(overlay, path, "file")
            pages = list(entry["pages"])
            tail = ""
            if pages and entry["size"] % CHUNK_CHARS != 0:
                tail = yield from overlay.read(pages[-1])
                self._free_pages(overlay, [pages.pop()])
            pages.extend(self._write_chunks(overlay, tail + data)
                         if tail + data else [])
            yield from self._set_entry(
                overlay, path, {"kind": "file", "pages": pages,
                                "size": entry["size"] + len(data)})
            return {"size": entry["size"] + len(data)}

        result = yield from self._mutate(tid, build)
        return result

    def op_read(self, body: dict, tid: TransactionID):
        path = normalize(body["path"])
        overlay = yield from self._read_view(tid)
        entry = yield from self._require(overlay, path, "file")
        chunks = []
        for page in entry["pages"]:
            chunk = yield from overlay.read(page)
            chunks.append(chunk or "")
        return {"data": "".join(chunks)[:entry["size"]],
                "size": entry["size"]}

    def op_stat(self, body: dict, tid: TransactionID):
        path = normalize(body["path"])
        overlay = yield from self._read_view(tid)
        entry = yield from self._require(overlay, path)
        return {"kind": entry["kind"], "size": entry["size"]}

    def op_list_dir(self, body: dict, tid: TransactionID):
        path = normalize(body["path"])
        overlay = yield from self._read_view(tid)
        yield from self._require(overlay, path, "dir")
        names = yield from self._children_of(overlay, path)
        return {"entries": sorted(names)}

    def _children_of(self, overlay, path: str):
        prefix = path if path.endswith("/") else path + "/"
        root = self._root_of(overlay, FS_DIRECTORY)
        out: list = []
        yield from self._scan(overlay, root, prefix, prefix + "￿", out)
        # Direct children only: drop the directory's own entry (an empty
        # suffix, for the root) and anything nested deeper.
        return [key[len(prefix):] for key, _ in out
                if key[len(prefix):] and "/" not in key[len(prefix):]]

    def op_remove(self, body: dict, tid: TransactionID):
        path = normalize(body["path"])
        if path == "/":
            raise ServerError("cannot remove the root")

        def build(overlay):
            entry = yield from self._require(overlay, path)
            if entry["kind"] == "dir":
                children = yield from self._children_of(overlay, path)
                if children:
                    raise DirectoryNotEmpty(f"{path!r} is not empty")
            self._free_pages(overlay, entry["pages"])
            yield from self._set_entry(overlay, path, None)
            return {}

        result = yield from self._mutate(tid, build)
        return result

    def op_rename(self, body: dict, tid: TransactionID):
        """Move a file or a whole subtree; atomic like everything else."""
        source = normalize(body["source"])
        target = normalize(body["target"])
        if source == "/" or target.startswith(source + "/"):
            raise ServerError(f"cannot rename {source!r} into itself")

        def build(overlay):
            yield from self._require(overlay, parent_of(target), "dir")
            existing = yield from self._lookup_entry(overlay, target)
            if existing is not None:
                raise ServerError(f"{target!r} already exists")
            entry = yield from self._require(overlay, source)
            # Gather the subtree (the entry itself plus any descendants).
            root = self._root_of(overlay, FS_DIRECTORY)
            moves: list = [(source, entry)]
            if entry["kind"] == "dir":
                out: list = []
                yield from self._scan(overlay, root, source + "/",
                                      source + "/￿", out)
                moves.extend(out)
            for old_path, old_entry in moves:
                new_path = target + old_path[len(source):]
                yield from self._set_entry(overlay, old_path, None)
                yield from self._set_entry(overlay, new_path, old_entry,
                                           create=True)
            return {"moved": len(moves)}

        result = yield from self._mutate(tid, build)
        return result
