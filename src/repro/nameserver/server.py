"""The Name Server process.

Requests on its port:

====================  ========================================================
``ns.register``       map ``name`` to a <port, object id> pair on this node
``ns.deregister``     remove one mapping
``ns.lookup``         resolve ``name``; broadcasts to other Name Servers
                      when the local map cannot satisfy the request
``ns.lookup_remote``  a broadcast query from another node's Name Server
``ns.lookup_reply``   a remote Name Server's answer to our broadcast
====================  ========================================================

Lookups return :class:`~repro.rpc.stubs.ServiceRef` values.  When the
broadcast succeeds, the Communication Managers establish the session between
the requesting node and the serving node as a side effect of the first RPC.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.comm.manager import SERVICE as CM_SERVICE
from repro.comm.network import Network
from repro.kernel.messages import Message
from repro.kernel.node import Node
from repro.rpc.stubs import ServiceRef, respond
from repro.sim import AnyOf, Event, Timeout

SERVICE = "name_server"

_lookup_ids = itertools.count(1)


@dataclass
class _Registration:
    name: str
    type_name: str
    ref: ServiceRef


@dataclass
class _PendingLookup:
    name: str
    wanted: int
    collected: list[ServiceRef] = field(default_factory=list)
    done: Event | None = None


class NameServer:
    """Per-node name registry with broadcast resolution."""

    def __init__(self, node: Node, network: Network) -> None:
        self.node = node
        self.ctx = node.ctx
        self.network = network
        self.port = node.create_port("ns")
        node.register_service(SERVICE, self.port)
        self._names: dict[str, list[_Registration]] = {}
        self._pending: dict[int, _PendingLookup] = {}
        self.broadcasts = 0
        node.spawn(self._loop(), name="name-server", defused=True)

    def _loop(self):
        while True:
            message = yield self.port.receive()
            handler = getattr(self, "_handle_" + message.op.split(".")[-1],
                              None)
            if handler is None:
                continue
            self.node.spawn(handler(message), name=f"ns:{message.op}",
                            defused=True)

    # -- registration ------------------------------------------------------------

    def _handle_register(self, message: Message):
        body = message.body
        ref = ServiceRef(node_name=self.node.name, port=body["port"],
                         object_id=body.get("object_id"),
                         epoch=self.node.epoch, name=body["name"])
        self._names.setdefault(body["name"], []).append(
            _Registration(body["name"], body.get("type", ""), ref))
        respond(message, {"ok": True})
        return
        yield  # pragma: no cover

    def _handle_deregister(self, message: Message):
        body = message.body
        entries = self._names.get(body["name"], [])
        self._names[body["name"]] = [
            r for r in entries
            if not (r.ref.port is body["port"]
                    and r.ref.object_id == body.get("object_id"))]
        respond(message, {"ok": True})
        return
        yield  # pragma: no cover

    def _local_refs(self, name: str) -> list[ServiceRef]:
        # Entries whose port died (a failed data-server process) are
        # withdrawn lazily: the abstraction persists, its port does not
        # (Section 3.1.3), and a recovered server re-registers.
        live = [r for r in self._names.get(name, []) if r.ref.port.alive]
        self._names[name] = live
        return [r.ref for r in live]

    # -- lookup ------------------------------------------------------------------

    def _handle_lookup(self, message: Message):
        body = message.body
        wanted = body.get("desired", 1)
        max_wait_ms = body.get("max_wait_ms", 1000.0)
        node_filter = body.get("node_name", "")
        refs = list(self._local_refs(body["name"]))
        if node_filter:
            refs = [r for r in refs if r.node_name == node_filter]
        if len(refs) < wanted:
            # The broadcast also serves node-filtered lookups: the name may
            # live on another node (e.g. re-resolving a stale reference
            # after the serving node restarted).
            refs.extend(r for r in (yield from self._broadcast_lookup(
                body["name"], wanted - len(refs), max_wait_ms))
                if not node_filter or r.node_name == node_filter)
        respond(message, {"refs": refs[:wanted]})

    def _broadcast_lookup(self, name: str, wanted: int,
                          max_wait_ms: float):
        """Ask every other Name Server; wait for answers or the deadline."""
        lookup_id = next(_lookup_ids)
        pending = _PendingLookup(name=name, wanted=wanted,
                                 done=Event(self.ctx.engine,
                                            name=f"lookup:{name}"))
        self._pending[lookup_id] = pending
        self.broadcasts += 1
        payload = Message(op="ns.lookup_remote",
                          body={"service": SERVICE, "name": name,
                                "lookup_id": lookup_id,
                                "origin": self.node.name})
        self.node.service(CM_SERVICE).send(
            Message(op="cm.broadcast", body={"payload": payload}))
        deadline = Timeout(self.ctx.engine, max_wait_ms)
        yield AnyOf(self.ctx.engine, [pending.done, deadline])
        del self._pending[lookup_id]
        return pending.collected

    def _handle_lookup_remote(self, message: Message):
        """A broadcast query arrived from another node's Name Server."""
        refs = self._local_refs(message.body["name"])
        if not refs:
            return  # only nodes that know the name answer the broadcast
        payload = Message(op="ns.lookup_reply",
                          body={"service": SERVICE,
                                "lookup_id": message.body["lookup_id"],
                                "refs": refs})
        self.node.service(CM_SERVICE).send(
            Message(op="cm.send_datagram",
                    body={"target": message.body["origin"],
                          "payload": payload}))
        return
        yield  # pragma: no cover

    def _handle_lookup_reply(self, message: Message):
        pending = self._pending.get(message.body["lookup_id"])
        if pending is None:
            return  # the lookup already completed or timed out
        pending.collected.extend(message.body["refs"])
        if (len(pending.collected) >= pending.wanted
                and not pending.done.triggered):
            pending.done.succeed()
        return
        yield  # pragma: no cover
