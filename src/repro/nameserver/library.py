"""The Name Server library (Table 3-3).

Three routines: ``Register(Name, Type, Port, ObjectID)``,
``DeRegister(Name, Port, ObjectID)``, and ``LookUp(Name, NodeName,
DesiredNumberOfPortIDs, MaxWait)``.  They exchange small messages with the
local Name Server's port; all are generators so callers pay the real
message latencies.
"""

from __future__ import annotations

from repro.errors import LookupFailed
from repro.kernel.messages import Message
from repro.kernel.node import Node
from repro.kernel.ports import Port
from repro.rpc.stubs import ServiceRef
from repro.nameserver.server import SERVICE


class NameServerLibrary:
    """Client-side access to name dissemination, for one process."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self.ctx = node.ctx

    def _request(self, op: str, body: dict):
        reply_port = Port(self.ctx, node=self.node, name=f"ns-reply:{op}")
        self.node.service(SERVICE).send(
            Message(op=op, body=body, reply_to=reply_port))
        response = yield reply_port.receive()
        return response.body

    def register(self, name: str, type_name: str, port: Port,
                 object_id: object = None):
        """Publish ``name`` -> <port, object id> on this node (generator)."""
        yield from self._request("ns.register", {
            "name": name, "type": type_name, "port": port,
            "object_id": object_id})

    def deregister(self, name: str, port: Port, object_id: object = None):
        """Withdraw one mapping (generator)."""
        yield from self._request("ns.deregister", {
            "name": name, "port": port, "object_id": object_id})

    def lookup(self, name: str, node_name: str = "", desired: int = 1,
               max_wait_ms: float = 1000.0):
        """Resolve ``name`` to up to ``desired`` service references.

        Generator returning a list of :class:`ServiceRef`.  Raises
        :class:`LookupFailed` when nothing was found anywhere (within
        ``max_wait_ms`` for the broadcast phase).
        """
        body = yield from self._request("ns.lookup", {
            "name": name, "node_name": node_name, "desired": desired,
            "max_wait_ms": max_wait_ms})
        refs: list[ServiceRef] = body["refs"]
        if not refs:
            raise LookupFailed(
                f"name {name!r} is not registered on any reachable node")
        return refs

    def lookup_one(self, name: str, node_name: str = "",
                   max_wait_ms: float = 1000.0):
        """Convenience: the first reference for ``name`` (generator)."""
        refs = yield from self.lookup(name, node_name=node_name,
                                      desired=1, max_wait_ms=max_wait_ms)
        return refs[0]
