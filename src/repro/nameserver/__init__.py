"""Name dissemination.

The abstractions represented by data servers are permanent entities that
must persist despite node failures, even though the ports through which
they are accessed change (Section 3.1.3).  The Name Server on each node
maps names to one or more <port, logical object identifier> pairs; unknown
names are resolved by broadcasting a lookup request to all other Name
Servers (Section 3.2.5).

- :mod:`repro.nameserver.server` -- the Name Server process,
- :mod:`repro.nameserver.library` -- the client library (Table 3-3).
"""

from repro.nameserver.library import NameServerLibrary
from repro.nameserver.server import NameServer

__all__ = ["NameServer", "NameServerLibrary"]
