"""Waitable events for the simulation engine.

An :class:`Event` moves through three states:

``pending`` -> ``triggered`` (succeed/fail called, callbacks scheduled)
-> ``processed`` (callbacks have run).

Processes wait on events by yielding them; see :mod:`repro.sim.process`.

These are the hottest allocations in the simulator, so the classes are
slotted, the observer list is allocated lazily (most events are waited on
by at most one observer, many by none), and default names are computed
lazily (the f-string only materialises when a profiler or repr asks).
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.errors import SimulationError
from repro.sim.engine import Engine

_PENDING = object()


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on."""

    __slots__ = ("engine", "_name", "_value", "_ok", "_callbacks",
                 "_processed")

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self._name = name
        self._value: object = _PENDING
        self._ok: bool | None = None
        #: observer list, allocated on first add_callback; None while the
        #: event has no observers *and* after the callbacks have run
        #: (``_processed`` tells the two apart)
        self._callbacks: list[Callable[[Event], None]] | None = None
        self._processed = False

    # -- state ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def triggered(self) -> bool:
        """True once succeed() or fail() has been called."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._ok is None:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._ok

    def result(self) -> object:
        """The event's value; re-raises its exception if it failed."""
        if self._ok is None:
            raise SimulationError(f"event {self!r} has not been triggered")
        if not self._ok:
            assert isinstance(self._value, BaseException)
            raise self._value
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Inlines :meth:`_trigger`: every completed wait in the simulation
        funnels through here.
        """
        if self._ok is not None:
            raise SimulationError(f"event {self!r} triggered twice")
        self._ok = True
        self._value = value
        self.engine.schedule_now(self._run_callbacks)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._trigger(False, exception)
        return self

    def _trigger(self, ok: bool, value: object) -> None:
        if self._ok is not None:
            raise SimulationError(f"event {self!r} triggered twice")
        self._ok = ok
        self._value = value
        self.engine.schedule_now(self._run_callbacks)

    def _run_callbacks(self) -> None:
        callbacks = self._callbacks
        self._callbacks = None
        self._processed = True
        if callbacks is not None:
            for callback in callbacks:
                callback(self)

    # -- observers --------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Invoke ``callback(event)`` once the event is processed.

        If the event has already been processed the callback is scheduled to
        run at the current instant, preserving run-to-completion semantics.
        """
        if self._processed:
            self.engine.schedule_now(callback, args=(self,))
        else:
            callbacks = self._callbacks
            if callbacks is None:
                self._callbacks = [callback]
            else:
                callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Stop observing; no-op if the callbacks already ran."""
        callbacks = self._callbacks
        if callbacks is not None and callback in callbacks:
            callbacks.remove(callback)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay."""

    __slots__ = ("delay", "_timeout_value")

    def __init__(self, engine: Engine, delay: float, value: object = None,
                 name: str = "") -> None:
        super().__init__(engine, name)
        self.delay = delay
        self._timeout_value = value
        engine.schedule(delay, self._fire)

    @property
    def name(self) -> str:
        # The default label is derived lazily: the unprofiled hot path
        # never pays for the f-string.
        return self._name or f"timeout({self.delay})"

    def _fire(self) -> None:
        self.succeed(self._timeout_value)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, engine: Engine, events: list[Event], name: str) -> None:
        super().__init__(engine, name)
        self._events = list(events)
        self._remaining = len(self._events)
        if not self._events:
            self.succeed([])
            return
        # Each child's position is fixed at registration: looking the event
        # up later (list.index) would report the *first* slot when the same
        # Event object appears twice in the list.
        for index, event in enumerate(self._events):
            event.add_callback(partial(self._on_child, index))

    def _on_child(self, index: int, event: Event) -> None:
        raise NotImplementedError

    def _values(self) -> list[object]:
        return [e._value for e in self._events if e.triggered and e.ok]


class AnyOf(_Condition):
    """Succeeds when the first child event is processed.

    The value is the ``(index, value)`` of the first event to complete.  If
    that event failed, this condition fails with the same exception.
    """

    __slots__ = ()

    def __init__(self, engine: Engine, events: list[Event]) -> None:
        super().__init__(engine, events, "any_of")

    def _on_child(self, index: int, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed((index, event._value))
        else:
            assert isinstance(event._value, BaseException)
            self.fail(event._value)


class AllOf(_Condition):
    """Succeeds when every child event has been processed.

    The value is the list of child values in constructor order.  The first
    child failure fails the condition immediately.
    """

    __slots__ = ()

    def __init__(self, engine: Engine, events: list[Event]) -> None:
        super().__init__(engine, events, "all_of")

    def _on_child(self, index: int, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            assert isinstance(event._value, BaseException)
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self._events])
