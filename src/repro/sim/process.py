"""Generator-based lightweight processes.

A process wraps a Python generator.  The generator *yields* events to
suspend; when the event triggers, the generator is resumed with the event's
value (or the event's exception is thrown into it).  A process is itself an
:class:`Event` that succeeds with the generator's return value, so processes
can wait on each other.

Two forms of asynchronous termination exist, mirroring what the TABS
substrate needs:

- :meth:`Process.interrupt` throws :class:`repro.errors.Interrupt` into the
  generator at its current suspension point (used for lock time-outs).
- :meth:`Process.kill` destroys the process without resuming it (used when a
  node crashes: its processes simply cease to exist).
"""

from __future__ import annotations

from typing import Generator

from repro.errors import Interrupt, ProcessKilled, SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Event


class Process(Event):
    """A lightweight simulated process driving a generator."""

    __slots__ = ("_gen", "_alive", "_waiting_on", "defused")

    def __init__(self, engine: Engine, generator: Generator,
                 name: str = "") -> None:
        super().__init__(engine, name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process needs a generator, got {generator!r} -- did you "
                "forget to call the generator function?")
        self._gen = generator
        self._alive = True
        self._waiting_on: Event | None = None
        #: Set True to suppress the unhandled-failure crash (e.g. for
        #: processes whose failure is expected and observed elsewhere).
        self.defused = False
        engine.schedule_now(self._advance, args=("send", None))

    # -- lifecycle ----------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True while the generator can still run."""
        return self._alive

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if not self._alive:
            return
        self._detach_wait()
        self.engine.schedule_now(self._advance,
                                 args=("throw", Interrupt(cause)))

    def kill(self, reason: str = "killed") -> None:
        """Destroy the process without resuming it (node crash semantics)."""
        if not self._alive:
            return
        self._alive = False
        self._detach_wait()
        self._gen.close()
        self.defused = True
        if not self.triggered:
            self.fail(ProcessKilled(reason))

    # -- internals ----------------------------------------------------------

    def _detach_wait(self) -> None:
        # Wake-ups compare the firing event against ``_waiting_on`` by
        # identity, so clearing it makes any in-flight wake-up stale even
        # if the event already scheduled its callbacks.
        self._waiting_on = None

    def _advance(self, mode: str, value: object) -> None:
        if not self._alive:
            return
        self._waiting_on = None
        try:
            if mode == "send":
                target = self._gen.send(value)
            else:
                assert isinstance(value, BaseException)
                target = self._gen.throw(value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process body failed
            self._alive = False
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._alive = False
            self.fail(SimulationError(
                f"process {self.name!r} yielded {target!r}, which is not an "
                "Event"))
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        if not self._alive or event is not self._waiting_on:
            return  # stale wake-up: we were interrupted or killed meanwhile
        if event._ok:
            self._advance("send", event._value)
        else:
            assert isinstance(event._value, BaseException)
            self._advance("throw", event._value)

    def _run_callbacks(self) -> None:
        had_observers = bool(self._callbacks)
        super()._run_callbacks()
        if not self.ok and not had_observers and not self.defused:
            # A process died with an exception nobody was waiting for: crash
            # the simulation loudly rather than losing the error.
            assert isinstance(self._value, BaseException)
            raise self._value
