"""Deterministic discrete-event simulation engine.

This package is the substrate every other subsystem runs on.  It provides:

- :class:`Engine` -- the event loop with a simulated clock in milliseconds,
- :class:`Event`, :class:`Timeout`, :class:`AnyOf`, :class:`AllOf` -- the
  waitable primitives,
- :class:`Process` -- a generator-based lightweight process that suspends by
  yielding events.

The engine is fully deterministic: events scheduled for the same instant run
in schedule order, and no wall-clock time or OS threads are involved.
"""

from repro.sim.engine import CalendarQueue, Engine, EngineConfig, HeapQueue
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Engine", "EngineConfig", "HeapQueue", "CalendarQueue", "Event",
           "Timeout", "AnyOf", "AllOf", "Process"]
