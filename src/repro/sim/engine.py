"""The discrete-event simulation loop.

Time is a float measured in *milliseconds* to match the units of the paper's
Table 5-1 primitive-operation times.  The engine keeps a binary heap of
``(time, sequence, callback, daemon)`` entries; the sequence number makes
same-time ordering deterministic (FIFO in schedule order).

Daemon entries are background housekeeping -- failure-detector probe ticks,
mainly -- that must never keep the simulation "busy": ``run()``, ``drain()``
and ``run_until()`` treat the queue as quiescent once only daemon entries
remain, exactly as daemon threads do not keep a process alive.  While real
work is in flight, daemon entries execute normally and interleave
deterministically with it.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError


class Engine:
    """A deterministic event loop with a simulated millisecond clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None], bool]] = []
        self._seq = 0
        #: queued entries that are *not* daemons; quiescence means zero
        self._real = 0
        self._running = False
        #: fabric churn accounting -- always on (plain integer bumps), read
        #: by the sim-speed meta-benchmark and the profiler snapshot.  Kept
        #: off the metrics registry so its snapshot (golden-hashed by the
        #: determinism suite) is unchanged.
        self.events_scheduled = 0
        self.daemon_scheduled = 0
        self.events_executed = 0
        self.daemon_executed = 0
        self.heap_high_water = 0
        #: wall-clock profiler (:class:`repro.obs.profile.SimProfiler`) or
        #: None; :meth:`step` guards on it so the disabled path costs one
        #: attribute check, mirroring ``ctx.tracer``
        self.profiler = None

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None],
                 daemon: bool = False) -> None:
        """Run ``callback`` after ``delay`` milliseconds of simulated time.

        A ``daemon`` entry never counts toward quiescence: ``run()`` with no
        deadline, ``drain()`` and ``run_until()`` all ignore it when deciding
        whether the simulation has gone quiet.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, self._seq, callback,
                                    daemon))
        self._seq += 1
        self.events_scheduled += 1
        if daemon:
            self.daemon_scheduled += 1
        else:
            self._real += 1
        if len(self._heap) > self.heap_high_water:
            self.heap_high_water = len(self._heap)

    def schedule_now(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` at the current instant, after pending same-time work."""
        self.schedule(0.0, callback)

    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns False when idle."""
        if not self._heap:
            return False
        time, _seq, callback, daemon = heapq.heappop(self._heap)
        if not daemon:
            self._real -= 1
        self._now = time
        self.events_executed += 1
        if daemon:
            self.daemon_executed += 1
        # The profiler only *measures* the callback (wall clock never feeds
        # back into simulated state), so both branches are equivalent to the
        # simulation.
        if self.profiler is None:
            callback()
        else:
            self.profiler.run_step(callback, daemon, time)
        return True

    def run(self, until: float | None = None) -> None:
        """Run until the event queue quiesces or the clock passes ``until``.

        With ``until`` set, the clock is advanced exactly to ``until`` when
        the queue quiesces early or the next event lies beyond it.  Without
        ``until``, pending daemon entries do not count as work -- the loop
        stops once only housekeeping remains.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        try:
            if until is None:
                while self._real:
                    self.step()
                return
            if until < self._now:
                raise SimulationError(f"until={until} is before now={self._now}")
            while self._heap and self._heap[0][0] <= until:
                self.step()
            self._now = until
        finally:
            self._running = False

    def drain(self, max_ms: float) -> bool:
        """Run until the queue quiesces, giving up ``max_ms`` from now.

        The bounded form of :meth:`run` for driving a simulation to
        quiescence when some process may never stop (a retry loop waiting
        on a node that never recovers, say): returns True when the queue
        went quiet -- the clock then rests at the last event, not at the
        deadline -- and False when work remained at the deadline.  Daemon
        entries alone do not count as remaining work.
        """
        if max_ms < 0:
            raise SimulationError(f"cannot drain for negative time ({max_ms})")
        if self._running:
            raise SimulationError("engine is already running (re-entrant drain())")
        deadline = self._now + max_ms
        self._running = True
        try:
            while self._real and self._heap[0][0] <= deadline:
                self.step()
            return self._real == 0
        finally:
            self._running = False

    def run_until(self, event: "object") -> object:
        """Run until ``event`` has been processed; return its value.

        Raises the event's exception if it failed, and ``SimulationError`` if
        the queue quiesces (only daemon entries left) while the event is
        still pending (deadlock).
        """
        # Local import to avoid a cycle at module-import time.
        from repro.sim.events import Event

        if not isinstance(event, Event):
            raise SimulationError(f"run_until() needs an Event, got {event!r}")
        while not event.processed:
            if not self._real or not self.step():
                raise SimulationError(
                    f"event queue drained while {event!r} was still pending "
                    "(simulated deadlock)"
                )
        return event.result()

    def pending_count(self) -> int:
        """Number of non-daemon callbacks still queued (diagnostic)."""
        return self._real
