"""The discrete-event simulation loop.

Time is a float measured in *milliseconds* to match the units of the paper's
Table 5-1 primitive-operation times.  The engine keeps a priority queue of
``(time, sequence, callback, args, daemon)`` entries; the sequence number
makes same-time ordering deterministic (FIFO in schedule order).

Two queue implementations exist behind the :class:`EngineConfig` selector,
both yielding the exact same pop order (and therefore byte-identical runs):

- ``"heap"`` -- a single binary heap, the reference implementation.
- ``"calendar"`` -- a calendar queue (R. Brown, CACM 1988): a ring of
  per-simulated-millisecond buckets plus a sorted overflow tier for entries
  beyond the ring's horizon.  Most pushes and pops touch a tiny bucket heap
  near the cursor instead of a log-N path through one big heap, which is
  what makes it the default for the hot-path workloads this simulator runs.

Daemon entries are background housekeeping -- failure-detector probe ticks,
mainly -- that must never keep the simulation "busy": ``run()``, ``drain()``
and ``run_until()`` treat the queue as quiescent once only daemon entries
remain, exactly as daemon threads do not keep a process alive.  While real
work is in flight, daemon entries execute normally and interleave
deterministically with it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from heapq import heappop as _heappop, heappush as _heappush
from typing import Callable

from repro.errors import SimulationError

#: the shared empty argument tuple for argument-free callbacks
_NO_ARGS: tuple = ()


@dataclass(frozen=True)
class EngineConfig:
    """Which event-queue implementation drives the simulation.

    Mirrors :class:`~repro.core.config.CommitConfig`: an immutable
    selector-plus-knobs block.  Both queues produce the exact same event
    order -- the selector trades constant factors, not semantics -- so
    every golden digest and bench baseline is identical under either.
    """

    #: "calendar" | "heap"
    queue: str = "calendar"
    #: ring size of the calendar queue, in 1-ms buckets.  Entries landing
    #: beyond ``ring_buckets`` ms past the cursor wait in the sorted
    #: overflow tier until the window advances over them.
    ring_buckets: int = 1024

    def __post_init__(self) -> None:
        if self.queue not in ("heap", "calendar"):
            raise ValueError(f"unknown engine queue {self.queue!r}")
        if self.ring_buckets < 1:
            raise ValueError("ring_buckets must be >= 1")

    @classmethod
    def heap(cls) -> "EngineConfig":
        """The reference binary-heap queue."""
        return cls(queue="heap")

    @classmethod
    def calendar(cls, ring_buckets: int = 1024) -> "EngineConfig":
        """The bucketed calendar queue (the default)."""
        return cls(queue="calendar", ring_buckets=ring_buckets)


class HeapQueue:
    """The reference queue: one binary heap of entries.

    Entries are ``(time, seq, callback, args, daemon)``; ``(time, seq)``
    is unique, so comparisons never reach the callback.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple] = []

    def push(self, entry: tuple) -> None:
        _heappush(self._heap, entry)

    def pop(self) -> tuple:
        return _heappop(self._heap)

    def pop_before(self, deadline: float) -> tuple | None:
        """Pop the front entry if it is due at or before ``deadline``."""
        heap = self._heap
        if not heap or heap[0][0] > deadline:
            return None
        return _heappop(heap)

    def peek_time(self) -> float | None:
        heap = self._heap
        return heap[0][0] if heap else None

    def __len__(self) -> int:
        return len(self._heap)


class CalendarQueue:
    """A calendar queue bucketed by integer simulated millisecond.

    The ring holds one bucket (a small heap) per sim-ms for the next
    ``ring_buckets`` ms after the cursor; entries beyond that horizon wait
    in a sorted overflow heap and migrate into the ring as the cursor
    advances.  Exact ``(time, seq)`` order is preserved: buckets partition
    entries by ``int(time)``, which is monotone in ``time``, and each
    bucket is itself a heap ordered by ``(time, seq)``.

    The cursor is an absolute bucket id that only ever advances, and only
    inside :meth:`pop` -- committed to the popped entry's bucket, which is
    safe because every remaining or future entry sorts at or after the
    entry just popped (the engine never schedules into the past).
    ``_front_bid`` is a scan hint (always <= the true front bucket id) so
    repeated peeks do not rescan empty buckets.
    """

    __slots__ = ("_n", "_ring", "_cursor", "_ring_count", "_overflow",
                 "_size", "_front_bid")

    def __init__(self, ring_buckets: int = 1024) -> None:
        self._n = ring_buckets
        self._ring: list[list[tuple]] = [[] for _ in range(ring_buckets)]
        self._cursor = 0
        self._ring_count = 0
        self._overflow: list[tuple] = []
        self._size = 0
        self._front_bid = 0

    def push(self, entry: tuple) -> None:
        bid = int(entry[0])
        if bid - self._cursor < self._n:
            _heappush(self._ring[bid % self._n], entry)
            self._ring_count += 1
            if bid < self._front_bid:
                self._front_bid = bid
        else:
            _heappush(self._overflow, entry)
        self._size += 1

    def pop(self) -> tuple:
        if self._ring_count == 0:
            # Everything queued lives beyond the horizon: jump the window
            # to the overflow front (a forward move -- overflow bids all
            # exceed cursor + ring size) and migrate the near tier in.
            self._cursor = int(self._overflow[0][0])
            self._front_bid = self._cursor
            self._migrate()
        ring, n = self._ring, self._n
        bid = self._front_bid
        if bid < self._cursor:
            bid = self._cursor
        while True:
            bucket = ring[bid % n]
            if bucket:
                break
            bid += 1
        entry = _heappop(bucket)
        self._front_bid = bid
        self._ring_count -= 1
        self._size -= 1
        if bid != self._cursor:
            self._cursor = bid
            self._migrate()
        return entry

    def pop_before(self, deadline: float) -> tuple | None:
        """Pop the front entry if it is due at or before ``deadline``.

        Unlike :meth:`pop` followed by a push-back, a refusal commits
        nothing: the cursor only ever advances when an entry actually
        leaves the queue, so a later external push (the engine's clock may
        rest at ``deadline``, before the refused front) stays inside the
        window invariant.
        """
        if self._size == 0:
            return None
        if self._ring_count == 0:
            if self._overflow[0][0] > deadline:
                return None
            self._cursor = int(self._overflow[0][0])
            self._front_bid = self._cursor
            self._migrate()
        ring, n = self._ring, self._n
        bid = self._front_bid
        if bid < self._cursor:
            bid = self._cursor
        while True:
            bucket = ring[bid % n]
            if bucket:
                break
            bid += 1
        self._front_bid = bid
        if bucket[0][0] > deadline:
            return None
        entry = _heappop(bucket)
        self._ring_count -= 1
        self._size -= 1
        if bid != self._cursor:
            self._cursor = bid
            self._migrate()
        return entry

    def peek_time(self) -> float | None:
        if self._size == 0:
            return None
        if self._ring_count == 0:
            # Peek must not move the cursor: the engine's clock may still
            # be rewound relative to this horizon jump (run(until=...)
            # parks the clock before the next event), and later pushes
            # must stay inside the committed window.
            return self._overflow[0][0]
        ring, n = self._ring, self._n
        bid = self._front_bid
        if bid < self._cursor:
            bid = self._cursor
        while True:
            bucket = ring[bid % n]
            if bucket:
                self._front_bid = bid
                return bucket[0][0]
            bid += 1

    def _migrate(self) -> None:
        """Pull overflow entries now inside the window into the ring."""
        overflow = self._overflow
        if not overflow:
            return
        horizon = self._cursor + self._n
        ring, n = self._ring, self._n
        while overflow and overflow[0][0] < horizon:
            entry = _heappop(overflow)
            _heappush(ring[int(entry[0]) % n], entry)
            self._ring_count += 1

    def __len__(self) -> int:
        return self._size


def _make_queue(config: EngineConfig):
    if config.queue == "heap":
        return HeapQueue()
    return CalendarQueue(config.ring_buckets)


class Engine:
    """A deterministic event loop with a simulated millisecond clock."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()
        self._now = 0.0
        self._queue = _make_queue(self.config)
        #: pre-bound queue operations keep the per-event dispatch cost of
        #: pluggability to one indirect call
        self._push = self._queue.push
        self._pop = self._queue.pop
        self._pop_before = self._queue.pop_before
        self._peek = self._queue.peek_time
        self._seq = 0
        #: total queued entries (drives ``heap_high_water``)
        self._pending = 0
        #: queued entries that are *not* daemons; quiescence means zero
        self._real = 0
        self._running = False
        #: fabric churn accounting -- always on (plain integer bumps), read
        #: by the sim-speed meta-benchmark and the profiler snapshot.  Kept
        #: off the metrics registry so its snapshot (golden-hashed by the
        #: determinism suite) is unchanged.
        self.events_scheduled = 0
        self.daemon_scheduled = 0
        self.events_executed = 0
        self.daemon_executed = 0
        self.heap_high_water = 0
        #: wall-clock profiler (:class:`repro.obs.profile.SimProfiler`) or
        #: None; :meth:`step` guards on it so the disabled path costs one
        #: attribute check, mirroring ``ctx.tracer``
        self.profiler = None

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., None],
                 daemon: bool = False, args: tuple = _NO_ARGS) -> None:
        """Run ``callback(*args)`` after ``delay`` milliseconds of simulated
        time.

        ``args`` lets hot callers schedule a bound method plus arguments
        instead of allocating a closure per event.  A ``daemon`` entry never
        counts toward quiescence: ``run()`` with no deadline, ``drain()``
        and ``run_until()`` all ignore it when deciding whether the
        simulation has gone quiet.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        self._push((self._now + delay, seq, callback, args, daemon))
        self.events_scheduled += 1
        if daemon:
            self.daemon_scheduled += 1
        else:
            self._real += 1
        pending = self._pending + 1
        self._pending = pending
        if pending > self.heap_high_water:
            self.heap_high_water = pending

    def schedule_now(self, callback: Callable[..., None],
                     args: tuple = _NO_ARGS) -> None:
        """Run ``callback`` at the current instant, after pending same-time work.

        Inlines :meth:`schedule` with ``delay=0``: event triggering and
        process resumption funnel through here, so the extra frame is
        measurable.
        """
        seq = self._seq
        self._seq = seq + 1
        self._push((self._now, seq, callback, args, False))
        self.events_scheduled += 1
        self._real += 1
        pending = self._pending + 1
        self._pending = pending
        if pending > self.heap_high_water:
            self.heap_high_water = pending

    def step(self) -> bool:
        """Execute the next scheduled callback.  Returns False when idle."""
        if not self._pending:
            return False
        time, _seq, callback, args, daemon = self._pop()
        self._pending -= 1
        if daemon:
            self.daemon_executed += 1
        else:
            self._real -= 1
        self._now = time
        self.events_executed += 1
        # The profiler only *measures* the callback (wall clock never feeds
        # back into simulated state), so both branches are equivalent to the
        # simulation.
        if self.profiler is None:
            if args:
                callback(*args)
            else:
                callback()
        else:
            self.profiler.run_step(callback, daemon, time, args)
        return True

    def run(self, until: float | None = None) -> None:
        """Run until the event queue quiesces or the clock passes ``until``.

        With ``until`` set, the clock is advanced exactly to ``until`` when
        the queue quiesces early or the next event lies beyond it.  Without
        ``until``, pending daemon entries do not count as work -- the loop
        stops once only housekeeping remains.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        # Both loops inline the body of step(): one callback dispatch per
        # simulated event is the hottest loop in the repository, and the
        # inlining removes a bound call plus a redundant queue probe per
        # event (pop_before fuses the peek with the pop).
        try:
            if until is None:
                pop = self._pop
                while self._real:
                    time, _seq, callback, args, daemon = pop()
                    self._pending -= 1
                    if daemon:
                        self.daemon_executed += 1
                    else:
                        self._real -= 1
                    self._now = time
                    self.events_executed += 1
                    if self.profiler is None:
                        if args:
                            callback(*args)
                        else:
                            callback()
                    else:
                        self.profiler.run_step(callback, daemon, time, args)
                return
            if until < self._now:
                raise SimulationError(f"until={until} is before now={self._now}")
            pop_before = self._pop_before
            while True:
                entry = pop_before(until)
                if entry is None:
                    break
                time, _seq, callback, args, daemon = entry
                self._pending -= 1
                if daemon:
                    self.daemon_executed += 1
                else:
                    self._real -= 1
                self._now = time
                self.events_executed += 1
                if self.profiler is None:
                    if args:
                        callback(*args)
                    else:
                        callback()
                else:
                    self.profiler.run_step(callback, daemon, time, args)
            self._now = until
        finally:
            self._running = False

    def drain(self, max_ms: float) -> bool:
        """Run until the queue quiesces, giving up ``max_ms`` from now.

        The bounded form of :meth:`run` for driving a simulation to
        quiescence when some process may never stop (a retry loop waiting
        on a node that never recovers, say): returns True when the queue
        went quiet -- the clock then rests at the last event, not at the
        deadline -- and False when work remained at the deadline.  Daemon
        entries alone do not count as remaining work.
        """
        if max_ms < 0:
            raise SimulationError(f"cannot drain for negative time ({max_ms})")
        if self._running:
            raise SimulationError("engine is already running (re-entrant drain())")
        deadline = self._now + max_ms
        self._running = True
        try:
            pop_before = self._pop_before
            while self._real:
                entry = pop_before(deadline)
                if entry is None:
                    return False
                time, _seq, callback, args, daemon = entry
                self._pending -= 1
                if daemon:
                    self.daemon_executed += 1
                else:
                    self._real -= 1
                self._now = time
                self.events_executed += 1
                if self.profiler is None:
                    if args:
                        callback(*args)
                    else:
                        callback()
                else:
                    self.profiler.run_step(callback, daemon, time, args)
            return True
        finally:
            self._running = False

    def run_until(self, event: "object") -> object:
        """Run until ``event`` has been processed; return its value.

        Raises the event's exception if it failed, and ``SimulationError`` if
        the queue quiesces (only daemon entries left) while the event is
        still pending (deadlock).
        """
        # Local import to avoid a cycle at module-import time.
        from repro.sim.events import Event

        if not isinstance(event, Event):
            raise SimulationError(f"run_until() needs an Event, got {event!r}")
        step = self.step
        while not event.processed:
            # Re-checked every iteration: a callback chain may retire the
            # last real entry mid-run, leaving a daemon-only queue that
            # could otherwise spin the clock forever on probe ticks.
            if not self._real:
                daemons = self._pending
                detail = (
                    f"only {daemons} daemon entr"
                    f"{'y' if daemons == 1 else 'ies'} left"
                    if daemons else "event queue drained")
                raise SimulationError(
                    f"{detail} while {event!r} was still pending "
                    "(simulated deadlock)"
                )
            step()
        return event.result()

    def pending_count(self) -> int:
        """Number of non-daemon callbacks still queued (diagnostic)."""
        return self._real
