"""Shard migration as a crash-safe transaction.

Modeled on dist_zero's ``TransactionRole`` pattern: the invariant
("every key-space's committed data is readable at its placed replicas")
is briefly weakened while per-node roles cooperate to change the
topology, and every exit path -- commit, abort, or a crash of any
participant -- restores it.  Three roles move one shard:

- :class:`MigrationCoordinator` (on the *originator* node) drives the
  protocol and owns its durable state via the
  :class:`~repro.reconfig.registry.ReconfigRegistryServer`;
- :class:`SourceRole` (the node shedding the shard) keeps serving reads
  and writes throughout and answers the chunked snapshot reads -- it is
  the authoritative copy until the shrink epoch drops it;
- :class:`DestinationRole` (the node gaining the shard) materializes
  the key-space's server behind the catch-up read barrier, absorbs the
  copy and the live write fan-out, and starts serving only when the
  barrier drops.

The phase machine (each boundary fires the manager's phase hooks, which
is where chaos faults land)::

    intent   -- durable intent transaction on the registry (WAL-logged)
    extend   -- install epoch N+1: destination appended to the replica
                tuple; its server exists, barrier up; write_all now fans
                to source AND destination; reads still fail over past
                the barrier to the source
    copy     -- chunked snapshot/apply loop reusing the replication
                catch-up machinery (versioned cells make re-applies
                no-ops); each applied chunk fires a "copy" hook
    barrier  -- destination read barrier drops (it is now current:
                copied prefix + fanned-out live writes)
    commit   -- commit-sequence transaction on the registry, then
                install epoch N+2: source dropped from the tuple
    done     -- intent cleared

Any retryable failure past the copy budget -- source or destination
crashed or partitioned away -- rolls back: install an epoch whose map
content equals the pre-migration one (epochs only go forward) and clear
the intent.  Nothing is lost either way: until the shrink epoch the
source received every committed write, and after it the destination has
the full copy plus the fan-out.  A crash of the *originator* kills the
coordinator process itself; the durable intent lets
:meth:`~repro.reconfig.manager.ReconfigManager.resolve_pending` finish
the job on recovery -- forward iff the commit sequence reached the
intent's sequence number, backward otherwise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.app.library import ApplicationLibrary
from repro.replication.catchup import (
    CATCHUP_CHUNK_CELLS,
    _RETRYABLE_ERRORS,
    _apply_local,
    _list_peer,
    _snapshot_peer,
)
from repro.reconfig.registry import pack_intent, registry_call
from repro.sim import Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.reconfig.manager import ReconfigManager


class MigrationRollback(Exception):
    """Internal: the migration cannot proceed and must roll back."""


class SourceRole:
    """The shedding node: authoritative until the shrink epoch."""

    def __init__(self, manager: "ReconfigManager", keyspace: str,
                 node_name: str) -> None:
        self.manager = manager
        self.keyspace = keyspace
        self.node_name = node_name

    def server_exists(self) -> bool:
        tabs_node = self.manager.cluster.node(self.node_name)
        return self.keyspace in tabs_node.servers

    def factory(self):
        """The key-space's server factory (re-used to materialize the
        destination copy with identical schema and scale)."""
        tabs_node = self.manager.cluster.node(self.node_name)
        return tabs_node._server_factories[self.keyspace]


class DestinationRole:
    """The gaining node: barrier up until the copy completes."""

    def __init__(self, manager: "ReconfigManager", keyspace: str,
                 node_name: str) -> None:
        self.manager = manager
        self.keyspace = keyspace
        self.node_name = node_name

    @property
    def tabs_node(self):
        return self.manager.cluster.node(self.node_name)

    def server(self):
        return self.tabs_node.servers.get(self.keyspace)

    def ensure_server(self, source: SourceRole):
        """Materialize the key-space's server behind the read barrier
        (generator).  Re-entrant: a re-migration to a node that already
        holds an orphaned copy just re-raises the barrier -- the
        versioned copy loop brings it current again."""
        tabs_node = self.tabs_node
        if self.keyspace not in tabs_node._server_factories:
            tabs_node.add_server(source.factory())
            server = tabs_node.servers[self.keyspace]
            server.catchup_pending = True
            yield from server.setup()
            yield from server.on_recovered()
            server.start()
        else:
            server = self.server()
            if server is not None:
                server.catchup_pending = True
        return self.server()

    def set_barrier(self, pending: bool) -> None:
        server = self.server()
        if server is not None:
            server.catchup_pending = pending


class MigrationCoordinator:
    """Drives one shard migration on the originator node (generator)."""

    def __init__(self, manager: "ReconfigManager", keyspace: str,
                 source: str, dest: str) -> None:
        cluster = manager.cluster
        placement = cluster.placement
        replicas = placement.replicas(keyspace)
        from repro.errors import TabsError

        if source not in replicas:
            raise TabsError(f"{source!r} holds no copy of {keyspace!r}")
        if dest in replicas:
            raise TabsError(f"{dest!r} already holds {keyspace!r}")
        if cluster.node(dest).retired:
            raise TabsError(f"cannot migrate to retired node {dest!r}")
        self.manager = manager
        self.keyspace = keyspace
        self.source_role = SourceRole(manager, keyspace, source)
        self.dest_role = DestinationRole(manager, keyspace, dest)
        self.old_replicas = replicas
        # The destination takes the source's position in the ordered
        # tuple, inheriting anchor duty if the source was the anchor --
        # read-for-update serialization keeps a single home site.
        self.new_replicas = tuple(dest if node == source else node
                                  for node in replicas)
        self.seq = 0  # assigned from the registry when the run starts
        #: None while running; True committed; False rolled back
        self.result: bool | None = None
        originator = manager.originator
        self._tabs = cluster.node(originator)
        self._app = ApplicationLibrary(self._tabs.node, cluster.network)
        self._ctx = self._tabs.ctx

    # -- registry transactions ---------------------------------------------------

    def _registry(self, op: str, body: dict):
        """One WAL-logged transaction against the originator's registry
        (generator)."""
        reply = yield from registry_call(self._app, self.manager.originator,
                                         op, body)
        return reply

    # -- the protocol ------------------------------------------------------------

    def _info(self, **extra) -> dict:
        info = {"keyspace": self.keyspace,
                "source": self.source_role.node_name,
                "dest": self.dest_role.node_name,
                "originator": self.manager.originator,
                "seq": self.seq}
        info.update(extra)
        return info

    def run(self):
        """The full migration (generator; spawn on the originator node so
        an originator crash kills it at the current message boundary)."""
        ctx = self._ctx
        local = self.manager.originator
        ctx.metrics.counter(local, "reconfig.migrations_started").inc()
        span_id = 0
        if ctx.tracer is not None:
            span_id = ctx.tracer.begin(
                "reconfig.migrate", local, "RECONFIG",
                keyspace=self.keyspace,
                source=self.source_role.node_name,
                dest=self.dest_role.node_name)
        try:
            committed = yield from self._attempt()
        except _RETRYABLE_ERRORS + (MigrationRollback,):
            yield from self._rollback()
            committed = False
        self.result = committed
        if span_id and ctx.tracer is not None:
            ctx.tracer.end(span_id, committed=committed)
        return committed

    def _attempt(self):
        manager = self.manager
        state = yield from self._registry("reconfig_state", {})
        self.seq = int(state["seq"]) + 1
        intent = pack_intent(self.keyspace, self.source_role.node_name,
                             self.dest_role.node_name, self.old_replicas,
                             self.new_replicas, self.seq)
        yield from self._registry("reconfig_set_intent", {"intent": intent})
        manager.phase("intent", self._info())

        # Extend: the destination's server must exist (barrier up)
        # before the epoch that fans writes to it is installed.
        yield from self.dest_role.ensure_server(self.source_role)
        manager.install_epoch(manager.current_epoch().with_replicas(
            self.keyspace, self.old_replicas
            + (self.dest_role.node_name,)))
        manager.phase("extend", self._info())

        yield from self._copy()
        self.dest_role.set_barrier(False)
        manager.phase("barrier", self._info())

        # Commit: the durable decision, then the shrink epoch.
        yield from self._registry("reconfig_commit", {"seq": self.seq})
        manager.install_epoch(manager.current_epoch().with_replicas(
            self.keyspace, self.new_replicas))
        manager.phase("commit", self._info())

        yield from self._registry("reconfig_set_intent", {"intent": 0})
        manager.phase("done", self._info())
        self._ctx.metrics.counter(self.manager.originator,
                                  "reconfig.migrations_committed").inc()
        return True

    def _copy(self):
        """Chunked snapshot/apply from source into the destination copy,
        reusing the replication catch-up helpers.  Retries transient
        failures; past the budget the migration rolls back.

        The copy runs *two* full passes.  During the first, writers that
        cannot reach the destination (crashed, partitioned away, or
        simply suspected by the writer's failure detector) may commit on
        the source alone -- write-all-*available* semantics.  Those
        cells are newer on the source than anywhere else, and the shrink
        epoch is about to drop the source from the map; without a second
        pass they would be durably committed yet unreachable.  The
        second pass re-lists the source and re-copies (versioned cells
        make already-current chunks cheap no-ops), and every pass ends
        with a listing round trip *to the destination* -- an empty
        key-space copies zero chunks, so without the probe a dead
        destination would never be noticed and the barrier would drop on
        a copy nobody can serve.
        """
        manager = self.manager
        ctx = self._ctx
        config = manager.cluster.config
        reconfig = config.reconfig
        replication = config.replication
        source = self.source_role.node_name
        dest = self.dest_role.node_name
        view = self._tabs.replication.view
        attempt = 0
        passes = 0
        offsets: list[int] | None = None
        start = 0
        chunk_index = 0
        while True:
            if attempt:
                if attempt >= reconfig.copy_max_retries:
                    raise MigrationRollback(
                        f"copy of {self.keyspace!r} from {source!r} "
                        f"exhausted {attempt} retries")
                yield Timeout(ctx.engine,
                              ctx.random.uniform(0.5, 1.0)
                              * reconfig.copy_retry_ms * attempt)
            dest_server = self.dest_role.server()
            if not view.available(source) or dest_server is None:
                # A suspected source may be a false suspicion (partition
                # healing), and a crashed destination may restart: burn a
                # retry rather than rolling back outright.
                attempt += 1
                continue
            try:
                if offsets is None:
                    offsets = yield from _list_peer(
                        self._app, self.keyspace, source, replication)
                while start < len(offsets):
                    chunk = offsets[start:start + CATCHUP_CHUNK_CELLS]
                    cells = yield from _snapshot_peer(
                        self._app, self.keyspace, source, chunk,
                        replication)
                    yield from _apply_local(self._app, dest_server, cells,
                                            replication)
                    start += CATCHUP_CHUNK_CELLS
                    attempt = 0  # forward progress refreshes the budget
                    chunk_index += 1
                    manager.phase("copy", self._info(chunk=chunk_index))
                yield from _list_peer(self._app, self.keyspace, dest,
                                      replication)
            except _RETRYABLE_ERRORS:
                attempt += 1
                continue
            passes += 1
            if passes >= 2:
                return
            offsets = None  # second pass: pick up writes the fan-out missed
            start = 0

    def _rollback(self):
        """Restore the pre-migration map (as a fresh epoch) and clear the
        durable intent.  The destination's orphaned copy keeps its read
        barrier up -- nothing routes to it, and a retried migration
        re-uses it as a warm start (versioned cells merge safely)."""
        manager = self.manager
        self.dest_role.set_barrier(True)
        manager.install_epoch(manager.current_epoch().with_replicas(
            self.keyspace, self.old_replicas))
        self._ctx.metrics.counter(self.manager.originator,
                                  "reconfig.migrations_rolled_back").inc()
        manager.phase("rolled-back", self._info())
        yield from self._registry("reconfig_set_intent", {"intent": 0})
