"""The reconfiguration registry: durable migration state on one node.

A migration must survive the crash of the node driving it.  The
:class:`ReconfigRegistryServer` is an ordinary recoverable data server
(two one-word cells) on the *originator* node, written exclusively
through WAL-logged transactions:

- the **commit sequence** cell holds the sequence number of the last
  migration whose shrink epoch was durably decided;
- the **intent** cell holds the in-flight migration's full record --
  key-space, source, destination, the pre-migration replica tuple, the
  post-migration replica tuple, and its sequence number -- or nothing.

The protocol writes intent *before* touching placement and bumps the
commit sequence as the migration's commit action, so after any crash the
originator's log answers the only question that matters: did this
migration commit?  ``seq >= intent.seq`` means roll forward (re-install
the new map); anything else means roll back (re-install the old map).
Presumed abort covers the edges for free -- an intent transaction cut
down mid-write simply never happened.

Single-copy by design, like a Transaction Manager's own log: the
registry is the originator's migration journal, not a replicated
database.  If the originator is down, no new migration can start and
the last one resolves when it recovers -- the same blocking contract
2PC gives a coordinator's participants.
"""

from __future__ import annotations

from repro.locking.modes import READ, WRITE
from repro.servers.base import BaseDataServer
from repro.txn.ids import TransactionID

#: well-known server name, registered on the originator node
REGISTRY_SERVER = "reconfig_registry"

#: cells are one word, like the workload servers'
WORD_SIZE = 4

_SEQ_CELL = 1
_INTENT_CELL = 2


def registry_call(app, node_name: str, op: str, body: dict):
    """One WAL-logged transaction against ``node_name``'s registry
    (generator).  A refused commit raises ``RuntimeError`` -- durable
    migration state must never be assumed written.  Shared by the
    migration coordinator and the crash-resume path."""
    tid = yield from app.begin_transaction()
    try:
        ref = yield from app.lookup_one(REGISTRY_SERVER,
                                        node_name=node_name)
        reply = yield from app.call(ref, op, body, tid)
    except Exception:
        yield from app.abort_transaction(tid, reason=f"reconfig {op}")
        raise
    committed = yield from app.end_transaction(tid)
    if not committed:
        raise RuntimeError(f"reconfig {op} transaction aborted")
    return reply


def pack_intent(keyspace: str, source: str, dest: str,
                old_replicas: tuple[str, ...],
                new_replicas: tuple[str, ...], seq: int) -> tuple:
    return ("migrate", keyspace, source, dest,
            tuple(old_replicas), tuple(new_replicas), int(seq))


def unpack_intent(raw) -> dict | None:
    """The intent cell's record as a dict, or None when no migration is
    in flight (unwritten cell or the cleared-intent sentinel 0)."""
    if not raw or not isinstance(raw, tuple):
        return None
    _tag, keyspace, source, dest, old_replicas, new_replicas, seq = raw
    return {"keyspace": keyspace, "source": source, "dest": dest,
            "old_replicas": tuple(old_replicas),
            "new_replicas": tuple(new_replicas), "seq": int(seq)}


class ReconfigRegistryServer(BaseDataServer):
    """Two recoverable cells: commit sequence and migration intent."""

    TYPE_NAME = "reconfig_registry"
    SEGMENT_PAGES = 1

    def _cell_oid(self, cell: int):
        va = self.base_va + (cell - 1) * WORD_SIZE
        return self.library.create_object_id(va, WORD_SIZE)

    def _write_cell(self, cell: int, value, tid: TransactionID):
        oid = self._cell_oid(cell)
        lib = self.library
        yield from lib.lock_object(tid, oid, WRITE)
        yield from lib.pin_and_buffer(tid, oid)
        yield from lib.write_object(oid, value)
        yield from lib.log_and_unpin(tid, oid)

    def op_reconfig_state(self, body: dict, tid: TransactionID):
        """Read both cells (the resume path's first question)."""
        lib = self.library
        values = []
        for cell in (_SEQ_CELL, _INTENT_CELL):
            oid = self._cell_oid(cell)
            yield from lib.lock_object(tid, oid, READ)
            values.append((yield from lib.read_object(oid)))
        seq_raw, intent_raw = values
        return {"seq": int(seq_raw) if seq_raw else 0,
                "intent": intent_raw if intent_raw else 0}

    def op_reconfig_set_intent(self, body: dict, tid: TransactionID):
        """Durably record (or clear, with 0) the migration intent."""
        yield from self._write_cell(_INTENT_CELL, body["intent"], tid)
        return {"ok": True}

    def op_reconfig_commit(self, body: dict, tid: TransactionID):
        """Bump the commit sequence -- the migration's commit action."""
        yield from self._write_cell(_SEQ_CELL, int(body["seq"]), tid)
        return {"ok": True}
