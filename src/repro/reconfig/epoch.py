"""Epoch-versioned placement.

A :class:`PlacementEpoch` pairs an immutable
:class:`~repro.replication.placement.PlacementMap` with a monotonically
increasing epoch number.  Reconfiguration never mutates a map in place:
it builds a *successor* epoch (one higher, new map) and installs it on
the cluster and every node's replication runtime atomically from the
simulation's point of view.  The epoch number -- not the map identity --
is what transactions are validated against: a transaction stamped with
epoch N aborts at commit if the cluster moved to N+1 meanwhile, because
its reads and write fan-outs were routed by a map that no longer
describes where the data lives.

Epochs only ever go forward.  A migration *rollback* is itself a new
epoch whose map content equals the pre-migration one -- going back to
an old number would let a transaction stamped under the aborted epoch
slip through validation.
"""

from __future__ import annotations

from repro.errors import TabsError
from repro.replication.placement import PlacementMap


class PlacementEpoch:
    """An immutable (epoch number, placement map) pair."""

    __slots__ = ("epoch", "placement")

    def __init__(self, epoch: int, placement: PlacementMap) -> None:
        if epoch < 0:
            raise TabsError("placement epoch must be >= 0")
        self.epoch = epoch
        self.placement = placement

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PlacementEpoch({self.epoch}, "
                f"{len(self.placement)} key-spaces)")

    def replicas(self, keyspace: str) -> tuple[str, ...]:
        return self.placement.replicas(keyspace)

    # -- successor builders ------------------------------------------------------

    def successor(self, assignments: dict[str, tuple[str, ...]]
                  ) -> "PlacementEpoch":
        """The next epoch with a fully spelled-out map."""
        return PlacementEpoch(self.epoch + 1, PlacementMap(assignments))

    def with_replicas(self, keyspace: str,
                      replicas: tuple[str, ...]) -> "PlacementEpoch":
        """Successor with one key-space's replica tuple replaced."""
        assignments = self.placement.assignments()
        if keyspace not in assignments:
            raise TabsError(f"no placement for key-space {keyspace!r}")
        assignments[keyspace] = tuple(replicas)
        return self.successor(assignments)

    def with_replica_added(self, keyspace: str, node: str
                           ) -> "PlacementEpoch":
        """Successor with ``node`` appended to ``keyspace``'s replicas
        (the migration *extend* step: writes start fanning to it)."""
        replicas = self.placement.replicas(keyspace)
        if node in replicas:
            raise TabsError(f"{node!r} already replicates {keyspace!r}")
        return self.with_replicas(keyspace, replicas + (node,))

    def with_replica_removed(self, keyspace: str, node: str
                             ) -> "PlacementEpoch":
        """Successor with ``node`` dropped from ``keyspace``'s replicas
        (the migration *shrink* step; refuses to drop the last copy)."""
        replicas = self.placement.replicas(keyspace)
        if node not in replicas:
            raise TabsError(f"{node!r} does not replicate {keyspace!r}")
        if len(replicas) == 1:
            raise TabsError(f"refusing to drop the last copy of "
                            f"{keyspace!r}")
        return self.with_replicas(
            keyspace, tuple(n for n in replicas if n != node))
