"""``repro.reconfig``: online reconfiguration -- nodes join, leave, and
shed shards live, with migrations executed as crash-safe transactions.

PR 7 made placement static: a :class:`~repro.replication.placement
.PlacementMap` decided once at construction.  This package makes it
*epoch-versioned* and changeable while traffic flows:

- :class:`~repro.reconfig.epoch.PlacementEpoch` -- an immutable
  (epoch number, placement map) pair with successor builders.  Routers
  stamp each transaction with the epoch it routed under, and
  commit-time validation aborts it if the epoch moved meanwhile
  (:func:`~repro.replication.view.validate_footprint` rule 3).
- :class:`~repro.reconfig.registry.ReconfigRegistryServer` -- a tiny
  recoverable data server on the originator node holding the committed
  migration sequence number and the current migration *intent*.  Both
  are written by ordinary WAL-logged transactions, so the originator's
  log -- with presumed-abort -- is the migration's commit record.
- :class:`~repro.reconfig.migration.MigrationCoordinator` -- the
  dist_zero-style role that moves one shard: durable intent, an
  *extend* epoch that adds the destination (behind the catch-up read
  barrier, so new writes fan to both copies while reads stay away), a
  chunked copy reusing the replication catch-up machinery, then the
  *shrink* epoch dropping the source as the commit action.  A crash of
  originator, source, or destination at any message boundary rolls
  back to the old epoch with zero committed-state loss.
- :class:`~repro.reconfig.manager.ReconfigManager` -- the cluster-side
  surface: live join, retirement (drain shards away, graceful power
  off, deregister), epoch installation, and crash resolution of
  interrupted migrations on originator recovery.

Selected by :class:`~repro.core.config.ReconfigConfig` on
:class:`~repro.core.config.TabsConfig`; off by default, in which case
membership and placement stay fixed and every historical golden and
bench baseline replays byte-identically.
"""

from repro.reconfig.epoch import PlacementEpoch
from repro.reconfig.manager import ReconfigManager
from repro.reconfig.migration import MigrationCoordinator
from repro.reconfig.registry import REGISTRY_SERVER, ReconfigRegistryServer

__all__ = [
    "MigrationCoordinator",
    "PlacementEpoch",
    "REGISTRY_SERVER",
    "ReconfigManager",
    "ReconfigRegistryServer",
]
