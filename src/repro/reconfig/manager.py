"""The cluster-side reconfiguration surface.

One :class:`ReconfigManager` per cluster, anchored on an *originator*
node that hosts the durable
:class:`~repro.reconfig.registry.ReconfigRegistryServer` and drives
every membership and placement change:

- :meth:`join` -- a node boots into the *running* cluster, registers
  with the name fabric, gets discovered by every peer's failure
  detector, and becomes eligible as a migration destination;
- :meth:`run_migration` / :meth:`spawn_migration` -- move one shard via
  a :class:`~repro.reconfig.migration.MigrationCoordinator` (spawned as
  a process *on the originator node*, so an originator crash cuts it
  down at a message boundary exactly like any other victim of the
  fault);
- :meth:`retire` -- drain a node by migrating every shard it hosts to
  the least-loaded eligible peer, then gracefully power it off and
  deregister it from the network fabric;
- :meth:`install_epoch` -- adopt a successor
  :class:`~repro.reconfig.epoch.PlacementEpoch` on the cluster and on
  every live node's replication runtime.  From the simulation's point
  of view this is atomic (no yield between per-node installs), which is
  the simulator's stand-in for an epoch-change broadcast; the *window*
  where it matters -- transactions routed under the old epoch still in
  flight -- is exactly what footprint rule 3 closes;
- :meth:`resolve_pending` -- the recovery hook armed on the originator:
  after a crash, read the registry and either roll the interrupted
  migration forward (its commit sequence was durably bumped) or back
  (it was not).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.app.library import ApplicationLibrary
from repro.errors import TabsError
from repro.reconfig.epoch import PlacementEpoch
from repro.reconfig.migration import MigrationCoordinator
from repro.reconfig.registry import (
    REGISTRY_SERVER,
    ReconfigRegistryServer,
    registry_call,
    unpack_intent,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.cluster import TabsCluster
    from repro.core.facility import TabsNode


class ReconfigManager:
    """Online membership and placement changes for one cluster."""

    def __init__(self, cluster: "TabsCluster", originator: str) -> None:
        if not cluster.config.reconfig.enabled:
            raise TabsError("online reconfiguration is disabled "
                            "(set config.reconfig.enabled)")
        if cluster.placement is None:
            raise TabsError("reconfiguration needs a placement map "
                            "(enable replication and build a workload)")
        self.cluster = cluster
        self.originator = originator
        originator_tabs = cluster.node(originator)
        #: called as hook(phase, info) at every migration phase boundary;
        #: the chaos controller arms its migration faults here
        self.phase_hooks: list[Callable] = []
        #: deterministic reconfiguration trace:
        #: (time_ms, phase, keyspace, source, dest, epoch)
        self.events: list[tuple] = []
        if REGISTRY_SERVER not in originator_tabs._server_factories:
            factory = ReconfigRegistryServer.factory(REGISTRY_SERVER)
            if cluster._started:
                cluster.add_server_live(originator, factory)
            else:
                originator_tabs.add_server(factory)
        # Durable resume: after every crash recovery of the originator,
        # consult the registry for a migration the crash cut short.
        originator_tabs.recovery_hooks.append(self.resolve_pending)
        cluster.reconfig = self

    # -- epochs ------------------------------------------------------------------

    def current_epoch(self) -> PlacementEpoch:
        return PlacementEpoch(self.cluster.placement_epoch,
                              self.cluster.placement)

    def install_epoch(self, epoch: PlacementEpoch) -> None:
        """Adopt a successor epoch cluster-wide.

        No yield between per-node installs: the epoch change is atomic in
        simulated time.  In-flight transactions routed under the old
        epoch are caught at commit by footprint rule 3.
        """
        if epoch.epoch <= self.cluster.placement_epoch:
            raise TabsError(
                f"placement epochs only go forward "
                f"({self.cluster.placement_epoch} -> {epoch.epoch})")
        self.cluster.placement = epoch.placement
        self.cluster.placement_epoch = epoch.epoch
        for tabs_node in self.cluster.nodes.values():
            if tabs_node.replication is not None and not tabs_node.retired:
                tabs_node.replication.install_epoch(epoch.epoch,
                                                    epoch.placement)
        self.cluster.metrics.counter(self.originator,
                                     "reconfig.epoch_installs").inc()

    def phase(self, phase: str, info: dict) -> None:
        """Record a migration phase boundary and fire the chaos hooks."""
        self.events.append((self.cluster.ctx.now, phase,
                            info.get("keyspace"), info.get("source"),
                            info.get("dest"),
                            self.cluster.placement_epoch))
        for hook in list(self.phase_hooks):
            hook(phase, info)

    # -- membership --------------------------------------------------------------

    def join(self, name: str) -> "TabsNode":
        """A node joins the running cluster (driver surface).

        The node boots live (see :meth:`TabsCluster.add_node`), peers'
        failure detectors discover it, and it becomes eligible as a
        migration destination.  It hosts no shards until one is migrated
        to it.
        """
        tabs_node = self.cluster.add_node(name)
        if self.cluster._started:
            self.cluster.settle()
        self.cluster.metrics.counter(self.originator,
                                     "reconfig.nodes_joined").inc()
        return tabs_node

    def retire(self, node_name: str) -> None:
        """Drain and remove a node (driver surface).

        Every shard the node hosts is migrated to the least-loaded
        eligible peer (fewest hosted shards, name as tie-break); a
        migration that fails aborts the retirement with the node still
        in service.  Once drained the node is gracefully powered off
        (flush + log force -- its disk must stand on its own, no
        recovery pass will ever visit it again) and deregistered from
        the network fabric so failure detectors forget it.
        """
        cluster = self.cluster
        if node_name == self.originator:
            raise TabsError("cannot retire the reconfiguration "
                            "originator (it holds the registry)")
        tabs_node = cluster.node(node_name)
        if tabs_node.retired:
            raise TabsError(f"node {node_name!r} is already retired")
        for keyspace in sorted(cluster.placement.keyspaces_on(node_name)):
            dest = self._pick_destination(keyspace, node_name)
            if not self.run_migration(keyspace, node_name, dest):
                raise TabsError(
                    f"migration of {keyspace!r} off {node_name!r} "
                    f"failed; retirement aborted with the node still "
                    f"in service")
        cluster.run_on(node_name, tabs_node.shutdown_generator())
        tabs_node.retired = True
        cluster.network.deregister(node_name)
        cluster.metrics.counter(self.originator,
                                "reconfig.nodes_retired").inc()

    def _pick_destination(self, keyspace: str, retiring: str) -> str:
        """Least-loaded live node that does not already hold the shard."""
        placement = self.cluster.placement
        replicas = placement.replicas(keyspace)
        candidates = [
            name for name, tabs_node in self.cluster.nodes.items()
            if name != retiring and not tabs_node.retired
            and tabs_node.node.alive and name not in replicas]
        if not candidates:
            raise TabsError(f"no eligible destination for {keyspace!r} "
                            f"(retiring {retiring!r})")
        return min(candidates,
                   key=lambda name: (len(placement.keyspaces_on(name)),
                                     name))

    # -- migrations --------------------------------------------------------------

    def spawn_migration(self, keyspace: str, source: str,
                        dest: str) -> MigrationCoordinator:
        """Start a migration as a process on the originator node.

        Returns the coordinator immediately; its ``result`` resolves to
        True (committed) or False (rolled back) when the process
        finishes -- or stays None if the originator crashes mid-flight,
        in which case :meth:`resolve_pending` settles the outcome on
        recovery.
        """
        coordinator = MigrationCoordinator(self, keyspace, source, dest)
        originator_tabs = self.cluster.node(self.originator)
        originator_tabs.node.spawn(
            coordinator.run(),
            name=f"reconfig:migrate:{keyspace}", defused=True)
        return coordinator

    def run_migration(self, keyspace: str, source: str,
                      dest: str) -> bool | None:
        """Run one migration to completion (driver surface)."""
        coordinator = self.spawn_migration(keyspace, source, dest)
        self.cluster.settle()
        return coordinator.result

    # -- crash resume ------------------------------------------------------------

    def resolve_pending(self):
        """Settle a migration the originator's crash cut short
        (generator; armed as a recovery hook).

        The registry answers the only question that matters: did the
        commit sequence reach the intent's sequence number?  Yes means
        the shrink epoch was durably decided -- roll forward by
        re-installing the post-migration map.  No means it was not --
        roll back by re-installing the pre-migration map.  Either way
        the answer is re-installed as a *fresh* epoch (epochs only go
        forward) and the intent is cleared; the resolution is idempotent
        across repeated crashes.
        """
        cluster = self.cluster
        tabs_node = cluster.node(self.originator)
        app = ApplicationLibrary(tabs_node.node, cluster.network)
        state = yield from registry_call(app, self.originator,
                                         "reconfig_state", {})
        intent = unpack_intent(state["intent"])
        if intent is None:
            return
        forward = int(state["seq"]) >= intent["seq"]
        keyspace = intent["keyspace"]
        replicas = (intent["new_replicas"] if forward
                    else intent["old_replicas"])
        if not forward:
            # The destination's partial copy is an orphan: make sure its
            # read barrier is up before placement changes settle (it may
            # have dropped if the crash hit between barrier and commit).
            dest_tabs = cluster.nodes.get(intent["dest"])
            if dest_tabs is not None:
                server = dest_tabs.servers.get(keyspace)
                if server is not None:
                    server.catchup_pending = True
        self.install_epoch(self.current_epoch().with_replicas(keyspace,
                                                              replicas))
        outcome = "resumed-forward" if forward else "resumed-back"
        cluster.metrics.counter(self.originator,
                                f"reconfig.{outcome}").inc()
        self.phase(outcome, dict(intent))
        yield from registry_call(app, self.originator,
                                 "reconfig_set_intent", {"intent": 0})
