"""Typed messages, in the style of Accent.

Accent messages are arbitrarily long vectors of typed information addressed
to ports; large messages travel by copy-on-write remapping.  The paper's
cost model distinguishes three local message classes (Section 5.1):

- *small contiguous* -- less than 500 bytes (typically < 100),
- *large contiguous* -- about 1100 bytes on average,
- *pointer* -- a pointer to data transferred by copy-on-write remapping.

:func:`classify_size` applies the paper's thresholds.  A message may also
carry a transaction identifier; Communication Managers scan it to build the
two-phase-commit spanning tree (Section 3.2.4), exactly as in TABS.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.kernel.costs import Primitive

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.ports import Port

#: Messages strictly smaller than this many bytes are "small contiguous".
SMALL_MESSAGE_LIMIT = 500

_message_ids = itertools.count(1)


class MessageKind(enum.Enum):
    """The local message classes of the cost model."""

    #: identity hash (C fast path) -- members key the kind->primitive dict
    #: on every charged send; see :class:`repro.kernel.costs.Primitive`
    __hash__ = object.__hash__

    SMALL = "small"
    LARGE = "large"
    POINTER = "pointer"
    #: Not individually charged: its cost is folded into a composite
    #: primitive (e.g. the two halves of a Data Server Call).
    UNCHARGED = "uncharged"

    @property
    def primitive(self) -> Primitive | None:
        return _KIND_TO_PRIMITIVE.get(self)


_KIND_TO_PRIMITIVE = {
    MessageKind.SMALL: Primitive.SMALL_MESSAGE,
    MessageKind.LARGE: Primitive.LARGE_MESSAGE,
    MessageKind.POINTER: Primitive.POINTER_MESSAGE,
}


def classify_size(size_bytes: int) -> MessageKind:
    """Classify a contiguous message by its byte size (paper thresholds)."""
    if size_bytes < SMALL_MESSAGE_LIMIT:
        return MessageKind.SMALL
    return MessageKind.LARGE


@dataclass(slots=True)
class Message:
    """One message in flight between simulated processes."""

    op: str
    body: dict = field(default_factory=dict)
    reply_to: "Port | None" = None
    kind: MessageKind = MessageKind.SMALL
    #: Transaction this message acts on behalf of, if any.  Scanned by the
    #: Communication Manager when the message crosses nodes.
    tid: object = None
    sender_node: str = ""
    #: True when the reply to this request travels inside the merged
    #: kernel/TM/RM component and must not be charged as a message
    #: (Section 5.3's improved-architecture projection).
    free_reply: bool = False
    #: span id of the sender's innermost open span for this message's
    #: transaction family; lets the receiving node parent its spans across
    #: the wire.  0 when tracing is off or the sender had no open span.
    trace_parent: int = 0
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Message #{self.msg_id} {self.op!r} {self.kind.value}"
                f"{' tid=' + str(self.tid) if self.tid is not None else ''}>")
