"""Virtual memory with recoverable segments and demand paging.

The failure-atomic and/or permanent data of a TABS data server lives in disk
files called *recoverable segments* that are mapped into the server's
virtual address space; the kernel's paging system updates the segment
directly instead of paging storage (Section 3.2.1).

To support write-ahead logging, the kernel exchanges three message types
with the Recovery Manager:

1. a notice that a page backed by a recoverable segment has been modified,
2. a request to copy a modified page back to its segment -- the kernel may
   not write until the Recovery Manager confirms that all log records for
   the page are on non-volatile storage (and supplies the sequence number
   to stamp into the sector header),
3. a notice that the page was copied successfully.

The conversation is abstracted as :class:`PagerClient`; the Recovery
Manager installs a real implementation, and :class:`NullPagerClient` keeps
the kernel usable in isolation (unit tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import KernelError, PageCorruption
from repro.kernel.context import SimContext
from repro.kernel.disk import PAGE_SIZE, Disk


@dataclass(frozen=True, order=True)
class ObjectID:
    """A logical object: (recoverable segment, byte offset, length).

    The server library converts between ObjectIDs and virtual addresses
    (Table 3-1's address-arithmetic routines).  An object's value is stored
    at its start offset; its length determines which pages it covers.
    """

    segment_id: str
    offset: int
    length: int

    def pages(self) -> range:
        """The page numbers this object's representation covers."""
        first = self.offset // PAGE_SIZE
        last = (self.offset + max(self.length, 1) - 1) // PAGE_SIZE
        return range(first, last + 1)

    @property
    def single_page(self) -> bool:
        """True if the representation fits in one page.

        Value logging requires this ("the undo and redo portions of a log
        record contain the old and new values of at most one page"); only
        operation logging covers multi-page objects in one record.
        """
        return len(self.pages()) == 1


@dataclass(frozen=True)
class RecoverableSegment:
    """A disk file mapped into virtual memory (one per data server)."""

    segment_id: str
    page_count: int
    base_va: int

    @property
    def size(self) -> int:
        return self.page_count * PAGE_SIZE

    def va_of(self, offset: int) -> int:
        return self.base_va + offset

    def offset_of(self, va: int) -> int:
        offset = va - self.base_va
        if not 0 <= offset < self.size:
            raise KernelError(
                f"virtual address {va} outside segment {self.segment_id!r}")
        return offset


class PagerClient:
    """The kernel side of the kernel <-> Recovery Manager WAL conversation."""

    def first_modified(self, segment_id: str, page: int) -> Iterator:
        """Message 1: a recoverable page was modified under a new pin epoch."""
        raise NotImplementedError

    def write_permission(self, segment_id: str, page: int,
                         page_lsn: int) -> Iterator:
        """Message 2: ask to write the page back; returns the sequence
        number to stamp into the sector header (generator)."""
        raise NotImplementedError

    def page_written(self, segment_id: str, page: int) -> Iterator:
        """Message 3: the page reached its recoverable segment."""
        raise NotImplementedError


class NullPagerClient(PagerClient):
    """No Recovery Manager attached: writes are allowed unconditionally."""

    def first_modified(self, segment_id: str, page: int) -> Iterator:
        return
        yield  # pragma: no cover - makes this a generator

    def write_permission(self, segment_id: str, page: int,
                         page_lsn: int) -> Iterator:
        return 0
        yield  # pragma: no cover

    def page_written(self, segment_id: str, page: int) -> Iterator:
        return
        yield  # pragma: no cover


@dataclass
class Frame:
    """A resident page."""

    segment_id: str
    page: int
    data: dict[int, object]
    dirty: bool = False
    pin_count: int = 0
    #: highest log sequence number of records describing this page's updates
    page_lsn: int = 0
    #: whether the "first modified" notice was sent this pin epoch
    modify_notified: bool = False

    @property
    def key(self) -> tuple[str, int]:
        return (self.segment_id, self.page)


class VirtualMemory:
    """Per-node page cache over recoverable segments.

    ``capacity_pages`` bounds physical memory; faulting a page in when the
    cache is full evicts the least recently used unpinned page, writing it
    back through the WAL gate first if it is dirty.  All contents are
    volatile: :meth:`clear_volatile` models a crash.
    """

    def __init__(self, ctx: SimContext, disk: Disk,
                 capacity_pages: int = 1500) -> None:
        if capacity_pages < 1:
            raise KernelError("page cache needs at least one frame")
        self.ctx = ctx
        self.disk = disk
        self.capacity_pages = capacity_pages
        self.pager_client: PagerClient = NullPagerClient()
        #: media-repair hook: ``generator(segment_id, page) -> bool``.  The
        #: facility's RecoverySupervisor installs one; a page fault whose
        #: disk read trips :class:`PageCorruption` runs it and retries the
        #: read once when it reports the page repaired.  None (bare kernel)
        #: lets the corruption propagate.
        self.media_repairer = None
        self._segments: dict[str, RecoverableSegment] = {}
        self._frames: dict[tuple[str, int], Frame] = {}
        self._lru: dict[tuple[str, int], None] = {}  # insertion-ordered set
        self.faults = 0
        self.evictions = 0

    # -- segment mapping ----------------------------------------------------

    def map_segment(self, segment: RecoverableSegment) -> None:
        """Map a recoverable segment into this address space."""
        for existing in self._segments.values():
            overlap = (segment.base_va < existing.base_va + existing.size and
                       existing.base_va < segment.base_va + segment.size)
            if overlap and existing.segment_id != segment.segment_id:
                raise KernelError(
                    f"segment {segment.segment_id!r} overlaps "
                    f"{existing.segment_id!r} in the address space")
        self._segments[segment.segment_id] = segment

    def segment(self, segment_id: str) -> RecoverableSegment:
        try:
            return self._segments[segment_id]
        except KeyError:
            raise KernelError(f"segment {segment_id!r} is not mapped") from None

    def object_id_for_va(self, va: int, length: int) -> ObjectID:
        """Address arithmetic: which object does a virtual address name?"""
        for segment in self._segments.values():
            if segment.base_va <= va < segment.base_va + segment.size:
                return ObjectID(segment.segment_id, segment.offset_of(va),
                                length)
        raise KernelError(f"virtual address {va} is not mapped")

    def va_for_object_id(self, oid: ObjectID) -> int:
        return self.segment(oid.segment_id).va_of(oid.offset)

    # -- paging ------------------------------------------------------------

    def _touch_lru(self, key: tuple[str, int]) -> None:
        self._lru.pop(key, None)
        self._lru[key] = None

    def ensure_resident(self, segment_id: str, page: int) -> Iterator:
        """Fault the page in if needed; returns its :class:`Frame`."""
        self.segment(segment_id)  # validates the mapping
        key = (segment_id, page)
        frame = self._frames.get(key)
        if frame is None:
            self.faults += 1
            while len(self._frames) >= self.capacity_pages:
                yield from self._evict_one()
            try:
                data = yield from self.disk.read_page(segment_id, page)
            except PageCorruption:
                # Graceful degradation: let the media repairer rebuild the
                # page (archived base + log roll-forward), then retry the
                # read once.  A second failure -- or no repairer -- means
                # the corruption propagates to the faulting operation.
                if self.media_repairer is None:
                    raise
                repaired = yield from self.media_repairer(segment_id, page)
                if not repaired:
                    raise
                data = yield from self.disk.read_page(segment_id, page)
            # Re-check after the I/O wait: another coroutine may have
            # faulted the same page in concurrently, and replacing its
            # frame would discard its pins and dirty data.
            frame = self._frames.get(key)
            if frame is None:
                frame = Frame(segment_id, page, data)
                self._frames[key] = frame
        self._touch_lru(key)
        return frame

    def _evict_one(self) -> Iterator:
        victim_key = next(
            (key for key in self._lru if self._frames[key].pin_count == 0),
            None)
        if victim_key is None:
            raise KernelError(
                "every page frame is pinned; cannot fault a page in "
                "(data server violated the pin discipline)")
        frame = self._frames[victim_key]
        if frame.dirty:
            yield from self._write_back(frame)
        del self._frames[victim_key]
        del self._lru[victim_key]
        self.evictions += 1

    def _write_back(self, frame: Frame) -> Iterator:
        """Push a dirty page to its segment through the WAL gate."""
        sequence_number = yield from self.pager_client.write_permission(
            frame.segment_id, frame.page, frame.page_lsn)
        yield from self.disk.write_page(
            frame.segment_id, frame.page, frame.data, sequence_number)
        frame.dirty = False
        yield from self.pager_client.page_written(frame.segment_id,
                                                  frame.page)

    # -- object access -------------------------------------------------------

    def read_object(self, oid: ObjectID) -> Iterator:
        """Read an object's value (faulting in every covered page)."""
        first_frame = None
        for page in oid.pages():
            frame = yield from self.ensure_resident(oid.segment_id, page)
            if first_frame is None:
                first_frame = frame
        assert first_frame is not None
        return first_frame.data.get(oid.offset)

    def write_object(self, oid: ObjectID, value: object) -> Iterator:
        """Overwrite an object's value in the page cache.

        Marks every covered page dirty and sends the Recovery Manager the
        first-modified notice for pages not yet reported this pin epoch.
        """
        frames = []
        for page in oid.pages():
            frame = yield from self.ensure_resident(oid.segment_id, page)
            frames.append(frame)
        for frame in frames:
            frame.dirty = True
            if not frame.modify_notified:
                frame.modify_notified = True
                yield from self.pager_client.first_modified(
                    frame.segment_id, frame.page)
        frames[0].data[oid.offset] = value

    # -- pin control (Table 3-1 paging-control semantics) ---------------------

    def pin(self, oid: ObjectID) -> Iterator:
        """Prevent the object's pages from being written back."""
        for page in oid.pages():
            frame = yield from self.ensure_resident(oid.segment_id, page)
            frame.pin_count += 1

    def unpin(self, oid: ObjectID) -> None:
        """Release a pin; resets the first-modified notice epoch."""
        for page in oid.pages():
            frame = self._frames.get((oid.segment_id, page))
            if frame is None or frame.pin_count == 0:
                raise KernelError(f"unpin of unpinned page {oid}")
            frame.pin_count -= 1
            if frame.pin_count == 0:
                frame.modify_notified = False

    def unpin_all(self) -> None:
        """Drop every pin (Table 3-1's ``UnPinAllObjects``)."""
        for frame in self._frames.values():
            frame.pin_count = 0
            frame.modify_notified = False

    def is_pinned(self, oid: ObjectID) -> bool:
        return any(
            (frame := self._frames.get((oid.segment_id, page))) is not None
            and frame.pin_count > 0
            for page in oid.pages())

    def set_page_lsn(self, oid: ObjectID, lsn: int) -> None:
        """Record that log record ``lsn`` describes updates to these pages."""
        for page in oid.pages():
            frame = self._frames.get((oid.segment_id, page))
            if frame is not None:
                frame.page_lsn = max(frame.page_lsn, lsn)

    # -- checkpoint / crash support -------------------------------------------

    def dirty_pages(self) -> list[tuple[str, int]]:
        """Keys of all dirty resident pages (checkpoint records these)."""
        return [frame.key for frame in self._frames.values() if frame.dirty]

    def resident_pages(self) -> list[tuple[str, int]]:
        return list(self._frames)

    def flush_page(self, segment_id: str, page: int) -> Iterator:
        """Force one dirty page to its segment (log reclamation)."""
        frame = self._frames.get((segment_id, page))
        if frame is not None and frame.dirty:
            yield from self._write_back(frame)

    def flush_all(self) -> Iterator:
        """Force every dirty *unpinned* page to non-volatile storage.

        Pinned pages hold modifications whose log records are not yet
        spooled; writing them would break the write-ahead invariant, so
        checkpoints and log reclamation leave them alone.
        """
        for key in list(self._frames):
            frame = self._frames.get(key)
            if frame is not None and frame.dirty and frame.pin_count == 0:
                yield from self._write_back(frame)

    def clear_volatile(self) -> None:
        """Crash: all frames (including dirty data) vanish."""
        self._frames.clear()
        self._lru.clear()

    def frame(self, segment_id: str, page: int) -> Frame | None:
        """Inspect a resident frame without cost (tests/diagnostics)."""
        return self._frames.get((segment_id, page))
