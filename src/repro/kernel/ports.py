"""Ports: Accent's addressed message queues.

Many processes may hold send rights to a port; exactly one holds receive
rights.  Our ports belong to a :class:`~repro.kernel.node.Node`; when the
node crashes, the port dies and subsequent sends are silently dropped (a
crashed Accent node neither receives nor acknowledges anything -- senders
discover the failure through time-outs or through the Communication
Manager's failure detector).

Sending charges the message's primitive cost as *delivery latency*: the
message is enqueued at the receiver after the primitive time elapses, and
the sender continues immediately, matching Accent's asynchronous sends.
"""

from __future__ import annotations

import collections
import itertools
from typing import TYPE_CHECKING

from repro.errors import InvalidPort
from repro.kernel.context import SimContext
from repro.kernel.messages import Message
from repro.sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.node import Node

_port_ids = itertools.count(1)


class Port:
    """A message queue with single-receiver semantics."""

    def __init__(self, ctx: SimContext, node: "Node | None" = None,
                 name: str = "") -> None:
        self.ctx = ctx
        self.node = node
        self.port_id = next(_port_ids)
        self.name = name or f"port-{self.port_id}"
        #: receive-event label, computed once -- receive() is hot
        self._recv_name = "recv:" + self.name
        self.dead = False
        self._queue: collections.deque[Message] = collections.deque()
        self._waiters: collections.deque[Event] = collections.deque()
        #: messages dropped because the port was dead (diagnostic)
        self.dropped = 0
        if node is not None:
            node.register_port(self)

    @property
    def alive(self) -> bool:
        return not self.dead and (self.node is None or self.node.alive)

    @property
    def queued(self) -> int:
        """Messages delivered but not yet received (diagnostic)."""
        return len(self._queue)

    def send(self, message: Message, charged: bool = True) -> None:
        """Send asynchronously; delivery after the message's primitive time.

        With ``charged=False`` the message is delivered at the current
        instant and no primitive is recorded -- used by composite primitives
        (e.g. a Data Server Call) that account for their messages as one
        unit, exactly as the paper's Table 5-1 does.
        """
        if not self.alive:
            self.dropped += 1
            return
        if message.sender_node == "" and self.node is not None:
            message.sender_node = self.node.name
        delay = 0.0
        if charged:
            primitive = message.kind.primitive
            if primitive is not None:
                delay = self.ctx.delay_of(primitive)
        self.ctx.engine.schedule(delay, self._deliver, args=(message,))

    def _deliver(self, message: Message) -> None:
        if not self.alive:
            self.dropped += 1
            return
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed(message)
                return
        self._queue.append(message)

    def receive(self) -> Event:
        """An event yielding the next message (FIFO among waiters)."""
        if not self.alive:
            raise InvalidPort(f"receive on dead port {self.name!r}")
        event = Event(self.ctx.engine, name=self._recv_name)
        if self._queue:
            event.succeed(self._queue.popleft())
        else:
            self._waiters.append(event)
        return event

    def try_receive(self) -> Message | None:
        """Dequeue a message if one is waiting; never blocks."""
        if self._queue:
            return self._queue.popleft()
        return None

    def pending(self) -> int:
        """Messages queued but not yet received."""
        return len(self._queue)

    def destroy(self) -> None:
        """Kill the port: drop its queue, future sends are discarded."""
        self.dead = True
        self._queue.clear()
        self._waiters.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "dead" if not self.alive else f"{len(self._queue)} queued"
        return f"<Port {self.name!r} {state}>"
