"""Shared simulation context.

A :class:`SimContext` bundles what every simulated component needs: the
event engine, the primitive cost profile in force, the per-component CPU
cost table, the :class:`~repro.kernel.costs.CostMeter` instrumentation, and
a seeded random generator.  One context instruments one simulated cluster.
"""

from __future__ import annotations

import random

from repro.kernel.costs import (
    MEASURED_1985,
    CostMeter,
    CostProfile,
    CpuCosts,
    Primitive,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim import Engine, Timeout


class SimContext:
    """Engine + cost model + instrumentation for one simulated cluster."""

    def __init__(self, engine: Engine | None = None,
                 profile: CostProfile = MEASURED_1985,
                 cpu_costs: CpuCosts | None = None,
                 seed: int = 1985) -> None:
        self.engine = engine or Engine()
        self.profile = profile
        self.cpu_costs = cpu_costs or CpuCosts()
        self.meter = CostMeter()
        self.random = random.Random(seed)
        #: operational metrics (lock waits, log-force latency, commit paths);
        #: always on -- recording is passive and cannot perturb the run
        self.metrics = MetricsRegistry()
        #: causal span tracer (:class:`repro.obs.Tracer`), or None.  Every
        #: instrumentation site guards on ``ctx.tracer is not None`` so the
        #: disabled path costs one attribute check.
        self.tracer = None
        #: wall-clock self-profiler (:class:`repro.obs.profile.SimProfiler`),
        #: or None; same one-attribute-check pattern as ``tracer``.  The
        #: profiler only ever reads the wall clock -- it never feeds a
        #: reading back into simulated state, so profiled runs replay the
        #: unprofiled event sequence byte for byte.
        self.profiler = None
        #: every LockManager built against this context registers here so
        #: the profiler can snapshot cluster-wide wait-for graphs
        self.lock_managers: list = []
        #: cached ``cpu:<component>`` timeout labels (one small string per
        #: distinct component instead of an f-string per charge)
        self._cpu_labels: dict[str, str] = {}
        #: Section 5.3's "Improved TABS Architecture": the Recovery Manager
        #: and Transaction Manager are merged with the Accent kernel, which
        #: eliminates message passing among those three components and lets
        #: distributed-commit bookkeeping overlap succeeding transactions.
        self.merged_architecture = False

    @property
    def now(self) -> float:
        return self.engine.now

    def charge(self, primitive: Primitive, fraction: float = 1.0) -> Timeout:
        """Record a primitive execution and return its latency as an event.

        ``fraction`` supports the paper's half-datagram accounting: the
        sender of a datagram is busy for half the datagram time while the
        other half is network latency that overlaps with other work.
        """
        time_ms = self.profile.time_of(primitive) * fraction
        self.meter.record(primitive, time_ms, fraction)
        return Timeout(self.engine, time_ms, name=primitive.value)

    def delay_of(self, primitive: Primitive, fraction: float = 1.0,
                 count: bool = True) -> float:
        """The latency of a primitive; optionally record it in the meter."""
        time_ms = self.profile.time_of(primitive) * fraction
        if count:
            self.meter.record(primitive, time_ms, fraction)
        return time_ms

    def cpu(self, component: str, time_ms: float) -> Timeout:
        """CPU work by a named component: records and returns its latency."""
        self.meter.record_cpu(component, time_ms)
        label = self._cpu_labels.get(component)
        if label is None:
            label = self._cpu_labels[component] = f"cpu:{component}"
        return Timeout(self.engine, time_ms, name=label)
