"""The simulated workstation: one Accent node.

A node owns a disk (non-volatile), a virtual-memory page cache (volatile),
its processes, and its ports.  :meth:`Node.crash` models a Perq power
failure: every process is killed, every port dies, and all volatile state
is lost, while the disk (recoverable segments and the non-volatile log)
survives.  :meth:`Node.restart` brings the node back with a new *epoch*;
the facility layer then re-creates the TABS system processes and runs
crash recovery.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.errors import NodeDown
from repro.kernel.context import SimContext
from repro.kernel.disk import Disk
from repro.kernel.ports import Port
from repro.kernel.vm import VirtualMemory
from repro.sim import Process


class Node:
    """One simulated workstation."""

    def __init__(self, ctx: SimContext, name: str,
                 vm_capacity_pages: int = 1500) -> None:
        self.ctx = ctx
        self.name = name
        self.alive = True
        #: incremented on every restart; lets peers detect reincarnation
        self.epoch = 0
        self.disk = Disk(ctx, name=f"{name}.disk", node_name=name)
        self.vm_capacity_pages = vm_capacity_pages
        self.vm = VirtualMemory(ctx, self.disk, vm_capacity_pages)
        self._processes: list[Process] = []
        self._ports: list[Port] = []
        #: well-known local services (e.g. "transaction_manager" -> Port)
        self.services: dict[str, Port] = {}
        #: total power failures suffered (diagnostic)
        self.crashes = 0
        #: observers notified on crash/restart (fault-injection tracing);
        #: callbacks receive this node and must not raise
        self.on_crash: list[Callable[["Node"], None]] = []
        self.on_restart: list[Callable[["Node"], None]] = []

    # -- process / port management -------------------------------------------

    def spawn(self, generator: Generator, name: str = "",
              defused: bool = False) -> Process:
        """Start a process owned by this node (killed when the node crashes)."""
        if not self.alive:
            raise NodeDown(f"cannot spawn on crashed node {self.name!r}")
        process = Process(self.ctx.engine, generator,
                          name=f"{self.name}:{name or 'proc'}")
        process.defused = defused
        self._processes.append(process)
        return process

    def create_port(self, name: str = "") -> Port:
        if not self.alive:
            raise NodeDown(f"cannot create port on crashed node {self.name!r}")
        return Port(self.ctx, node=self, name=f"{self.name}:{name or 'port'}")

    def register_port(self, port: Port) -> None:
        self._ports.append(port)

    def release_port(self, port: Port) -> None:
        """Drop a destroyed port from the node's port table.

        Short-lived reply ports (RPC) deallocate themselves this way so the
        table does not grow with every timed-out call.
        """
        try:
            self._ports.remove(port)
        except ValueError:
            pass

    def register_service(self, name: str, port: Port) -> None:
        """Publish a well-known local service port (TM, RM, CM, NS)."""
        self.services[name] = port

    def service(self, name: str) -> Port:
        try:
            return self.services[name]
        except KeyError:
            raise NodeDown(
                f"service {name!r} is not running on node {self.name!r}"
            ) from None

    # -- failure model --------------------------------------------------------

    def crash(self) -> None:
        """Power failure: volatile state vanishes, the disk survives."""
        if not self.alive:
            return
        self.alive = False
        for process in self._processes:
            process.kill(f"node {self.name} crashed")
        self._processes.clear()
        for port in self._ports:
            port.destroy()
        self._ports.clear()
        self.services.clear()
        self.vm.clear_volatile()
        self.crashes += 1
        self.ctx.metrics.counter(self.name, "node.crashes").inc()
        if self.ctx.tracer is not None:
            self.ctx.tracer.node_crashed(self.name)
        for callback in list(self.on_crash):
            callback(self)

    def restart(self) -> None:
        """Power back on with empty volatile state and a new epoch.

        A facility-level node self-heals from here: its
        ``RecoverySupervisor`` listens on ``on_restart`` and drives the
        rebuild plus crash recovery itself.  A bare kernel node (no
        supervisor) still needs its caller to re-create state afterwards.
        """
        if self.alive:
            return
        self.alive = True
        self.epoch += 1
        self.vm = VirtualMemory(self.ctx, self.disk, self.vm_capacity_pages)
        for callback in list(self.on_restart):
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "up" if self.alive else "down"
        return f"<Node {self.name!r} {state} epoch={self.epoch}>"
