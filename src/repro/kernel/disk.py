"""The simulated Perq disk, with a corruption-capable fault surface.

Pages are 512 bytes (Section 5.1).  Each sector has header space in which
the kernel atomically writes a sequence number alongside the page data --
the mechanism TABS added to Accent for the operation-logging recovery
algorithm (Section 3.2.1; the real counter was 39 bits wide).

Latency model (Table 5-1): random reads and writes cost the same combined
``RANDOM_PAGED_IO`` time; reads of consecutively increasing page numbers in
one segment cost the cheaper ``SEQUENTIAL_READ``.  Sequential *writes* never
occur on the paper's single-disk Perqs because log writes break up seek
locality, so all writes are charged at the random rate.

Disk contents are non-volatile: they survive :meth:`Node.crash`.  The paper
deferred disk failures ("we do not consider disk failures in this work");
this reproduction models them.  Beside the sequence number, every sector
header stores a CRC-32 *payload checksum* over the page contents, written
atomically with the data and verified on every read -- a mismatch raises
:class:`~repro.errors.PageCorruption` instead of serving corrupt data.
The fault surface covers the classic storage pathologies:

- **bit rot** (:meth:`rot_page`) -- a stored value decays in place;
- **torn writes** (:meth:`tear_page`, :meth:`tear_last_write`) -- power
  fails mid-sector, leaving a partial page under a full-image checksum;
- **lost writes** (:meth:`arm_lost_write`) -- the drive acknowledges a
  write whose data never reaches the platter (the separately-written
  header metadata does, so the stale data no longer matches);
- **misdirected writes** (:meth:`arm_misdirected_write`) -- the data lands
  on the wrong sector; both the victim (foreign data under its old
  checksum) and the intended page (new checksum over stale data) become
  detectable.

Verification results are cached per page (``_verified``): the normal read
path pays no checksum recomputation, and every fault injector invalidates
the cache for the pages it touches, so detection is exact and the
simulation stays deterministic.  Repair lives above the kernel: see
:mod:`repro.recovery.driver` (single-page media repair) and
:data:`docs/STORAGE_INTEGRITY.md`.
"""

from __future__ import annotations

import zlib
from typing import Callable, Iterator

from repro.errors import PageCorruption
from repro.kernel.context import SimContext
from repro.kernel.costs import Primitive
from repro.sim import Timeout

#: Bytes per page/sector (Section 5.1: "Pages are 512 bytes").
PAGE_SIZE = 512

#: The sequence-number header is 39 bits wide in TABS.
SEQUENCE_NUMBER_BITS = 39
MAX_SEQUENCE_NUMBER = (1 << SEQUENCE_NUMBER_BITS) - 1

PageKey = tuple[str, int]


def checksum_page(segment_id: str, page: int,
                  data: dict[int, object]) -> int:
    """CRC-32 over a canonical encoding of one page's contents.

    The page's identity (segment, page number) is folded in, so a
    misdirected write -- the right bytes on the wrong sector -- fails
    verification even if the foreign image is internally consistent.
    Values are canonicalized through the WAL codec's self-describing
    value encoding (imported lazily; the codec depends on the kernel).
    """
    from repro.errors import WalCodecError
    from repro.wal.codec import _encode_value

    parts = [segment_id.encode(), page.to_bytes(8, "big", signed=True)]
    for offset in sorted(data):
        parts.append(offset.to_bytes(8, "big", signed=True))
        value = data[offset]
        try:
            parts.append(_encode_value(value))
        except WalCodecError:
            # Deterministic fallback for exotic values; still catches any
            # fault that changes the value's type or the page's shape.
            parts.append(f"<unencodable:{type(value).__name__}>".encode())
    return zlib.crc32(b"\x00".join(parts)) & 0xFFFF_FFFF


class Disk:
    """Non-volatile page storage with sequence numbers and checksums."""

    def __init__(self, ctx: SimContext, name: str = "disk",
                 node_name: str = "") -> None:
        self.ctx = ctx
        self.name = name
        #: which node's metrics corruption detections land on
        self.node_name = node_name
        #: page contents: (segment_id, page_number) -> {offset: value}
        self._pages: dict[PageKey, dict[int, object]] = {}
        #: sector-header sequence numbers
        self._headers: dict[PageKey, int] = {}
        #: sector-header payload checksums, written atomically with the data
        self._checksums: dict[PageKey, int] = {}
        #: pages whose checksum is known to match (cache; fault injectors
        #: invalidate entries so detection stays exact and O(1) when clean)
        self._verified: set[PageKey] = set()
        #: last page read per segment, for sequential-read detection
        self._last_read: dict[str, int] = {}
        self.reads = 0
        self.writes = 0
        #: checksum mismatches surfaced by :meth:`read_page`
        self.corruption_detected = 0
        self.lost_writes = 0
        self.misdirected_writes = 0
        #: the most recent write target (the sector a power failure tears)
        self.last_write_key: PageKey | None = None
        #: armed faults, consumed by the next matching :meth:`write_page`
        self._armed_lost: set[PageKey] = set()
        self._armed_misdirect: dict[PageKey, int] = {}
        #: called (segment_id, page) on every detection; the facility's
        #: RecoverySupervisor hooks media repair here, the chaos controller
        #: hooks its event trace.  Callbacks must not raise.
        self.on_corruption: list[Callable[[str, int], None]] = []
        #: fault injection: every I/O takes ``latency_factor`` times its
        #: nominal time (a failing drive retrying sectors, a saturated
        #: controller).  Only the excess is uncharged latency, so the cost
        #: meter still reflects the paper's primitive accounting.
        self.latency_factor = 1.0

    def _io_latency(self, primitive: Primitive) -> Iterator[Timeout]:
        yield self.ctx.charge(primitive)
        if self.latency_factor > 1.0:
            extra = (self.ctx.profile.time_of(primitive)
                     * (self.latency_factor - 1.0))
            yield Timeout(self.ctx.engine, extra, name="disk-latency-spike")

    # -- verification -----------------------------------------------------------

    def _verify(self, key: PageKey) -> bool:
        if key in self._verified:
            return True
        stored = self._checksums.get(key)
        data = self._pages.get(key, {})
        if stored is None:
            # Never written through the checksummed path: consistent only
            # while genuinely empty (e.g. a misdirected write landing on a
            # virgin sector leaves data without metadata).
            ok = not data
        else:
            ok = checksum_page(key[0], key[1], data) == stored
        if ok:
            self._verified.add(key)
        return ok

    def verify_page(self, segment_id: str, page: int) -> bool:
        """Checksum-verify one page without cost (scrubs, audits)."""
        return self._verify((segment_id, page))

    def corrupt_pages(self, segment_id: str) -> list[int]:
        """Every page of the segment failing verification (sorted)."""
        pages = {page for seg, page in self._pages if seg == segment_id}
        pages.update(page for seg, page in self._checksums
                     if seg == segment_id)
        return sorted(page for page in pages
                      if not self._verify((segment_id, page)))

    def page_keys(self) -> list[PageKey]:
        """Every sector carrying data or metadata (sorted; audits)."""
        return sorted(set(self._pages) | set(self._checksums))

    def read_page(self, segment_id: str, page: int) -> Iterator[Timeout]:
        """Read one page (generator; yields the I/O latency).

        Verifies the sector's payload checksum: a mismatch counts a
        detection, notifies ``on_corruption`` observers, and raises
        :class:`PageCorruption` -- corrupt data is never served.  Returns
        a *copy* of the stored page dictionary so in-memory frames never
        alias the non-volatile image.
        """
        sequential = self._last_read.get(segment_id) == page - 1
        self._last_read[segment_id] = page
        primitive = (Primitive.SEQUENTIAL_READ if sequential
                     else Primitive.RANDOM_PAGED_IO)
        yield from self._io_latency(primitive)
        self.reads += 1
        key = (segment_id, page)
        if not self._verify(key):
            self.corruption_detected += 1
            self.ctx.metrics.counter(self.node_name or self.name,
                                     "disk.corruption_detected").inc()
            for callback in list(self.on_corruption):
                callback(segment_id, page)
            raise PageCorruption(segment_id, page,
                                 "payload checksum mismatch on read")
        return dict(self._pages.get(key, {}))

    def write_page(self, segment_id: str, page: int,
                   data: dict[int, object],
                   sequence_number: int | None = None) -> Iterator[Timeout]:
        """Write one page and, atomically, its header metadata.

        The sector header -- sequence number and payload checksum -- is
        written in the same atomic operation as the data.  Armed faults
        (:meth:`arm_lost_write`, :meth:`arm_misdirected_write`) are
        consumed here: the drive acknowledges the write, the header
        metadata lands, but the data does not go where it should.
        """
        yield from self._io_latency(Primitive.RANDOM_PAGED_IO)
        key = (segment_id, page)
        checksum = checksum_page(segment_id, page, data)
        if key in self._armed_lost:
            # Lost write: the acknowledged data never reaches the platter;
            # the separately-addressed header metadata does.
            self._armed_lost.discard(key)
            self.lost_writes += 1
            self._checksums[key] = checksum
            self._verified.discard(key)
        elif key in self._armed_misdirect:
            # Misdirected write: data lands on the wrong sector.  The
            # victim keeps its old metadata (foreign data detectable);
            # the intended sector gets new metadata over stale data.
            victim = (segment_id, self._armed_misdirect.pop(key))
            self.misdirected_writes += 1
            self._pages[victim] = dict(data)
            self._verified.discard(victim)
            self._checksums[key] = checksum
            self._verified.discard(key)
        else:
            self._pages[key] = dict(data)
            self._checksums[key] = checksum
            self._verified.add(key)
        if sequence_number is not None:
            self._headers[key] = sequence_number & MAX_SEQUENCE_NUMBER
        self.writes += 1
        self.last_write_key = key
        # A write moves the arm; the next read of any page is non-sequential
        # unless it happens to follow this page.
        self._last_read = {segment_id: page}

    def read_sequence_number(self, segment_id: str, page: int) -> int:
        """The sector-header sequence number (0 if never written).

        Used by the Recovery Manager during operation-logging crash recovery
        to decide whether a logged operation's effect reached the disk.
        Reading only the header is folded into recovery's page read costs,
        so no separate primitive is charged.
        """
        return self._headers.get((segment_id, page), 0)

    def peek_page(self, segment_id: str, page: int) -> dict[int, object]:
        """Inspect the non-volatile image without cost (tests/diagnostics)."""
        return dict(self._pages.get((segment_id, page), {}))

    # -- data-fault injection ---------------------------------------------------

    def rot_page(self, segment_id: str, page: int, salt: int = 1) -> bool:
        """Bit rot: one stored value of the page decays in place.

        Deterministic in ``salt``; returns False for a sector that holds
        neither data nor metadata (nothing to rot).
        """
        key = (segment_id, page)
        data = self._pages.get(key)
        if data:
            offsets = sorted(data)
            offset = offsets[salt % len(offsets)]
            data[offset] = ("<bit-rot>", salt)
        elif key in self._checksums:
            self._checksums[key] ^= 0x5A5A_5A5A
        else:
            return False
        self._verified.discard(key)
        return True

    def tear_page(self, segment_id: str, page: int) -> bool:
        """Torn write: only a prefix of the sector's data survived.

        Models power failing mid-write: the header metadata (checksum of
        the *full* image) was committed, the data transfer was not.  The
        surviving prefix is the first half of the page's cells.
        """
        key = (segment_id, page)
        data = self._pages.get(key)
        if data:
            offsets = sorted(data)
            kept = offsets[:len(offsets) // 2]
            self._pages[key] = {offset: data[offset] for offset in kept}
        elif key in self._checksums:
            self._checksums[key] ^= 0x0F0F_0F0F
        else:
            return False
        self._verified.discard(key)
        return True

    def tear_last_write(self) -> PageKey | None:
        """Tear the most recently written sector (the in-flight write a
        power failure catches).  Returns the torn key, or None."""
        if self.last_write_key is None:
            return None
        segment_id, page = self.last_write_key
        if self.tear_page(segment_id, page):
            return (segment_id, page)
        return None

    def arm_lost_write(self, segment_id: str, page: int) -> None:
        """The next write to this page is silently dropped (data only)."""
        self._armed_lost.add((segment_id, page))

    def arm_misdirected_write(self, segment_id: str, page: int,
                              to_page: int) -> None:
        """The next write to ``page`` lands on ``to_page`` instead."""
        self._armed_misdirect[(segment_id, page)] = to_page

    def clear_armed_faults(self) -> None:
        """Disarm pending lost/misdirected writes (chaos repair)."""
        self._armed_lost.clear()
        self._armed_misdirect.clear()

    # -- media failure / archive support ---------------------------------------

    def pages_of_segment(self, segment_id: str) -> dict[int, dict]:
        """Snapshot every written page of a segment (for archive dumps)."""
        return {page: dict(data)
                for (seg, page), data in self._pages.items()
                if seg == segment_id}

    def headers_of_segment(self, segment_id: str) -> dict[int, int]:
        return {page: header
                for (seg, page), header in self._headers.items()
                if seg == segment_id}

    def wipe_segment(self, segment_id: str) -> int:
        """Media failure: the segment's pages (and headers) are destroyed.

        Returns the number of pages lost.  The paper excludes disk failure
        from its scope; this hook supports the media-recovery extension
        its Conclusions ask for.
        """
        lost = [key for key in self._pages if key[0] == segment_id]
        for key in lost:
            del self._pages[key]
        for table in (self._headers, self._checksums):
            for key in [key for key in table if key[0] == segment_id]:
                del table[key]
        self._verified = {key for key in self._verified
                          if key[0] != segment_id}
        self._last_read.pop(segment_id, None)
        return len(lost)

    def restore_segment(self, segment_id: str, pages: dict[int, dict],
                        headers: dict[int, int]) -> None:
        """Install archived pages (media recovery's first step).

        Restored sectors get freshly computed checksums: the archive is
        trusted media, and a restore overwrites whatever corruption was
        on the sector before.
        """
        for page, data in pages.items():
            key = (segment_id, page)
            self._pages[key] = dict(data)
            self._checksums[key] = checksum_page(segment_id, page, data)
            self._verified.add(key)
        for page, header in headers.items():
            self._headers[(segment_id, page)] = header
