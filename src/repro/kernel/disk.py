"""The simulated Perq disk.

Pages are 512 bytes (Section 5.1).  Each sector has header space in which
the kernel atomically writes a sequence number alongside the page data --
the mechanism TABS added to Accent for the operation-logging recovery
algorithm (Section 3.2.1; the real counter was 39 bits wide).

Latency model (Table 5-1): random reads and writes cost the same combined
``RANDOM_PAGED_IO`` time; reads of consecutively increasing page numbers in
one segment cost the cheaper ``SEQUENTIAL_READ``.  Sequential *writes* never
occur on the paper's single-disk Perqs because log writes break up seek
locality, so all writes are charged at the random rate.

Disk contents are non-volatile: they survive :meth:`Node.crash`.  Following
the paper ("we do not consider disk failures in this work"), media failure
is not modelled.
"""

from __future__ import annotations

from typing import Iterator

from repro.kernel.context import SimContext
from repro.kernel.costs import Primitive
from repro.sim import Timeout

#: Bytes per page/sector (Section 5.1: "Pages are 512 bytes").
PAGE_SIZE = 512

#: The sequence-number header is 39 bits wide in TABS.
SEQUENCE_NUMBER_BITS = 39
MAX_SEQUENCE_NUMBER = (1 << SEQUENCE_NUMBER_BITS) - 1

PageKey = tuple[str, int]


class Disk:
    """Non-volatile page storage with sector-header sequence numbers."""

    def __init__(self, ctx: SimContext, name: str = "disk") -> None:
        self.ctx = ctx
        self.name = name
        #: page contents: (segment_id, page_number) -> {offset: value}
        self._pages: dict[PageKey, dict[int, object]] = {}
        #: sector-header sequence numbers
        self._headers: dict[PageKey, int] = {}
        #: last page read per segment, for sequential-read detection
        self._last_read: dict[str, int] = {}
        self.reads = 0
        self.writes = 0
        #: fault injection: every I/O takes ``latency_factor`` times its
        #: nominal time (a failing drive retrying sectors, a saturated
        #: controller).  Only the excess is uncharged latency, so the cost
        #: meter still reflects the paper's primitive accounting.
        self.latency_factor = 1.0

    def _io_latency(self, primitive: Primitive) -> Iterator[Timeout]:
        yield self.ctx.charge(primitive)
        if self.latency_factor > 1.0:
            extra = (self.ctx.profile.time_of(primitive)
                     * (self.latency_factor - 1.0))
            yield Timeout(self.ctx.engine, extra, name="disk-latency-spike")

    def read_page(self, segment_id: str, page: int) -> Iterator[Timeout]:
        """Read one page (generator; yields the I/O latency).

        Returns a *copy* of the stored page dictionary so in-memory frames
        never alias the non-volatile image.
        """
        sequential = self._last_read.get(segment_id) == page - 1
        self._last_read[segment_id] = page
        primitive = (Primitive.SEQUENTIAL_READ if sequential
                     else Primitive.RANDOM_PAGED_IO)
        yield from self._io_latency(primitive)
        self.reads += 1
        return dict(self._pages.get((segment_id, page), {}))

    def write_page(self, segment_id: str, page: int,
                   data: dict[int, object],
                   sequence_number: int | None = None) -> Iterator[Timeout]:
        """Write one page and, atomically, its header sequence number."""
        yield from self._io_latency(Primitive.RANDOM_PAGED_IO)
        self._pages[(segment_id, page)] = dict(data)
        if sequence_number is not None:
            self._headers[(segment_id, page)] = (
                sequence_number & MAX_SEQUENCE_NUMBER)
        self.writes += 1
        # A write moves the arm; the next read of any page is non-sequential
        # unless it happens to follow this page.
        self._last_read = {segment_id: page}

    def read_sequence_number(self, segment_id: str, page: int) -> int:
        """The sector-header sequence number (0 if never written).

        Used by the Recovery Manager during operation-logging crash recovery
        to decide whether a logged operation's effect reached the disk.
        Reading only the header is folded into recovery's page read costs,
        so no separate primitive is charged.
        """
        return self._headers.get((segment_id, page), 0)

    def peek_page(self, segment_id: str, page: int) -> dict[int, object]:
        """Inspect the non-volatile image without cost (tests/diagnostics)."""
        return dict(self._pages.get((segment_id, page), {}))

    # -- media failure / archive support ---------------------------------------

    def pages_of_segment(self, segment_id: str) -> dict[int, dict]:
        """Snapshot every written page of a segment (for archive dumps)."""
        return {page: dict(data)
                for (seg, page), data in self._pages.items()
                if seg == segment_id}

    def headers_of_segment(self, segment_id: str) -> dict[int, int]:
        return {page: header
                for (seg, page), header in self._headers.items()
                if seg == segment_id}

    def wipe_segment(self, segment_id: str) -> int:
        """Media failure: the segment's pages (and headers) are destroyed.

        Returns the number of pages lost.  The paper excludes disk failure
        from its scope; this hook supports the media-recovery extension
        its Conclusions ask for.
        """
        lost = [key for key in self._pages if key[0] == segment_id]
        for key in lost:
            del self._pages[key]
        for key in [key for key in self._headers if key[0] == segment_id]:
            del self._headers[key]
        self._last_read.pop(segment_id, None)
        return len(lost)

    def restore_segment(self, segment_id: str, pages: dict[int, dict],
                        headers: dict[int, int]) -> None:
        """Install archived pages (media recovery's first step)."""
        for page, data in pages.items():
            self._pages[(segment_id, page)] = dict(data)
        for page, header in headers.items():
            self._headers[(segment_id, page)] = header
