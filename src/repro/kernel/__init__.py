"""Simulated Accent-kernel substrate.

TABS ran on the Accent operating-system kernel on Perq workstations.  This
package reproduces the slice of Accent that TABS depends on:

- ports with send/receive rights and typed messages
  (:mod:`repro.kernel.ports`, :mod:`repro.kernel.messages`),
- recoverable segments mapped into virtual memory with demand paging and
  pin/unpin control (:mod:`repro.kernel.vm`),
- a disk with per-sector header space for the operation-logging sequence
  number (:mod:`repro.kernel.disk`),
- the primitive-operation cost model of the paper's Tables 5-1 and 5-5
  (:mod:`repro.kernel.costs`),
- the :class:`Node` abstraction tying these together with crash/restart
  semantics (:mod:`repro.kernel.node`).
"""

from repro.kernel.costs import (
    ACHIEVABLE_1985,
    MEASURED_1985,
    ZERO_COST,
    CostMeter,
    CostProfile,
    CpuCosts,
    Phase,
    Primitive,
)
from repro.kernel.disk import PAGE_SIZE, Disk
from repro.kernel.messages import Message, MessageKind, classify_size
from repro.kernel.node import Node
from repro.kernel.ports import Port
from repro.kernel.vm import ObjectID, RecoverableSegment, VirtualMemory

__all__ = [
    "ACHIEVABLE_1985", "MEASURED_1985", "ZERO_COST", "CostMeter",
    "CostProfile", "CpuCosts", "Phase", "Primitive", "PAGE_SIZE", "Disk",
    "Message", "MessageKind", "classify_size", "Node", "Port", "ObjectID",
    "RecoverableSegment", "VirtualMemory",
]
