"""The chaos controller: installs a fault plan onto a live cluster.

The controller schedules every timed action on the cluster's engine, spawns
watcher processes for log-triggered crashes, restarts crashed nodes (full
crash recovery) where the plan says so, and records everything it does --
plus, optionally, every network event -- into a deterministic event trace.
Re-running the same ``(seed, plan)`` against the same cluster construction
reproduces the trace bit for bit, which the determinism regression suite
asserts.
"""

from __future__ import annotations

import random

from repro.chaos.plan import (
    BitRotAt,
    CrashAt,
    CrashOnGroupForce,
    CrashWhenLogged,
    DiskSlowdown,
    FaultPlan,
    HealAt,
    LinkFaultWindow,
    LogSectorRotAt,
    LostWriteAt,
    MigrationFault,
    PartitionAt,
    RestartAt,
    TornWriteAt,
)
from repro.errors import TabsError
from repro.sim import Process, Timeout
from repro.wal.records import TransactionStatusRecord, TxnStatus


class ChaosController:
    """Drives one :class:`FaultPlan` against one :class:`TabsCluster`."""

    def __init__(self, cluster, plan: FaultPlan, seed: int = 0,
                 trace_network: bool = False) -> None:
        self.cluster = cluster
        self.plan = plan
        self.rng = random.Random(seed)
        #: deterministic event trace: (time_ms, kind, *details)
        self.trace: list[tuple] = []
        #: every terminal status ever durably logged, per node -- immune to
        #: log truncation, for the post-run audits: {node: {tid: {status}}}
        self.status_history: dict[str, dict] = {}
        self._installed = False
        self._watchers: list[Process] = []
        if trace_network:
            cluster.network.add_trace_hook(self._network_event)
        for name, tabs_node in cluster.nodes.items():
            self._wire_node(name, tabs_node)
        # Nodes that join the running cluster later (online
        # reconfiguration) get the same wiring the moment they appear.
        cluster.node_join_hooks.append(
            lambda tabs_node: self._wire_node(tabs_node.name, tabs_node))

    def _wire_node(self, name: str, tabs_node) -> None:
        tabs_node.node.on_crash.append(self._node_crashed)
        tabs_node.node.on_restart.append(self._node_restarted)
        self.status_history[name] = {}
        tabs_node.log_store.observers.append(
            lambda record, node=name: self._observe(node, record))
        # The observer list survives rebuilds, so detections keep
        # landing in the trace across crash/recovery cycles.
        tabs_node.fd_observers.append(self._detector_event)
        # The disk survives restarts too: one registration is enough
        # for every checksum detection the node ever trips.
        tabs_node.node.disk.on_corruption.append(
            lambda segment_id, page, node=name:
            self.record("corruption", node, segment_id, page))

    # -- trace -------------------------------------------------------------------

    def record(self, kind: str, *details) -> None:
        self.trace.append((self.engine.now, kind, *details))

    def _network_event(self, time_ms: float, event: str, source: str,
                       target: str, op: str) -> None:
        self.trace.append((time_ms, "net", event, source, target, op))

    def _node_crashed(self, node) -> None:
        self.trace.append((self.engine.now, "crash", node.name))

    def _node_restarted(self, node) -> None:
        self.trace.append((self.engine.now, "restart", node.name,
                           node.epoch))

    def _detector_event(self, time_ms: float, local: str, event: str,
                        peer: str) -> None:
        self.trace.append((time_ms, "fd", local, event, peer))

    def _observe(self, node: str, record) -> None:
        if (isinstance(record, TransactionStatusRecord)
                and record.status in (TxnStatus.COMMITTED,
                                      TxnStatus.ABORTED)):
            self.status_history[node].setdefault(
                record.tid, set()).add(record.status.value)

    @property
    def engine(self):
        return self.cluster.engine

    @property
    def network(self):
        return self.cluster.network

    # -- installation -------------------------------------------------------------

    def install(self) -> None:
        """Schedule every plan action.  Call once, before driving the run."""
        if self._installed:
            raise TabsError("fault plan already installed")
        self._installed = True
        for action in self.plan:
            self._install_action(action)

    def _install_action(self, action) -> None:
        if isinstance(action, CrashAt):
            self.engine.schedule(action.at_ms,
                                 lambda a=action: self._crash(
                                     a.node, a.restart_after_ms))
        elif isinstance(action, RestartAt):
            self.engine.schedule(action.at_ms,
                                 lambda a=action: self._spawn_restart(a.node))
        elif isinstance(action, PartitionAt):
            self.engine.schedule(action.at_ms,
                                 lambda a=action: self._partition(a))
            if action.heal_after_ms is not None:
                self.engine.schedule(action.at_ms + action.heal_after_ms,
                                     self._heal)
        elif isinstance(action, HealAt):
            self.engine.schedule(action.at_ms, self._heal)
        elif isinstance(action, LinkFaultWindow):
            self.engine.schedule(action.start_ms,
                                 lambda a=action: self._link_fault(a))
            self.engine.schedule(action.end_ms,
                                 lambda a=action: self._link_heal(a))
        elif isinstance(action, DiskSlowdown):
            self.engine.schedule(action.start_ms,
                                 lambda a=action: self._disk(a, a.factor))
            self.engine.schedule(action.end_ms,
                                 lambda a=action: self._disk(a, 1.0))
        elif isinstance(action, TornWriteAt):
            self.engine.schedule(action.at_ms,
                                 lambda a=action: self._torn_write(a))
        elif isinstance(action, BitRotAt):
            self.engine.schedule(action.at_ms,
                                 lambda a=action: self._bit_rot(a))
        elif isinstance(action, LostWriteAt):
            self.engine.schedule(action.at_ms,
                                 lambda a=action: self._lost_write(a))
        elif isinstance(action, LogSectorRotAt):
            self.engine.schedule(action.at_ms,
                                 lambda a=action: self._log_rot(a))
        elif isinstance(action, CrashWhenLogged):
            watcher = Process(self.engine, self._watch(action),
                              name=f"chaos:watch:{action.crash_node}")
            self._watchers.append(watcher)
        elif isinstance(action, CrashOnGroupForce):
            self._arm_group_force_crash(action)
        elif isinstance(action, MigrationFault):
            self._arm_migration_fault(action)
        else:  # pragma: no cover - exhaustive over FaultAction
            raise TabsError(f"unknown fault action {action!r}")

    # -- timed actions -------------------------------------------------------------

    def _crash(self, name: str, restart_after_ms: float | None) -> None:
        tabs_node = self.cluster.node(name)
        if not tabs_node.node.alive:
            return  # already down; the pending restart will revive it
        tabs_node.crash()
        if restart_after_ms is not None:
            self.engine.schedule(restart_after_ms,
                                 lambda: self._spawn_restart(name))

    def _spawn_restart(self, name: str) -> Process | None:
        """Power the node on; its RecoverySupervisor drives the recovery.

        Thin wrapper by design: the controller no longer runs recovery
        itself, it just flips the power switch and hands back the
        supervisor's self-healing process.
        """
        tabs_node = self.cluster.node(name)
        if tabs_node.node.alive or tabs_node.retired:
            return None
        tabs_node.node.restart()
        return tabs_node.supervisor.recovery_process

    def _partition(self, action: PartitionAt) -> None:
        self.network.partition(action.groups)
        self.record("partition",
                    "|".join(",".join(group) for group in action.groups))

    def _heal(self) -> None:
        if self.network.partitioned:
            self.network.heal()
            self.record("heal")

    def _link_fault(self, action: LinkFaultWindow) -> None:
        # Plan times are relative to install(); rebase the expiry instant.
        until = self.engine.now + (action.end_ms - action.start_ms)
        self.network.set_link_fault(
            action.source, action.target, loss=action.loss,
            duplicate=action.duplicate, reorder=action.reorder,
            reorder_delay_ms=action.reorder_delay_ms,
            until=until, both_ways=action.both_ways)
        self.record("link-fault", action.source, action.target,
                    action.loss, action.duplicate, action.reorder)

    def _link_heal(self, action: LinkFaultWindow) -> None:
        self.network.clear_link_fault(action.source, action.target,
                                      both_ways=action.both_ways)
        self.record("link-heal", action.source, action.target)

    def _node_disk(self, name: str):
        """The one sanctioned path to a node's disk for fault injection.

        The disk object is durable (it survives crash/restart cycles), so
        handlers, corruption installers, and :meth:`repair_all` all reach
        it through here rather than each spelling out the attribute chain.
        """
        return self.cluster.node(name).node.disk

    def _disk(self, action: DiskSlowdown, factor: float) -> None:
        self._node_disk(action.node).latency_factor = factor
        self.record("disk-latency", action.node, factor)

    # -- storage corruption ----------------------------------------------------------

    def _pick_page(self, disk, segment_id: str, page: int | None):
        """Resolve a corruption target: explicit, or a deterministic draw
        from the controller's seeded RNG over the written sectors."""
        if page is not None and segment_id:
            return (segment_id, page)
        keys = [key for key in disk.page_keys()
                if not segment_id or key[0] == segment_id]
        if not keys:
            return None
        return keys[self.rng.randrange(len(keys))]

    def _torn_write(self, action: TornWriteAt) -> None:
        """Power failure mid-write: tear the in-flight data sector and the
        oldest buffered log record, then crash the node."""
        tabs_node = self.cluster.node(action.node)
        if not tabs_node.node.alive:
            return
        torn_key = self._node_disk(action.node).tear_last_write()
        torn_lsn = tabs_node.rm.wal.tear_inflight_force()
        self.record("torn-write", action.node,
                    f"{torn_key[0]}:{torn_key[1]}" if torn_key else "-",
                    torn_lsn if torn_lsn is not None else -1)
        self._crash(action.node, action.restart_after_ms)

    def _bit_rot(self, action: BitRotAt) -> None:
        disk = self._node_disk(action.node)
        target = self._pick_page(disk, action.segment_id, action.page)
        if target is None or not disk.rot_page(*target, salt=action.salt):
            self.record("bit-rot-skipped", action.node)
            return
        self.record("bit-rot", action.node, target[0], target[1])

    def _lost_write(self, action: LostWriteAt) -> None:
        disk = self._node_disk(action.node)
        target = self._pick_page(disk, action.segment_id, action.page)
        if target is None:
            self.record("lost-write-skipped", action.node)
            return
        disk.arm_lost_write(*target)
        self.record("lost-write-armed", action.node, target[0], target[1])

    def _log_rot(self, action: LogSectorRotAt) -> None:
        store = self.cluster.node(action.node).log_store
        lsn = action.lsn
        if lsn is None:
            durable = [record.lsn for record in
                       store.read_forward(store.truncated_before)]
            if not durable:
                self.record("log-rot-skipped", action.node)
                return
            lsn = durable[self.rng.randrange(len(durable))]
        if store.rot_media(lsn, copy=action.copy,
                           both_copies=action.both_copies):
            self.record("log-rot", action.node, lsn, action.copy,
                        action.both_copies)
        else:
            self.record("log-rot-skipped", action.node)

    # -- triggered crashes ----------------------------------------------------------

    def _arm_group_force_crash(self, action: CrashOnGroupForce) -> None:
        """Crash inside the group-commit force window, via the pipeline's
        ``on_group_force`` hook (fires before the stable-storage write).

        One-shot: the hook disarms itself after the crash; the rebuilt
        pipeline after recovery carries no hooks.  Armed against the
        pipeline instance that exists at install time -- if the node runs
        the paper pipeline the action records a skip and does nothing.
        """
        pipeline = self.cluster.node(action.node).rm.wal.group_pipeline
        if pipeline is None:
            self.record("group-force-watch-skipped", action.node)
            return
        state = {"count": 0, "done": False}

        def hook(node_name: str, batch_size: int, target_lsn: int) -> None:
            if state["done"] or batch_size < action.min_batch:
                return
            state["count"] += 1
            if state["count"] < action.nth:
                return
            state["done"] = True
            self.record("group-force-crash", action.node, batch_size,
                        target_lsn)
            self._crash(action.node, action.restart_after_ms)

        pipeline.on_group_force.append(hook)

    def _arm_migration_fault(self, action: MigrationFault) -> None:
        """Fault a migration participant at a phase boundary, via the
        reconfiguration manager's phase hooks.

        One-shot: the hook disarms itself after firing.  The fault is
        *scheduled* at delay zero rather than applied inside the hook --
        the hook runs synchronously inside the coordinator's own
        process, and the crash must land at its next yield (a message
        boundary), not mid-callback.  Armed against the manager that
        exists at install time; with reconfiguration off the action
        records a skip and does nothing.
        """
        manager = self.cluster.reconfig
        if manager is None:
            self.record("migration-watch-skipped", action.phase,
                        action.role)
            return
        armed_at = self.engine.now
        state = {"count": 0, "done": False}

        def hook(phase: str, info: dict) -> None:
            if state["done"] or phase != action.phase:
                return
            if self.engine.now - armed_at < action.arm_after_ms:
                return
            node = info.get(action.role)
            if node is None:  # pragma: no cover - roles always present
                return
            state["count"] += 1
            if state["count"] < action.nth:
                return
            state["done"] = True
            self.record("migration-fault", action.phase, action.role,
                        node, action.kind)
            if action.kind == "crash":
                self.engine.schedule(
                    0.0, lambda: self._crash(node,
                                             action.restart_after_ms))
            else:
                others = tuple(name for name, tabs_node
                               in self.cluster.nodes.items()
                               if name != node and not tabs_node.retired)
                self.engine.schedule(
                    0.0, lambda: self._partition(
                        PartitionAt(self.engine.now, ((node,), others))))
                if action.heal_after_ms is not None:
                    self.engine.schedule(action.heal_after_ms, self._heal)

        manager.phase_hooks.append(hook)

    def _watch(self, action: CrashWhenLogged):
        """Poll durable logs until the trigger condition holds, then crash.

        The ``seen``/``not_seen`` conditions are matched against a single
        transaction family: the trigger fires when some transaction has
        reached every ``seen`` point without reaching any ``not_seen``
        point -- which is what "crash mid-prepare" means.
        """
        armed_at = self.engine.now
        if action.arm_after_ms:
            yield Timeout(self.engine, action.arm_after_ms)
        while True:
            yield Timeout(self.engine, action.poll_ms)
            if (action.disarm_after_ms
                    and self.engine.now - armed_at > action.disarm_after_ms):
                self.record("watch-disarmed", action.crash_node)
                return
            tid = self._trigger_tid(action)
            if tid is not None:
                self.record("trigger", action.crash_node, str(tid),
                            ";".join(f"{n}:{s}" for n, s in action.seen))
                self._crash(action.crash_node, action.restart_after_ms)
                return

    def _trigger_tid(self, action: CrashWhenLogged):
        """A transaction satisfying all of seen and none of not_seen."""
        first_node, first_status = action.seen[0]
        for tid in self._tids_logged(first_node, first_status):
            if (all(self._tid_logged(node, status, tid)
                    for node, status in action.seen[1:])
                    and not any(self._tid_logged(node, status, tid)
                                for node, status in action.not_seen)):
                return tid
        return None

    def _tids_logged(self, node_name: str, status_name: str) -> list:
        """Transactions with this durable status at the node (log order)."""
        status = TxnStatus(status_name)
        store = self.cluster.node(node_name).log_store
        return [record.tid
                for record in store.read_forward(store.truncated_before)
                if isinstance(record, TransactionStatusRecord)
                and record.status is status and record.tid is not None]

    def _tid_logged(self, node_name: str, status_name: str, tid) -> bool:
        """Does the node durably record this status for tid's family?"""
        status = TxnStatus(status_name)
        store = self.cluster.node(node_name).log_store
        return any(isinstance(record, TransactionStatusRecord)
                   and record.status is status and record.tid is not None
                   and record.tid.toplevel == tid.toplevel
                   for record in store.read_forward(store.truncated_before))

    def triggers_pending(self) -> int:
        """Watchers still armed (diagnostic for scenario assertions)."""
        return sum(1 for watcher in self._watchers if watcher.alive)

    # -- repair / quiescence ----------------------------------------------------------

    def repair_all(self) -> list[Process]:
        """Heal the network, clear faults, and restart every downed node.

        Returns the restart processes (already scheduled); run the engine
        to drive the recoveries to completion.
        """
        self._heal()
        self.network.clear_all_link_faults()
        for watcher in self._watchers:
            if watcher.alive:
                watcher.kill("chaos repair: watcher disarmed")
                self.record("watch-disarmed", watcher.name)
        restarts = []
        for name, tabs_node in self.cluster.nodes.items():
            if tabs_node.retired:
                continue  # powered off for good; repair must not revive it
            disk = self._node_disk(name)
            disk.latency_factor = 1.0
            disk.clear_armed_faults()
            if not tabs_node.node.alive:
                process = self._spawn_restart(name)
                if process is not None:
                    restarts.append(process)
        return restarts

    def quiesce(self, max_ms: float = 600_000.0) -> bool:
        """Run the engine until the event queue drains (bounded).

        Returns True when the simulation went fully quiet.  A False return
        means some process is still spinning (e.g. an in-doubt transaction
        whose coordinator never came back) -- itself a finding for the
        torture suite's assertions.
        """
        return self.engine.drain(max_ms)
