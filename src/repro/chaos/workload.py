"""Invariant-checking workloads for the chaos harness.

:class:`ChaosWorkload` drives randomized multi-node transfer (and
optionally queue) traffic against a cluster while a
:class:`~repro.chaos.controller.ChaosController` injects faults, then
checks -- after repair, quiescence, and a final crash-all/recover-all --
that the TABS guarantees held:

- **conservation**: transfers move money between integer-array cells, so
  the total across every account is invariant whatever committed or
  aborted;
- **atomicity**: no transaction is durably COMMITTED at one node and
  ABORTED at another (:func:`repro.recovery.audit.audit_atomicity`);
- **no lost commits**: every commit acknowledged to the application has a
  durable COMMITTED record (:func:`audit_client_commits`);
- **no lost writes**: the final disk image matches the values the logs
  decided (:func:`audit_committed_values`);
- **drainage**: no lock, lock waiter, or service-port backlog survives
  quiescence (:func:`audit_drainage`);
- **storage integrity**: after repair, every disk sector passes its
  payload checksum and the duplexed log media verifies on both copies
  (:func:`audit_storage_integrity`) -- injected corruption never
  survives latently;
- **queue integrity** (when enabled): a committed enqueue's item is
  drained exactly once; an aborted enqueue's item never appears.

Client transactions are spawned as processes *owned by their node*, so a
node crash kills its in-flight applications -- their outcomes become
``unknown`` and the audits treat them accordingly (an unknown outcome may
legitimately be either committed or aborted, but never both).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chaos.controller import ChaosController
from repro.core.cluster import TabsCluster
from repro.core.config import TabsConfig
from repro.recovery.audit import (
    AuditReport,
    AuditViolation,
    audit_atomicity,
    audit_client_commits,
    audit_committed_values,
    audit_drainage,
    audit_storage_integrity,
)
from repro.servers.int_array import IntegerArrayServer
from repro.servers.weak_queue import QueueEmpty, WeakQueueServer

#: server name of the shared queue (lives on the first node)
QUEUE_NAME = "mailq"


def build_cluster(node_count: int = 3, with_queue: bool = False,
                  seed: int = 1985, **config_overrides) -> TabsCluster:
    """A cluster of ``node_count`` nodes, one bank server each.

    Node ``n{i}`` hosts integer-array server ``bank{i}``; with
    ``with_queue`` node ``n0`` additionally hosts weak queue ``mailq``.
    """
    cluster = TabsCluster(TabsConfig(seed=seed, **config_overrides))
    for index in range(node_count):
        name = f"n{index}"
        cluster.add_node(name)
        cluster.add_server(name, IntegerArrayServer.factory(f"bank{index}"))
    if with_queue:
        cluster.add_server("n0", WeakQueueServer.factory(QUEUE_NAME))
    cluster.start()
    return cluster


@dataclass
class TxnRecord:
    """One client transaction's fate, as the application saw it."""

    index: int
    kind: str  # "transfer" | "enqueue"
    client: str
    detail: tuple
    outcome: str = "unknown"  # committed | aborted | failed | unknown | skipped
    tid: object = None
    error: str = ""


@dataclass
class WorkloadStats:
    records: list[TxnRecord] = field(default_factory=list)

    def outcomes(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        return counts

    def committed(self) -> list[TxnRecord]:
        return [r for r in self.records if r.outcome == "committed"]


class ChaosWorkload:
    """Randomized transfers (+ optional enqueues) under fault injection."""

    def __init__(self, cluster: TabsCluster, controller: ChaosController,
                 seed: int = 0, accounts_per_server: int = 4,
                 initial_balance: int = 100) -> None:
        self.cluster = cluster
        self.controller = controller
        self.rng = random.Random(seed)
        self.accounts = accounts_per_server
        self.initial_balance = initial_balance
        self.banks = sorted(name for node in cluster.nodes.values()
                            for name in node.servers
                            if name.startswith("bank"))
        self.has_queue = any(QUEUE_NAME in node.servers
                             for node in cluster.nodes.values())
        self.expected_total = (len(self.banks) * self.accounts
                               * self.initial_balance)
        self.stats = WorkloadStats()

    @property
    def engine(self):
        return self.cluster.engine

    # -- setup ---------------------------------------------------------------------

    def setup(self) -> None:
        """Fund every account (one committed transaction per bank)."""
        for bank in self.banks:
            node = self._home_of(bank)

            def fund(tid, bank=bank, node=node):
                app = self.cluster.application(node)
                ref = yield from app.lookup_one(bank)
                for cell in range(1, self.accounts + 1):
                    yield from app.call(ref, "set_cell",
                                        {"cell": cell,
                                         "value": self.initial_balance},
                                        tid)

            self.cluster.run_transaction(node, fund)
        self.cluster.settle()

    def _home_of(self, server_name: str) -> str:
        for node_name, tabs_node in self.cluster.nodes.items():
            if server_name in tabs_node.servers:
                return node_name
        raise KeyError(server_name)

    def schedule_archive_dumps(self, at_ms: float = 0.0) -> None:
        """Dump every node's segments to its off-line archive at ``at_ms``.

        Opt-in (dump events shift the timeline, so historical seeds stay
        byte-identical without it).  Corruption scenarios want an archive:
        it is the base image single-page media repair restores before
        rolling the log forward.
        """
        for name in sorted(self.cluster.nodes):
            self.engine.schedule(at_ms, lambda n=name: self._spawn_dump(n))

    def _spawn_dump(self, name: str) -> None:
        tabs_node = self.cluster.node(name)
        if not tabs_node.node.alive:
            return
        tabs_node.node.spawn(self._dump(name), name="chaos-archive-dump",
                             defused=True)

    def _dump(self, name: str):
        tabs_node = self.cluster.node(name)
        archive_lsn = yield from tabs_node.archive_dump_generator()
        self.controller.record("archive-dump", name, archive_lsn)

    # -- randomized traffic ---------------------------------------------------------

    def schedule_traffic(self, transfers: int = 20, enqueues: int = 0,
                         first_at_ms: float = 5.0,
                         spacing_ms: float = 120.0,
                         max_amount: int = 25) -> None:
        """Schedule the whole client mix at seeded, jittered instants.

        Every random decision is drawn here, up front, from this
        workload's own :class:`random.Random` -- the schedule (and hence
        the run) is a pure function of the seed.
        """
        nodes = sorted(self.cluster.nodes)
        at_ms = first_at_ms
        index = 0
        mix = (["transfer"] * transfers + ["enqueue"] * enqueues)
        self.rng.shuffle(mix)
        for kind in mix:
            client = self.rng.choice(nodes)
            if kind == "transfer":
                src, dst = self.rng.sample(self.banks, 2)
                src_cell = self.rng.randint(1, self.accounts)
                dst_cell = self.rng.randint(1, self.accounts)
                amount = self.rng.randint(1, max_amount)
                detail = (src, src_cell, dst, dst_cell, amount)
                generator = self._transfer
            else:
                detail = (f"item-{index}",)
                generator = self._enqueue
            record = TxnRecord(index, kind, client, detail)
            self.stats.records.append(record)
            self.engine.schedule(
                at_ms, lambda r=record, g=generator: self._spawn(r, g))
            at_ms += self.rng.uniform(0.3, 1.0) * spacing_ms
            index += 1

    def _spawn(self, record: TxnRecord, generator) -> None:
        node = self.cluster.node(record.client).node
        if not node.alive:
            record.outcome = "skipped"
            self._trace(record)
            return
        node.spawn(generator(record), name=f"chaos-txn-{record.index}",
                   defused=True)

    def _trace(self, record: TxnRecord) -> None:
        self.controller.record("txn", record.index, record.kind,
                               record.client, record.outcome,
                               *record.detail)

    def _transfer(self, record: TxnRecord):
        src, src_cell, dst, dst_cell, amount = record.detail
        app = self.cluster.application(record.client)
        try:
            tid = yield from app.begin_transaction()
            record.tid = tid
            src_ref = yield from app.lookup_one(src)
            dst_ref = yield from app.lookup_one(dst)
            src_val = yield from app.call(src_ref, "get_cell",
                                          {"cell": src_cell}, tid)
            dst_val = yield from app.call(dst_ref, "get_cell",
                                          {"cell": dst_cell}, tid)
            yield from app.call(src_ref, "set_cell",
                                {"cell": src_cell,
                                 "value": src_val["value"] - amount}, tid)
            yield from app.call(dst_ref, "set_cell",
                                {"cell": dst_cell,
                                 "value": dst_val["value"] + amount}, tid)
            committed = yield from app.end_transaction(tid)
            record.outcome = "committed" if committed else "aborted"
        except Exception as error:  # noqa: BLE001 - faults hit anywhere
            record.error = repr(error)
            # Before end_transaction returns, the outcome is unknowable
            # from the client's seat: the crash may have hit either side
            # of the commit point.
            record.outcome = "unknown"
            yield from self._try_abort(app, record)
        self._trace(record)

    def _enqueue(self, record: TxnRecord):
        (item,) = record.detail
        app = self.cluster.application(record.client)
        try:
            tid = yield from app.begin_transaction()
            record.tid = tid
            ref = yield from app.lookup_one(QUEUE_NAME)
            yield from app.call(ref, "enqueue", {"data": item}, tid)
            committed = yield from app.end_transaction(tid)
            record.outcome = "committed" if committed else "aborted"
        except Exception as error:  # noqa: BLE001
            record.error = repr(error)
            record.outcome = "unknown"
            yield from self._try_abort(app, record)
        self._trace(record)

    def _try_abort(self, app, record: TxnRecord):
        """Best-effort abort so the coordinator need not time the txn out."""
        if record.tid is None:
            record.outcome = "failed"  # never began: definitely no effects
            return
        try:
            yield from app.abort_transaction(record.tid, reason=record.error)
            record.outcome = "aborted"
        except Exception:  # noqa: BLE001 - node/TM may be gone
            pass

    # -- driving -----------------------------------------------------------------

    def run(self, until_ms: float) -> None:
        """Advance the simulation ``until_ms`` past the current instant."""
        self.engine.run(until=self.engine.now + until_ms)

    def finale(self, quiesce_ms: float = 900_000.0) -> bool:
        """Repair everything and force the cluster to a checkable state.

        1. Heal partitions/link faults, restart downed nodes, quiesce --
           in-doubt transactions resolve once their coordinators answer.
        2. Crash *every* node and recover it, twice.  The first round
           turns any straggling resolution into durable log state; the
           second round's recovery rebuilds the disk image from those
           logs and flushes it, making the disk audit meaningful.  (It
           also exercises recovery idempotency.)

        Returns True iff the simulation reached full quiescence.
        """
        self.controller.repair_all()
        quiet = self.controller.quiesce(max_ms=quiesce_ms)
        for _ in range(2):
            for tabs_node in self.cluster.nodes.values():
                tabs_node.crash()
            self.controller.repair_all()
            quiet = self.controller.quiesce(max_ms=quiesce_ms) and quiet
        return quiet

    # -- invariants ----------------------------------------------------------------

    def check_invariants(self, quiet: bool = True) -> AuditReport:
        """Run every audit; returns the combined report.

        Order matters: the disk-image audit must run before the queue
        drain, whose own committed writes legitimately live in volatile
        memory until the next flush.
        """
        history = self.controller.status_history
        report = audit_atomicity(self.cluster, history=history)
        if not quiet:
            report.violations.append(AuditViolation(
                "no-quiescence",
                detail="simulation still busy after repair deadline"))
        report.extend(audit_client_commits(
            self.cluster,
            [r.tid for r in self.stats.committed() if r.tid is not None],
            history=history))
        for tabs_node in self.cluster.nodes.values():
            report.extend(audit_committed_values(tabs_node))
            report.extend(audit_storage_integrity(tabs_node))
        report.extend(self._check_conservation())
        if self.has_queue:
            report.extend(self._check_queue())
        self.cluster.settle()
        report.extend(audit_drainage(self.cluster))
        return report

    def _check_conservation(self) -> list[AuditViolation]:
        """The sum over every account must equal the funded total."""
        total = 0
        for bank in self.banks:
            node = self._home_of(bank)

            def read_all(tid, bank=bank, node=node):
                app = self.cluster.application(node)
                ref = yield from app.lookup_one(bank)
                balances = []
                for cell in range(1, self.accounts + 1):
                    reply = yield from app.call(ref, "get_cell",
                                                {"cell": cell}, tid)
                    balances.append(reply["value"])
                return balances

            total += sum(self.cluster.run_transaction(node, read_all))
        if total != self.expected_total:
            return [AuditViolation(
                "conservation",
                detail=f"accounts sum to {total}, funded "
                       f"{self.expected_total} (money "
                       f"{'vanished' if total < self.expected_total else 'appeared'})")]
        return []

    def _check_queue(self) -> list[AuditViolation]:
        """Drain the queue; committed items exactly once, aborted never."""
        node = self._home_of(QUEUE_NAME)
        drained: list[str] = []
        while True:
            def dequeue_one(tid):
                app = self.cluster.application(node)
                ref = yield from app.lookup_one(QUEUE_NAME)
                reply = yield from app.call(ref, "dequeue", {}, tid)
                return reply["data"]

            try:
                drained.append(self.cluster.run_transaction(node,
                                                            dequeue_one))
            except QueueEmpty:
                break
        violations = []
        if len(drained) != len(set(drained)):
            dupes = sorted({d for d in drained if drained.count(d) > 1})
            violations.append(AuditViolation(
                "queue-duplicate", detail=f"items drained twice: {dupes}"))
        by_outcome = {r.detail[0]: r.outcome for r in self.stats.records
                      if r.kind == "enqueue"}
        for item in drained:
            outcome = by_outcome.get(item)
            if outcome is None:
                violations.append(AuditViolation(
                    "queue-phantom", detail=f"{item!r} was never enqueued"))
            elif outcome == "aborted":
                violations.append(AuditViolation(
                    "queue-aborted-item",
                    detail=f"{item!r} came from an aborted enqueue"))
        missing = [item for item, outcome in by_outcome.items()
                   if outcome == "committed" and item not in drained]
        if missing:
            violations.append(AuditViolation(
                "queue-lost-item",
                detail=f"committed enqueues missing: {missing}"))
        return violations
