"""Fault plans: declarative schedules of failures for one simulated run.

A :class:`FaultPlan` is an immutable list of fault actions.  Timed actions
fire at a fixed simulated millisecond; *triggered* actions watch a node's
durable log and fire when the commit protocol reaches a chosen point
(mid-prepare, mid-commit, the in-doubt window).  Because the simulation and
every random roll derive from seeds, a run is exactly reproducible from
``(seed, plan)`` -- the property QUANTAS-style simulators exploit for
systematic fault exploration.

Plans are built either explicitly (the torture scenarios each pin one
protocol window) or randomly via :func:`random_plan` (the soak test).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class CrashAt:
    """Power-fail ``node`` at ``at_ms``; restart after ``restart_after_ms``
    (None leaves it down until the harness restarts it)."""

    at_ms: float
    node: str
    restart_after_ms: float | None = None


@dataclass(frozen=True)
class RestartAt:
    """Restart ``node`` (running full crash recovery) at ``at_ms``."""

    at_ms: float
    node: str


@dataclass(frozen=True)
class PartitionAt:
    """Split the network into ``groups`` at ``at_ms``.  Nodes not listed
    fall into singleton partitions."""

    at_ms: float
    groups: tuple[tuple[str, ...], ...]
    heal_after_ms: float | None = None


@dataclass(frozen=True)
class HealAt:
    """Remove any active partition at ``at_ms``."""

    at_ms: float


@dataclass(frozen=True)
class LinkFaultWindow:
    """Loss/duplication/reordering on one link between two instants."""

    start_ms: float
    end_ms: float
    source: str
    target: str
    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay_ms: float = 50.0
    both_ways: bool = True


@dataclass(frozen=True)
class DiskSlowdown:
    """Multiply ``node``'s disk latency by ``factor`` during the window."""

    start_ms: float
    end_ms: float
    node: str
    factor: float = 4.0


@dataclass(frozen=True)
class TornWriteAt:
    """Power-fail ``node`` at ``at_ms`` mid-write: the last written data
    sector is torn (partial image under a full-image checksum) and the
    oldest buffered log record reaches both log disks half-written, then
    the node crashes.  Recovery's salvage scan truncates the torn log
    tail; the scrub repairs the torn data page from the archive."""

    at_ms: float
    node: str
    restart_after_ms: float | None = None


@dataclass(frozen=True)
class BitRotAt:
    """Decay one stored value of a data page on ``node`` at ``at_ms``.

    With ``page`` None the controller picks a written page of the node's
    segments deterministically from its seeded RNG.  The next read of the
    page trips :class:`~repro.errors.PageCorruption` and the node's
    supervisor repairs it from archive + log roll-forward."""

    at_ms: float
    node: str
    segment_id: str = ""
    page: int | None = None
    salt: int = 1


@dataclass(frozen=True)
class LostWriteAt:
    """Arm a lost write on ``node`` at ``at_ms``: the next write-back of
    the chosen page is acknowledged but its data never lands (the
    separately-written header metadata does, so reads detect it)."""

    at_ms: float
    node: str
    segment_id: str = ""
    page: int | None = None


@dataclass(frozen=True)
class LogSectorRotAt:
    """Bit-rot one log-disk copy of a durable record on ``node``.

    With ``lsn`` None the controller picks a durable record
    deterministically.  Single-copy rot is repaired from the mirror by
    the duplexed read path; ``both_copies`` (real log loss) is reserved
    for tests -- random plans never set it on acknowledged records."""

    at_ms: float
    node: str
    lsn: int | None = None
    copy: int = 0
    both_copies: bool = False


@dataclass(frozen=True)
class CrashWhenLogged:
    """Crash ``crash_node`` when the durable logs reach a protocol point.

    The conditions are matched per transaction family: the trigger fires
    as soon as *some* transaction has a durable record for every ``seen``
    pair (``(node, status)``, status being a :class:`TxnStatus` value name
    such as ``"prepared"``) while having none for any ``not_seen`` pair.
    Examples:

    - participant crash **mid-prepare**: ``seen=(("p", "prepared"),)``,
      ``not_seen=(("c", "committed"),)``;
    - participant crash **in the in-doubt window**:
      ``seen=(("p", "prepared"), ("c", "committed"))``,
      ``not_seen=(("p", "committed"),)``;
    - coordinator crash **mid-commit** (phase two not yet acknowledged):
      ``seen=(("c", "committed"),)``, ``not_seen=(("p", "committed"),)``.
    """

    crash_node: str
    seen: tuple[tuple[str, str], ...]
    not_seen: tuple[tuple[str, str], ...] = ()
    restart_after_ms: float | None = None
    #: watcher polling grain in simulated ms
    poll_ms: float = 0.5
    #: do not arm the watcher before this instant
    arm_after_ms: float = 0.0
    #: give up watching after this instant (0 = never)
    disarm_after_ms: float = 0.0


@dataclass(frozen=True)
class CrashOnGroupForce:
    """Crash ``node`` the instant its group-commit pipeline starts a
    physical force of a batch of at least ``min_batch`` commit waiters.

    Only meaningful when the cluster runs the ``grouped`` commit
    pipeline (the paper pipeline never opens a force window).  The crash
    fires from the pipeline's ``on_group_force`` hook -- *before* the
    stable-storage write -- so every transaction waiting in that window
    has its commit record still volatile.  The post-recovery invariant is
    all-or-none per transaction: none of the window's waiters may be
    durably committed on the crashed node, and no client may have been
    acknowledged.  ``nth`` skips the first ``nth - 1`` qualifying
    batches; the trigger is one-shot per plan action.
    """

    node: str
    min_batch: int = 2
    nth: int = 1
    restart_after_ms: float | None = None


@dataclass(frozen=True)
class MigrationFault:
    """Fire a fault when a live shard migration reaches ``phase``.

    Armed on the reconfiguration manager's phase hooks (see
    :class:`~repro.reconfig.migration.MigrationCoordinator` for the
    phase machine: ``intent``, ``extend``, ``copy``, ``barrier``,
    ``commit``, ``done``).  When the ``nth`` matching phase boundary
    fires, the node playing ``role`` in that migration -- its
    ``originator``, ``source``, or ``dest`` -- is hit with ``kind``:

    - ``"crash"``: power-fail the node (restart after
      ``restart_after_ms``; None leaves it down for the harness);
    - ``"partition"``: isolate the node from every other node (heal
      after ``heal_after_ms``; None leaves the partition for the
      harness).

    One-shot per plan action; ``arm_after_ms`` delays arming so random
    plans can scatter reconfiguration faults over the run.  If the run
    never migrates (or the cluster has no reconfiguration manager) the
    action never fires -- the controller records it as unarmed.
    """

    phase: str
    role: str = "originator"
    kind: str = "crash"
    restart_after_ms: float | None = None
    heal_after_ms: float | None = None
    nth: int = 1
    arm_after_ms: float = 0.0


FaultAction = (CrashAt | RestartAt | PartitionAt | HealAt | LinkFaultWindow
               | DiskSlowdown | TornWriteAt | BitRotAt | LostWriteAt
               | LogSectorRotAt | CrashWhenLogged | CrashOnGroupForce
               | MigrationFault)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault actions."""

    actions: tuple[FaultAction, ...] = ()

    def __iter__(self):
        return iter(self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    @classmethod
    def of(cls, *actions: FaultAction) -> "FaultPlan":
        return cls(tuple(actions))


def crash_one_replica_per_shard(placement, at_ms: float,
                                restart_after_ms: float | None = None,
                                stagger_ms: float = 0.0,
                                rank: int = -1) -> tuple[CrashAt, ...]:
    """One :class:`CrashAt` per distinct node holding the ``rank``-th
    copy of some key-space (default: each shard's last copy).

    The availability scenario: with every shard losing one replica, the
    cluster must keep committing on the surviving copies.  Nodes are
    deduplicated and crashed in sorted order, ``stagger_ms`` apart, so
    the plan is deterministic and (with a positive stagger) never takes
    two replicas of one shard down at the same instant.
    """
    targets = sorted({placement.replicas(keyspace)[rank]
                      for keyspace in placement.keyspaces()})
    return tuple(CrashAt(at_ms + index * stagger_ms, node,
                         restart_after_ms=restart_after_ms)
                 for index, node in enumerate(targets))


def isolate_replica(placement, keyspace: str, at_ms: float,
                    heal_after_ms: float | None = None,
                    rank: int = -1) -> PartitionAt:
    """Partition the ``rank``-th replica of ``keyspace`` away from every
    other placement node (a crashless failure: the detector suspects it,
    writes degrade, and validation aborts transactions that had written
    to it)."""
    node = placement.replicas(keyspace)[rank]
    others = tuple(other for other in placement.nodes() if other != node)
    return PartitionAt(at_ms, ((node,), others),
                       heal_after_ms=heal_after_ms)


def random_plan(seed: int, nodes: list[str], duration_ms: float,
                episodes: int = 4,
                crash_weight: int = 4, partition_weight: int = 2,
                link_weight: int = 2, disk_weight: int = 1,
                corruption_weight: int = 0,
                replication_weight: int = 0,
                reconfig_weight: int = 0,
                placement=None) -> FaultPlan:
    """A reproducible random torture schedule over ``nodes``.

    Every episode is a bounded fault-and-repair pair (crash+restart,
    partition+heal, a link-fault window, or a disk slowdown), so the plan
    always returns the cluster to a repairable state for the post-run
    invariant checks.  ``corruption_weight`` (default 0, so historical
    seeds reproduce byte-identically) adds storage-corruption episodes:
    torn writes at a crash, bit rot on a data page, an armed lost write,
    or single-copy log-sector rot.  ``replication_weight`` (default 0,
    same guarantee; requires ``placement``) adds replica-targeted
    episodes: crash or isolate one replica of a random key-space.
    ``reconfig_weight`` (default 0, same guarantee) adds
    migration-targeted episodes: crash or isolate the originator,
    source, or destination of a live shard migration at a random phase
    boundary -- a no-op if the run never migrates.  The same ``(seed,
    nodes, duration_ms, ...)`` always yields the same plan.
    """
    rng = random.Random(seed)
    # New kinds append at the END so historical (seed, weights) pairs
    # keep drawing the same episodes.
    kinds = (["crash"] * crash_weight + ["partition"] * partition_weight
             + ["link"] * link_weight + ["disk"] * disk_weight
             + ["corrupt"] * corruption_weight
             + ["replica"] * (replication_weight if placement is not None
                              else 0)
             + ["reconfig"] * reconfig_weight)
    actions: list[FaultAction] = []
    for _ in range(episodes):
        kind = rng.choice(kinds)
        start = rng.uniform(0.05, 0.7) * duration_ms
        window = rng.uniform(0.05, 0.25) * duration_ms
        if kind == "crash":
            actions.append(CrashAt(start, rng.choice(nodes),
                                   restart_after_ms=window))
        elif kind == "replica":
            keyspace = rng.choice(sorted(placement.keyspaces()))
            replicas = placement.replicas(keyspace)
            rank = rng.randrange(len(replicas))
            if rng.random() < 0.5:
                actions.append(CrashAt(start, replicas[rank],
                                       restart_after_ms=window))
            else:
                actions.append(isolate_replica(placement, keyspace, start,
                                               heal_after_ms=window,
                                               rank=rank))
        elif kind == "reconfig":
            phase = rng.choice(["intent", "extend", "copy", "barrier",
                                "commit"])
            role = rng.choice(["originator", "source", "dest"])
            if rng.random() < 0.5:
                actions.append(MigrationFault(
                    phase=phase, role=role, kind="crash",
                    restart_after_ms=window, arm_after_ms=start))
            else:
                actions.append(MigrationFault(
                    phase=phase, role=role, kind="partition",
                    heal_after_ms=window, arm_after_ms=start))
        elif kind == "corrupt":
            node = rng.choice(nodes)
            flavour = rng.choice(["torn", "rot", "lost", "log-rot"])
            if flavour == "torn":
                actions.append(TornWriteAt(start, node,
                                           restart_after_ms=window))
            elif flavour == "rot":
                actions.append(BitRotAt(start, node,
                                        salt=rng.randrange(1, 1 << 16)))
            elif flavour == "lost":
                actions.append(LostWriteAt(start, node))
            else:
                # Single-copy rot only: both-copy rot of an acknowledged
                # record is unrecoverable data loss, not a survivable fault.
                actions.append(LogSectorRotAt(start, node,
                                              copy=rng.randrange(2)))
        elif kind == "partition":
            if len(nodes) < 2:
                continue
            shuffled = nodes[:]
            rng.shuffle(shuffled)
            cut = rng.randrange(1, len(shuffled))
            actions.append(PartitionAt(
                start, (tuple(shuffled[:cut]), tuple(shuffled[cut:])),
                heal_after_ms=window))
        elif kind == "link":
            source, target = rng.sample(nodes, 2) if len(nodes) >= 2 else \
                (nodes[0], nodes[0])
            actions.append(LinkFaultWindow(
                start, start + window, source, target,
                loss=rng.uniform(0.05, 0.4),
                duplicate=rng.uniform(0.0, 0.3),
                reorder=rng.uniform(0.0, 0.3)))
        else:
            actions.append(DiskSlowdown(start, start + window,
                                        rng.choice(nodes),
                                        factor=rng.uniform(2.0, 8.0)))
    actions.sort(key=_action_time)
    return FaultPlan(tuple(actions))


def _action_time(action: FaultAction) -> float:
    for attr in ("at_ms", "start_ms", "arm_after_ms"):
        if hasattr(action, attr):
            return getattr(action, attr)
    return 0.0  # pragma: no cover - every action carries a time
