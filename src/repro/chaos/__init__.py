"""Deterministic fault injection for the TABS simulation.

The chaos harness has three layers:

- :mod:`repro.chaos.plan` -- declarative, immutable fault schedules
  (:class:`FaultPlan`) built from timed actions (crash, restart,
  partition, link faults, disk slowdowns, storage corruption: torn
  writes, bit rot, lost writes, log-sector rot) and log-triggered
  crashes (:class:`CrashWhenLogged`, for hitting exact commit-protocol
  windows);
- :mod:`repro.chaos.controller` -- :class:`ChaosController` installs a
  plan onto a live cluster, records a deterministic event trace, and
  provides repair/quiescence helpers;
- :mod:`repro.chaos.workload` -- :class:`ChaosWorkload` drives seeded
  randomized transfer/queue traffic and audits the transaction
  guarantees afterwards (conservation, atomicity, durability, drainage).

Every run is exactly reproducible from ``(seed, plan)``; the determinism
regression tests assert trace-for-trace equality across reruns.
"""

from repro.chaos.controller import ChaosController
from repro.chaos.plan import (
    BitRotAt,
    CrashAt,
    CrashOnGroupForce,
    CrashWhenLogged,
    DiskSlowdown,
    FaultAction,
    FaultPlan,
    HealAt,
    LinkFaultWindow,
    LogSectorRotAt,
    LostWriteAt,
    MigrationFault,
    PartitionAt,
    RestartAt,
    TornWriteAt,
    crash_one_replica_per_shard,
    isolate_replica,
    random_plan,
)
from repro.chaos.workload import (
    ChaosWorkload,
    TxnRecord,
    WorkloadStats,
    build_cluster,
)

__all__ = [
    "BitRotAt",
    "ChaosController",
    "ChaosWorkload",
    "CrashAt",
    "CrashOnGroupForce",
    "CrashWhenLogged",
    "DiskSlowdown",
    "FaultAction",
    "FaultPlan",
    "HealAt",
    "LinkFaultWindow",
    "LogSectorRotAt",
    "LostWriteAt",
    "MigrationFault",
    "PartitionAt",
    "RestartAt",
    "TornWriteAt",
    "TxnRecord",
    "WorkloadStats",
    "build_cluster",
    "crash_one_replica_per_shard",
    "isolate_replica",
    "random_plan",
]
