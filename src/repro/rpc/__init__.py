"""Remote procedure calls (the Matchmaker equivalent).

TABS reduces the programming effort of packing, unpacking, and dispatching
messages with Matchmaker-generated stubs.  Matchmaker is a code generator;
this package provides the equivalent runtime: :func:`repro.rpc.stubs.call`
packs an operation into a request message, sends it to a data server's
port, and unpacks the response -- for both intra-node and inter-node calls,
which is the paper's usage of the term "remote procedure call".
"""

from repro.rpc.stubs import ServiceRef, call

__all__ = ["ServiceRef", "call"]
