"""The RPC runtime.

A call is one primitive in the paper's cost model: a local call is charged
one ``Data Server Call`` (26.1 ms measured -- "high due to an inefficient
implementation of coroutines"), an inter-node call one ``Inter-Node Data
Server Call`` (89 ms) plus Communication Manager CPU at both ends.  The
request and response messages inside the call are *not* charged separately
(``MessageKind.UNCHARGED``); their cost is what the composite primitive
measures.

Inter-node calls ride sessions: the local Communication Manager's session
to the target carries the request, and both Communication Managers scan
the transaction identifier to maintain the commit spanning tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.network import Network
from repro.errors import ServerError, SessionBroken
from repro.kernel.costs import Primitive
from repro.kernel.messages import Message, MessageKind
from repro.kernel.node import Node
from repro.kernel.ports import Port
from repro.sim import AnyOf, Timeout
from repro.txn.ids import TransactionID

#: How long a caller waits for a remote server's response before declaring
#: the session broken.  Local calls do not time out (a stuck local call is
#: unwound by lock time-outs instead).
DEFAULT_RPC_TIMEOUT_MS = 30_000.0

#: Retry policy for failures that happen *before* the request is handed to
#: the server (at-most-once: a request that may have been dispatched is
#: never retried).  Backoff is capped exponential with deterministic jitter
#: drawn from the cluster's seeded RNG.
DEFAULT_CALL_RETRIES = 3
RETRY_BACKOFF_BASE_MS = 50.0
RETRY_BACKOFF_CAP_MS = 2_000.0


@dataclass(frozen=True)
class ServiceRef:
    """A <port, logical object identifier> pair naming one object.

    These are what Name Server lookups return (Table 3-3); the node name
    lets the RPC layer choose local versus inter-node transport.
    """

    node_name: str
    port: Port
    object_id: object = None
    #: epoch of the serving node when the reference was minted; a restarted
    #: server invalidates old references, forcing a fresh lookup.
    epoch: int = field(default=0, compare=False)
    #: registered name the reference resolved from; lets the RPC layer
    #: re-resolve a stale reference after the serving node restarts.
    name: str = field(default="", compare=False)


class _Retriable(Exception):
    """Internal: a call attempt failed before the request was dispatched."""

    def __init__(self, error: Exception, stale_ref: bool = False) -> None:
        super().__init__(str(error))
        self.error = error
        self.stale_ref = stale_ref


def call(network: Network, client: Node, ref: ServiceRef, op: str,
         body: dict | None = None, tid: TransactionID | None = None,
         timeout_ms: float = DEFAULT_RPC_TIMEOUT_MS,
         retries: int = DEFAULT_CALL_RETRIES):
    """Invoke ``op`` on the object named by ``ref`` (generator).

    Returns the response body (a dict).  Raises :class:`SessionBroken` when
    a remote target is unreachable or fails to respond, and re-raises any
    exception the server marshalled into its response.

    Failures that occur *before* the request reaches the server -- session
    establishment, a stale reference after a peer restart, unreachability
    detected pre-dispatch -- are retried up to ``retries`` times with
    capped exponential backoff and deterministic jitter; a stale reference
    is re-resolved through the Name Server between attempts.  A timeout
    after dispatch is never retried: the request may have executed, and
    the session's at-most-once guarantee must hold.
    """
    ctx = client.ctx
    attempt = 0
    span_id = 0
    if ctx.tracer is not None:
        span_id = ctx.tracer.begin(f"rpc:{op}", client.name, "RPC", tid=tid,
                                   target=ref.node_name,
                                   local=ref.node_name == client.name)
    try:
        while True:
            try:
                result = yield from _call_once(network, client, ref, op, body,
                                               tid, timeout_ms)
                return result
            except _Retriable as failure:
                attempt += 1
                if attempt > retries:
                    raise failure.error
                ctx.meter.bump("rpc_retries")
                ctx.metrics.counter(client.name, "rpc.retries").inc()
                backoff = min(RETRY_BACKOFF_CAP_MS,
                              RETRY_BACKOFF_BASE_MS * (2 ** (attempt - 1)))
                # Deterministic jitter: the seeded RNG spreads retriers
                # without breaking trace reproducibility.
                backoff *= 0.5 + ctx.random.random()
                yield Timeout(ctx.engine, backoff)
                if failure.stale_ref:
                    fresh = yield from _re_resolve(client, ref)
                    if fresh is not None:
                        ref = fresh
    finally:
        if span_id and ctx.tracer is not None:
            ctx.tracer.end(span_id, attempts=attempt + 1)


def _re_resolve(client: Node, ref: ServiceRef):
    """A fresh reference for ``ref.name`` after a peer restart (generator).

    Returns None when the reference carries no name or the lookup fails;
    the caller then retries with the old reference and surfaces the
    original error when attempts run out.
    """
    if not ref.name:
        return None
    # Local import: the nameserver library itself depends on ServiceRef.
    from repro.nameserver.library import NameServerLibrary
    try:
        refs = yield from NameServerLibrary(client).lookup(
            ref.name, node_name=ref.node_name)
    except Exception:
        return None
    return refs[0] if refs else None


def _call_once(network: Network, client: Node, ref: ServiceRef, op: str,
               body: dict | None, tid: TransactionID | None,
               timeout_ms: float):
    ctx = client.ctx
    local = ref.node_name == client.name
    if local:
        total_ms = ctx.delay_of(Primitive.DATA_SERVER_CALL)
    else:
        cm_local = network.manager(client.name)
        try:
            cm_local.sessions.session_to(ref.node_name).next_sequence()
        except SessionBroken as error:
            raise _Retriable(error) from None
        if network.epoch_of(ref.node_name) != ref.epoch:
            raise _Retriable(SessionBroken(
                f"server reference on {ref.node_name!r} is stale: the node "
                "restarted; look the name up again"), stale_ref=True)
        total_ms = ctx.delay_of(Primitive.INTER_NODE_DATA_SERVER_CALL)
        # Both Communication Managers scan the tid (spanning tree) and burn
        # CPU shepherding the session messages.  That CPU is *inside* the
        # measured 89 ms inter-node-call primitive -- the paper notes that
        # communication time is counted in both the primitive sum and the
        # TABS process time -- so it is recorded without extending latency.
        cm_local.record_outbound(tid, ref.node_name)
        ctx.meter.record_cpu("CM", ctx.cpu_costs.cm_session_msg)
        network.manager(ref.node_name).record_inbound(tid, client.name)
        ctx.meter.record_cpu("CM", ctx.cpu_costs.cm_session_msg)

    yield Timeout(ctx.engine, total_ms / 2)  # request transport + dispatch
    if not local and not network.reachable(client.name, ref.node_name):
        # Still pre-dispatch: the request never reached the peer, so a
        # retry cannot double-execute it.
        raise _Retriable(SessionBroken(
            f"node {ref.node_name!r} became unreachable mid-call "
            "(crashed or partitioned away)"))
    reply_port = Port(ctx, node=client, name=f"rpc-reply:{op}")
    trace_parent = (ctx.tracer.current_span_id(tid, client.name)
                    if ctx.tracer is not None else 0)
    try:
        ref.port.send(Message(op=op, body=dict(body or {}),
                              reply_to=reply_port, tid=tid,
                              kind=MessageKind.UNCHARGED,
                              sender_node=client.name,
                              trace_parent=trace_parent),
                      charged=False)

        if local:
            response = yield reply_port.receive()
        else:
            deadline = Timeout(ctx.engine, timeout_ms)
            which, response = yield AnyOf(ctx.engine,
                                          [reply_port.receive(), deadline])
            if which == 1:
                raise SessionBroken(
                    f"no response from {ref.node_name!r} for {op!r} within "
                    f"{timeout_ms} ms (node crashed?)")
    finally:
        # Deallocate whatever the outcome: a dead reply port silently
        # drops any stale late reply, and releasing it keeps the node's
        # port table from growing under repeated timeouts.
        reply_port.destroy()
        client.release_port(reply_port)
    yield Timeout(ctx.engine, total_ms / 2)  # response transport

    if "error" in response.body:
        raise response.body["error"]
    return response.body


def respond(request: Message, body: dict | None = None,
            kind: MessageKind = MessageKind.SMALL) -> None:
    """Server-side: send the response for ``request``.

    Responses to RPC operation requests are uncharged (the composite
    data-server-call primitive covers them); responses to plain messages
    are charged as small messages, unless the request declared its reply
    free (merged-architecture intra-kernel conversations).
    """
    if request.reply_to is None:
        return
    uncharged = (request.kind is MessageKind.UNCHARGED
                 or request.free_reply)
    request.reply_to.send(
        Message(op=request.op + ".reply", body=dict(body or {}),
                kind=MessageKind.UNCHARGED if uncharged else kind),
        charged=not uncharged)


def respond_error(request: Message, error: Exception) -> None:
    """Server-side: marshal an exception back to the caller."""
    if not isinstance(error, Exception):  # pragma: no cover - defensive
        error = ServerError(repr(error))
    respond(request, {"error": error})
