"""Command-line demo runner: ``python -m repro <command>``.

Commands:

- ``inventory`` -- print the Figure 3-1 component map of a running node
- ``primitives`` -- measure and print Table 5-1 against the paper
- ``benchmark [keys...]`` -- run Table 5-4 rows (default: a quick subset)
- ``paths`` -- print the longest-path commit analysis (Table 5-3 method)
- ``trace <target>`` -- run a benchmark or the canned chaos scenario with
  the flight recorder on; emit Chrome trace-event JSON (load it at
  https://ui.perfetto.dev) and optionally compact JSONL
- ``metrics <target>`` -- run a target and print its per-node counters,
  gauges, and latency histograms
- ``profile <target>`` -- run a target under the wall-clock self-profiler;
  print the hot-handler table, fabric churn, and the events/sec meter, and
  optionally write a collapsed-stack flamegraph and a pstats dump

The heavier artifacts (all fourteen benchmarks under three configurations,
ablations, throughput) live in ``pytest benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys

from repro import TabsCluster, TabsConfig
from repro.kernel.costs import MEASURED_1985
from repro.perf.benchmarks import BENCHMARKS_BY_KEY, run_benchmark
from repro.perf.model import PAPER_TABLE_5_3
from repro.perf.pathmodel import TABLE_5_3_PATHS
from repro.perf.primitives import measure_primitives
from repro.perf.projections import run_table_5_4
from repro.perf.report import (
    render_metrics,
    render_table_5_1,
    render_table_5_4,
)
from repro.servers.int_array import IntegerArrayServer

#: the extra trace/metrics target beyond the benchmark keys
CHAOS_TARGET = "chaos"


def write_report(text: str, stream=None) -> None:
    """Write one report to ``stream``, defaulting to the *current* stdout.

    Every command funnels its output through here; resolving
    ``sys.stdout`` at call time (not import time) keeps the commands
    observable under pytest's ``capsys`` and honest under redirection.
    """
    out = stream if stream is not None else sys.stdout
    out.write(text)
    if not text.endswith("\n"):
        out.write("\n")


def cmd_inventory(_args) -> int:
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("demo")
    cluster.add_server("demo", IntegerArrayServer.factory("array"))
    cluster.start()
    lines = ["Figure 3-1: the components of a TABS node", ""]
    for name, role in cluster.node("demo").component_inventory().items():
        lines.append(f"  {name:24s} {role}")
    write_report("\n".join(lines))
    return 0


def cmd_primitives(_args) -> int:
    measured = measure_primitives(repetitions=20)
    write_report(render_table_5_1(measured, MEASURED_1985))
    return 0


def cmd_benchmark(args) -> int:
    keys = args.keys or ["r1", "w1", "r1r1", "w1w1"]
    rows = run_table_5_4(keys=keys, iterations=args.iterations)
    write_report(render_table_5_4(rows))
    return 0


def cmd_paths(_args) -> int:
    lines = ["Longest-path commit counts (ours | paper), per Table 5-3", ""]
    for protocol, path in TABLE_5_3_PATHS.items():
        paper = PAPER_TABLE_5_3[protocol]
        lines.append(f"  {protocol:14s} dg {path.datagrams:>4} | "
                     f"{paper.datagrams:>4}   small {path.small:>4.0f} | "
                     f"{paper.small:>4.0f}   stable {path.stable_writes:>2.0f} | "
                     f"{paper.stable_writes:>2.0f}")
    write_report("\n".join(lines))
    return 0


# -- observability targets ---------------------------------------------------

def _run_chaos_target(seed: int, traced: bool,
                      profiled: bool = False) -> TabsCluster:
    """The canned chaos scenario: crash + partition + link-fault torture.

    Mirrors the determinism suite's plan so a trace of it shows failure
    detection, aborts, session breaks, and crash-recovery replay -- the
    events the flight recorder exists for.
    """
    from repro.chaos import (
        ChaosController,
        ChaosWorkload,
        CrashAt,
        FaultPlan,
        LinkFaultWindow,
        PartitionAt,
    )
    from repro.chaos.workload import build_cluster

    plan = FaultPlan.of(
        CrashAt(350.0, "n1", restart_after_ms=450.0),
        PartitionAt(1_000.0, (("n0",), ("n1", "n2")), heal_after_ms=500.0),
        LinkFaultWindow(1_800.0, 2_600.0, "n0", "n2", loss=0.3,
                        duplicate=0.2, reorder=0.2))
    cluster = build_cluster(seed=seed)
    if traced:
        cluster.enable_tracing()
    if profiled:
        cluster.enable_profiling()
    controller = ChaosController(cluster, plan, seed=seed)
    workload = ChaosWorkload(cluster, controller, seed=seed)
    workload.setup()
    controller.install()
    workload.schedule_traffic(transfers=10)
    workload.run(4_000.0)
    workload.finale()
    return cluster


def _run_target(target: str, seed: int, iterations: int,
                traced: bool, profiled: bool = False) -> TabsCluster:
    """Run ``target`` (a benchmark key or ``chaos``); return its cluster."""
    if target == CHAOS_TARGET:
        return _run_chaos_target(seed, traced, profiled)
    spec = BENCHMARKS_BY_KEY[target]
    captured: list[TabsCluster] = []

    def instrument(cluster: TabsCluster) -> None:
        captured.append(cluster)
        if traced:
            cluster.enable_tracing()
        if profiled:
            cluster.enable_profiling()

    run_benchmark(spec, TabsConfig(seed=seed), iterations=iterations,
                  instrument=instrument)
    return captured[0]


def cmd_trace(args) -> int:
    from repro.obs import chrome_trace_json, jsonl_events

    cluster = _run_target(args.target, args.seed, args.iterations,
                          traced=True)
    tracer = cluster.ctx.tracer
    payload = chrome_trace_json(tracer)
    summary = (f"{len(tracer.spans)} spans, {len(tracer.events)} events, "
               f"{tracer.last_time_ms():.1f} simulated ms")
    if args.jsonl:
        with open(args.jsonl, "w") as handle:
            handle.write(jsonl_events(tracer))
        write_report(f"wrote JSONL flight record to {args.jsonl} "
                     f"({summary})")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload)
        write_report(f"wrote Chrome trace to {args.out} ({summary}); "
                     "load it at https://ui.perfetto.dev")
    elif not args.jsonl:
        write_report(payload)
    return 0


def cmd_metrics(args) -> int:
    from repro.obs import metrics_json

    cluster = _run_target(args.target, args.seed, args.iterations,
                          traced=False)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(metrics_json(cluster.metrics))
        write_report(f"wrote metrics snapshot to {args.json}")
    else:
        write_report(render_metrics(cluster.metrics))
    return 0


def cmd_profile(args) -> int:
    from repro.obs import collapsed_stacks, render_profile, write_pstats

    cluster = _run_target(args.target, args.seed, args.iterations,
                          traced=False, profiled=True)
    profiler = cluster.ctx.profiler
    write_report(render_profile(profiler, top=args.top))
    if args.flame:
        with open(args.flame, "w") as handle:
            handle.write(collapsed_stacks(profiler))
        write_report(f"wrote collapsed-stack flamegraph text to "
                     f"{args.flame} (feed it to flamegraph.pl or "
                     "speedscope)")
    if args.pstats:
        write_pstats(profiler, args.pstats)
        write_report(f"wrote pstats dump to {args.pstats} "
                     "(load with pstats.Stats or snakeviz)")
    return 0


def cmd_sweep(args) -> int:
    import json

    from repro.perf.runner import (
        chaos_soak_cells,
        debitcredit_sweep_cells,
        run_cells,
        sweep_payload,
        throughput_sweep_cells,
    )

    counts = [int(part) for part in args.counts.split(",") if part]
    seeds = [int(part) for part in args.seeds.split(",") if part]
    if args.sweep == "throughput":
        cells = [cell for seed in seeds
                 for cell in throughput_sweep_cells(
                     counts, workload=args.workload,
                     duration_ms=args.duration_ms, seed=seed)]
    elif args.sweep == "debitcredit":
        cells = [cell for seed in seeds
                 for cell in debitcredit_sweep_cells(
                     counts, duration_ms=args.duration_ms, seed=seed)]
    else:
        cells = chaos_soak_cells(seeds)
    results = run_cells(cells, workers=args.workers)
    payload = sweep_payload(cells, results, workers=args.workers)
    text = json.dumps(payload, indent=1, sort_keys=True)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(text + "\n")
        write_report(f"wrote {len(cells)} cells to {args.json}")
    else:
        write_report(text)
    return 0


def _add_target_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "target",
        choices=sorted(BENCHMARKS_BY_KEY) + [CHAOS_TARGET],
        help="benchmark key (e.g. w1w1) or 'chaos' (canned fault scenario)")
    parser.add_argument("--seed", type=int, default=1985)
    parser.add_argument("--iterations", type=int, default=3,
                        help="benchmark iterations (ignored for chaos)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TABS reproduction demo runner (SOSP 1985)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("inventory").set_defaults(run=cmd_inventory)
    sub.add_parser("primitives").set_defaults(run=cmd_primitives)
    bench = sub.add_parser("benchmark")
    bench.add_argument("keys", nargs="*",
                       help="benchmark keys (e.g. r1 w1 r1r1)")
    bench.add_argument("--iterations", type=int, default=10)
    bench.set_defaults(run=cmd_benchmark)
    sub.add_parser("paths").set_defaults(run=cmd_paths)
    trace = sub.add_parser(
        "trace", help="run a target with the flight recorder on")
    _add_target_arguments(trace)
    trace.add_argument("--out", help="write Chrome trace-event JSON here "
                                     "(default: print to stdout)")
    trace.add_argument("--jsonl", help="also write compact JSONL events")
    trace.set_defaults(run=cmd_trace)
    metrics = sub.add_parser(
        "metrics", help="run a target and print its metrics registry")
    _add_target_arguments(metrics)
    metrics.add_argument("--json", help="write the JSON snapshot here "
                                        "instead of rendering tables")
    metrics.set_defaults(run=cmd_metrics)
    profile = sub.add_parser(
        "profile", help="run a target under the wall-clock self-profiler")
    _add_target_arguments(profile)
    profile.add_argument("--top", type=int, default=10,
                         help="rows in the hot-handler and contention "
                              "tables")
    profile.add_argument("--flame", help="write collapsed-stack "
                                         "flamegraph text here")
    profile.add_argument("--pstats", help="write a pstats-compatible "
                                          "dump here")
    profile.set_defaults(run=cmd_profile)
    sweep = sub.add_parser(
        "sweep", help="fan a (config, seed) experiment sweep across "
                      "worker processes (deterministic aggregation)")
    sweep.add_argument("sweep",
                       choices=["throughput", "debitcredit", "chaos"],
                       help="which experiment family to sweep")
    sweep.add_argument("--counts", default="1,2,4,8",
                       help="comma-separated client/concurrency counts")
    sweep.add_argument("--seeds", default="1985",
                       help="comma-separated seeds (chaos: one cell per "
                            "seed)")
    sweep.add_argument("--duration-ms", type=float, default=10_000.0)
    sweep.add_argument("--workload", default="disjoint",
                       choices=["disjoint", "shared"],
                       help="throughput sweep workload")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (results are identical "
                            "for any value)")
    sweep.add_argument("--json", help="write the JSON document here "
                                      "instead of printing it")
    sweep.set_defaults(run=cmd_sweep)
    args = parser.parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
