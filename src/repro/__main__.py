"""Command-line demo runner: ``python -m repro <command>``.

Commands:

- ``inventory`` -- print the Figure 3-1 component map of a running node
- ``primitives`` -- measure and print Table 5-1 against the paper
- ``benchmark [keys...]`` -- run Table 5-4 rows (default: a quick subset)
- ``paths`` -- print the longest-path commit analysis (Table 5-3 method)

The heavier artifacts (all fourteen benchmarks under three configurations,
ablations, throughput) live in ``pytest benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys

from repro import TabsCluster, TabsConfig
from repro.kernel.costs import MEASURED_1985
from repro.perf.model import PAPER_TABLE_5_3
from repro.perf.pathmodel import TABLE_5_3_PATHS
from repro.perf.primitives import measure_primitives
from repro.perf.projections import run_table_5_4
from repro.perf.report import render_table_5_1, render_table_5_4
from repro.servers.int_array import IntegerArrayServer


def cmd_inventory(_args) -> int:
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("demo")
    cluster.add_server("demo", IntegerArrayServer.factory("array"))
    cluster.start()
    print("Figure 3-1: the components of a TABS node\n")
    for name, role in cluster.node("demo").component_inventory().items():
        print(f"  {name:24s} {role}")
    return 0


def cmd_primitives(_args) -> int:
    measured = measure_primitives(repetitions=20)
    print(render_table_5_1(measured, MEASURED_1985))
    return 0


def cmd_benchmark(args) -> int:
    keys = args.keys or ["r1", "w1", "r1r1", "w1w1"]
    rows = run_table_5_4(keys=keys, iterations=args.iterations)
    print(render_table_5_4(rows))
    return 0


def cmd_paths(_args) -> int:
    print("Longest-path commit counts (ours | paper), per Table 5-3\n")
    for protocol, path in TABLE_5_3_PATHS.items():
        paper = PAPER_TABLE_5_3[protocol]
        print(f"  {protocol:14s} dg {path.datagrams:>4} | "
              f"{paper.datagrams:>4}   small {path.small:>4.0f} | "
              f"{paper.small:>4.0f}   stable {path.stable_writes:>2.0f} | "
              f"{paper.stable_writes:>2.0f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TABS reproduction demo runner (SOSP 1985)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("inventory").set_defaults(run=cmd_inventory)
    sub.add_parser("primitives").set_defaults(run=cmd_primitives)
    bench = sub.add_parser("benchmark")
    bench.add_argument("keys", nargs="*",
                       help="benchmark keys (e.g. r1 w1 r1r1)")
    bench.add_argument("--iterations", type=int, default=10)
    bench.set_defaults(run=cmd_benchmark)
    sub.add_parser("paths").set_defaults(run=cmd_paths)
    args = parser.parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
