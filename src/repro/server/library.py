"""The complete TABS server library (Table 3-1).

Mapping from the paper's routine names to methods here:

===================================  =========================================
Table 3-1 routine                    method
===================================  =========================================
``InitServer``                       :meth:`DataServerLibrary.__init__`
``ReadPermanentData``                :meth:`read_permanent_data`
``RecoverServer``                    :meth:`recover_server`
``AcceptRequests``                   :meth:`accept_requests`
``CreateObjectID``                   :meth:`create_object_id`
``ConvertObjectIDtoVirtualAddress``  :meth:`convert_object_id_to_va`
``LockObject``                       :meth:`lock_object`
``ConditionallyLockObject``          :meth:`conditionally_lock_object`
``IsObjectLocked``                   :meth:`is_object_locked`
``PinObject`` / ``UnPinObject`` /    :meth:`pin_object` /
``UnPinAllObjects``                  :meth:`unpin_object` / :meth:`unpin_all`
``PinAndBuffer``                     :meth:`pin_and_buffer`
``LogAndUnPin``                      :meth:`log_and_unpin`
``LockAndMark``                      :meth:`lock_and_mark`
``PinAndBufferMarkedObjects``        :meth:`pin_and_buffer_marked_objects`
``LogAndUnPinMarkedObjects``         :meth:`log_and_unpin_marked_objects`
``ExecuteTransaction``               :meth:`execute_transaction`
===================================  =========================================

Beyond Table 3-1, the library implements the extensions the paper's
Conclusions call for: operation logging (:meth:`log_operation`,
:meth:`register_recovery_operation`) and type-specific locking (pass any
:class:`~repro.locking.modes.CompatibilityMatrix` as the protocol).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.errors import ServerError, TransactionAborted
from repro.kernel.messages import Message
from repro.kernel.node import Node
from repro.kernel.ports import Port
from repro.kernel.vm import ObjectID, RecoverableSegment
from repro.locking.manager import LockManager
from repro.locking.modes import (
    READ,
    READ_WRITE_PROTOCOL,
    WRITE,
    CompatibilityMatrix,
    LockMode,
)
from repro.recovery.manager import RecoveryManagerClient
from repro.rpc.stubs import respond, respond_error
from repro.txn.ids import NULL_TID, TransactionID
from repro.txn.manager import SERVICE as TM_SERVICE
from repro.wal.records import OperationRecord, ValueUpdateRecord


@dataclass
class TxnLocal:
    """A data server's per-transaction state."""

    tid: TransactionID
    joined: bool = False
    #: PinAndBuffer'ed old values awaiting LogAndUnPin
    buffers: dict[ObjectID, object] = field(default_factory=dict)
    #: LockAndMark's "to be modified" queue
    marked: list[tuple[ObjectID, LockMode]] = field(default_factory=list)
    #: every object this transaction has logged an update for
    write_set: set[ObjectID] = field(default_factory=set)
    #: first buffered old value per object: the value that was committed
    #: when this transaction first touched it, kept until the transaction
    #: ends (``buffers`` is drained at LogAndUnPin, this is not)
    pre_images: dict[ObjectID, object] = field(default_factory=dict)
    wrote: bool = False
    aborted: bool = False
    #: voted "update" in phase one; its writes may commit at any moment
    prepared: bool = False


class DataServerLibrary:
    """Runtime for one data server process (``InitServer``)."""

    def __init__(self, node: Node, server_id: str,
                 protocol: CompatibilityMatrix = READ_WRITE_PROTOCOL,
                 lock_timeout_ms: float | None = None) -> None:
        self.node = node
        self.ctx = node.ctx
        self.server_id = server_id
        self.port = node.create_port(f"ds:{server_id}")
        self.locks = LockManager(node.ctx, protocol=protocol,
                                 node_name=node.name)
        if lock_timeout_ms is not None:
            self.locks.default_timeout_ms = lock_timeout_ms
        self.rm = RecoveryManagerClient(node)
        self.segment: RecoverableSegment | None = None
        self._txns: dict[TransactionID, TxnLocal] = {}
        self._aborted_tombstones: set[TransactionID] = set()
        self._dispatch: Callable | None = None
        self._recovery_ops: dict[str, Callable] = {}
        self.requests_served = 0

    # -- startup (Table 3-1 "Startup" group) --------------------------------------

    def read_permanent_data(self, segment_id: str, page_count: int,
                            base_va: int):
        """Map the server's recoverable segment into virtual memory.

        Generator returning ``(virtual_address, size_bytes)``.
        """
        self.segment = RecoverableSegment(segment_id, page_count, base_va)
        self.node.vm.map_segment(self.segment)
        return (self.segment.base_va, self.segment.size)
        yield  # pragma: no cover - mapping itself is free

    def recover_server(self):
        """Attach to the Recovery Manager for logging and recovery.

        Generator.  Node-level log replay is driven by the facility (all
        servers share the common log); this registers the server's port so
        the Recovery Manager can send it undo/redo instructions, and its
        segment so checkpoints record the attachment.
        """
        if self.segment is None:
            raise ServerError("call read_permanent_data before recover_server")
        yield from self.rm.attach(self.server_id, self.segment.segment_id,
                                  self.port)

    def accept_requests(self, dispatch: Callable) -> None:
        """Start serving.  ``dispatch(op, body, tid)`` is a generator
        returning the response body for user-defined operations."""
        self._dispatch = dispatch
        self._loop_process = self.node.spawn(
            self._loop(), name=f"ds:{self.server_id}", defused=True)

    def fail(self) -> None:
        """Kill this data server process without taking the node down.

        Its port dies, its request loop stops, and its volatile state
        (lock table, per-transaction records) vanishes; the recoverable
        segment and the common log are untouched.  Recovery of the single
        server is driven by :meth:`TabsNode.recover_server`.
        """
        self.port.destroy()
        process = getattr(self, "_loop_process", None)
        if process is not None:
            process.kill(f"data server {self.server_id} failed")
        self.crash_volatile_state()

    def _loop(self):
        while True:
            message = yield self.port.receive()
            # Each request is a separate coroutine invocation; switches
            # happen only when the operation waits.  The _serve wrapper
            # exists only to open/close a trace span, and every
            # ``yield from`` layer costs a frame per suspend/resume, so
            # the untraced path spawns the body directly.
            body = (self._serve(message) if self.ctx.tracer is not None
                    else self._serve_traced(message))
            self.node.spawn(body, name=f"{self.server_id}:{message.op}",
                            defused=True)

    def _serve(self, message: Message):
        span_id = 0
        if self.ctx.tracer is not None:
            span_tid = (message.tid if message.tid is not None
                        else message.body.get("tid"))
            span_id = self.ctx.tracer.begin(
                f"ds:{message.op}", self.node.name, "DS", tid=span_tid,
                parent_id=message.trace_parent, server=self.server_id)
        try:
            yield from self._serve_traced(message)
        finally:
            if span_id and self.ctx.tracer is not None:
                self.ctx.tracer.end(span_id)

    def _serve_traced(self, message: Message):
        if message.op.startswith("ds."):
            yield from self._serve_system(message)
            return
        tid = message.tid
        try:
            if tid is not None:
                if (tid in self._aborted_tombstones
                        or self._local(tid).aborted):
                    raise TransactionAborted(tid, "aborted before this "
                                                  "operation arrived")
                yield from self._ensure_joined(tid)
            assert self._dispatch is not None, "accept_requests not called"
            result = yield from self._dispatch(message.op, message.body, tid)
            self.requests_served += 1
            respond(message, result or {})
        except Exception as error:  # noqa: BLE001 - marshalled to the caller
            self._release_pins_after_failure(tid)
            respond_error(message, error)

    def _release_pins_after_failure(self, tid: TransactionID | None) -> None:
        """A failed operation must not leave buffered pins behind."""
        local = self._txns.get(tid) if tid is not None else None
        if local is None:
            return
        for oid in list(local.buffers):
            self.node.vm.unpin(oid)
            del local.buffers[oid]

    def _local(self, tid: TransactionID) -> TxnLocal:
        local = self._txns.get(tid)
        if local is None:
            local = self._txns[tid] = TxnLocal(tid)
        return local

    def _ensure_joined(self, tid: TransactionID):
        """First operation on behalf of a transaction: tell the local
        Transaction Manager, so it knows whom to inform at termination."""
        local = self._local(tid)
        if local.joined:
            return
        reply_port = Port(self.ctx, node=self.node, name="join-reply")
        self.node.service(TM_SERVICE).send(Message(
            op="tm.join", body={"tid": tid, "server": self.server_id,
                                "port": self.port},
            reply_to=reply_port))
        response = yield reply_port.receive()
        if "error" in response.body:
            raise response.body["error"]
        local.joined = True

    # -- address arithmetic ----------------------------------------------------------

    def create_object_id(self, virtual_address: int, length: int) -> ObjectID:
        return self.node.vm.object_id_for_va(virtual_address, length)

    def convert_object_id_to_va(self, oid: ObjectID) -> int:
        return self.node.vm.va_for_object_id(oid)

    # -- locking ------------------------------------------------------------------------

    def lock_object(self, tid: TransactionID, oid: Hashable,
                    mode: LockMode = WRITE,
                    timeout_ms: float | None = None,
                    priority: bool = False):
        """``LockObject``: waits if unavailable; LockTimeout breaks deadlock."""
        self._refuse_zombie(tid)
        yield from self.locks.lock(tid, oid, mode, timeout_ms=timeout_ms,
                                   priority=priority)

    def _refuse_zombie(self, tid: TransactionID) -> None:
        """Stop an operation whose transaction finished while it was in
        flight (a *zombie*: its client timed out or its coordinator
        aborted it mid-operation).  The abort already released locks and
        undid logged writes, so any further lock, pin, or write from
        this coroutine would run unprotected and survive the undo."""
        if tid in self._aborted_tombstones:
            raise TransactionAborted(
                tid, "aborted while this operation was in flight")

    def conditionally_lock_object(self, tid: TransactionID, oid: Hashable,
                                  mode: LockMode = WRITE) -> bool:
        return self.locks.try_lock(tid, oid, mode)

    def is_object_locked(self, oid: Hashable) -> bool:
        return self.locks.is_locked(oid)

    # -- paging control -----------------------------------------------------------------

    def pin_object(self, oid: ObjectID):
        yield from self.node.vm.pin(oid)

    def unpin_object(self, oid: ObjectID) -> None:
        self.node.vm.unpin(oid)

    def unpin_all(self) -> None:
        self.node.vm.unpin_all()

    # -- object access ---------------------------------------------------------------------

    def read_object(self, oid: ObjectID):
        """Read an object's current value (generator; pages fault in)."""
        value = yield from self.node.vm.read_object(oid)
        return value

    def read_committed(self, oid: ObjectID):
        """The last *committed* value of ``oid``, without waiting for
        locks (generator).  Returns ``(ok, value)``.

        Three cases:

        - no exclusive holder: the current value is committed;
        - an *active* (unprepared) writer holds the object: its first
          buffered pre-image is the committed value -- returned without
          queueing behind the writer;
        - a *prepared* writer holds it (or an in-doubt relock with no
          pre-image): the outcome is undecided, so the committed value
          cannot be named without waiting -- ``(False, None)``; the
          caller falls back to an ordinary locked read.

        Used by replica catch-up snapshots: a snapshot queued behind a
        convoyed hot cell would hold the recovering copy's read barrier
        up for the convoy's lifetime, and the versioned merge tolerates
        a read that is merely *slightly* stale (any writer whose fan-out
        includes the recovering copy updates it directly; one whose
        fan-out missed it fails footprint validation at commit).
        """
        value = yield from self.node.vm.read_object(oid)
        # Scan for the writer *after* the read: a writer that sneaked in
        # during the page fault is caught here and its pre-image wins.
        holder = self.locks.exclusive_holder(oid, READ)
        if holder is None:
            return True, value
        local = self._txns.get(holder)
        if local is not None and not local.prepared \
                and oid in local.pre_images:
            return True, local.pre_images[oid]
        return False, None

    def write_object(self, oid: ObjectID, value: object):
        """Assign to a pinned object (the ``obj.ptr := value`` of the
        paper's SetCell listing).  Pinning first is mandatory: it is what
        keeps the un-logged new value off the disk."""
        if not self.node.vm.is_pinned(oid):
            raise ServerError(
                f"{self.server_id}: write to unpinned object {oid} "
                "(call pin_and_buffer first)")
        yield from self.node.vm.write_object(oid, value)

    # -- value logging (pin/buffer/log cycle) --------------------------------------------------

    def pin_and_buffer(self, tid: TransactionID, oid: ObjectID):
        """Pin the object and buffer its old value before modification."""
        if not oid.single_page:
            raise ServerError(
                "value logging covers at most one page per object; use "
                "operation logging for multi-page objects")
        self._refuse_zombie(tid)
        yield from self.node.vm.pin(oid)
        old_value = yield from self.node.vm.read_object(oid)
        if tid in self._aborted_tombstones:
            # Aborted during the pin: back out before buffering.
            self.node.vm.unpin(oid)
            self._refuse_zombie(tid)
        local = self._local(tid)
        local.buffers[oid] = old_value
        local.pre_images.setdefault(oid, old_value)

    def log_and_unpin(self, tid: TransactionID, oid: ObjectID):
        """Send the old/new value pair to the Recovery Manager; unpin."""
        local = self._local(tid)
        if oid not in local.buffers:
            raise ServerError(f"log_and_unpin without pin_and_buffer: {oid}")
        if tid in self._aborted_tombstones:
            # The transaction aborted between this cycle's pin and its
            # log: the new value was written but never logged, so the
            # abort's undo could not see it.  Scrub it back to the
            # *first* committed pre-image, not this cycle's buffer --
            # if an earlier cycle of the same transaction logged a
            # write of this object, the buffer holds that cycle's (now
            # undone) value and restoring it would resurrect aborted
            # data on top of the Recovery Manager's undo.
            buffered = local.buffers.pop(oid)
            yield from self.node.vm.write_object(
                oid, local.pre_images.get(oid, buffered))
            self.node.vm.unpin(oid)
            self._refuse_zombie(tid)
        yield self.ctx.cpu("DS", self.ctx.cpu_costs.ds_log_format)
        new_value = yield from self.node.vm.read_object(oid)
        record = ValueUpdateRecord(
            tid=tid, server=self.server_id, oid=oid,
            old_value=local.buffers.pop(oid), new_value=new_value)
        lsn = yield from self.rm.spool(record)
        self.node.vm.set_page_lsn(oid, lsn)
        self.node.vm.unpin(oid)
        local.write_set.add(oid)
        local.wrote = True

    # -- marked-object batch (LockAndMark family) -------------------------------------------------

    def lock_and_mark(self, tid: TransactionID, oid: ObjectID,
                      mode: LockMode = WRITE,
                      timeout_ms: float | None = None):
        """Lock now, remember for a later batched pin/log cycle.

        The checkpoint protocol requires that servers not wait (e.g. for a
        lock) while objects are pinned; acquiring every lock before any pin
        is the discipline these routines enable (Section 3.1.1).
        """
        yield from self.locks.lock(tid, oid, mode, timeout_ms=timeout_ms)
        self._local(tid).marked.append((oid, mode))

    def pin_and_buffer_marked_objects(self, tid: TransactionID):
        local = self._local(tid)
        for oid, _mode in local.marked:
            if oid not in local.buffers:
                yield from self.pin_and_buffer(tid, oid)

    def log_and_unpin_marked_objects(self, tid: TransactionID):
        local = self._local(tid)
        for oid, _mode in local.marked:
            if oid in local.buffers:
                yield from self.log_and_unpin(tid, oid)
        local.marked.clear()

    # -- operation logging (the paper's future-work extension) --------------------------------------

    def register_recovery_operation(self, name: str,
                                    applier: Callable) -> None:
        """Register the undo/redo code for a logged operation name.

        ``applier(args)`` must be a generator applying the operation's
        effect directly (no locking, no logging) -- it runs during abort
        processing and crash recovery.
        """
        self._recovery_ops[name] = applier

    def recovery_applier(self, operation: str, args: tuple):
        """Dispatch one recovery instruction (used by the recovery driver)."""
        try:
            applier = self._recovery_ops[operation]
        except KeyError:
            raise ServerError(
                f"{self.server_id}: no recovery operation {operation!r} "
                "registered") from None
        yield from applier(args)

    def log_operation(self, tid: TransactionID, operation: str,
                      redo_args: tuple, undo_operation: str,
                      undo_args: tuple, oids: tuple[ObjectID, ...]):
        """Spool an operation (transition) record covering ``oids``.

        One record may cover a multi-page object -- the advantage the paper
        cites for operation logging.  The caller must hold the affected
        pages pinned and unpin after this returns.
        """
        for name in (operation, undo_operation):
            if name not in self._recovery_ops:
                raise ServerError(
                    f"operation {name!r} has no registered recovery "
                    "applier; register_recovery_operation first")
        record = OperationRecord(
            tid=tid, server=self.server_id, operation=operation,
            redo_args=tuple(redo_args), undo_operation=undo_operation,
            undo_args=tuple(undo_args), oids=tuple(oids))
        lsn = yield from self.rm.spool(record)
        for oid in oids:
            self.node.vm.set_page_lsn(oid, lsn)
        local = self._local(tid)
        local.write_set.update(oids)
        local.wrote = True

    # -- ExecuteTransaction ---------------------------------------------------------------------------

    def execute_transaction(self, procedure: Callable):
        """Run ``procedure(tid)`` inside a brand-new top-level transaction.

        Generator returning the procedure's result.  Used by servers that
        need transactions of their own while serving a client transaction
        (the I/O server's permanent-but-not-failure-atomic output).
        """
        tid = yield from self._tm_request("tm.begin", {"parent": NULL_TID},
                                          key="tid")
        # The procedure will operate on this server's own data without an
        # incoming request to trigger the first-operation notice, so join
        # the Transaction Manager explicitly -- otherwise commit would never
        # reach this server and its locks would never be released.
        yield from self._ensure_joined(tid)
        try:
            result = yield from procedure(tid)
        except Exception:
            yield from self._tm_request("tm.abort", {"tid": tid},
                                        key="aborted")
            raise
        yield from self._tm_request("tm.end", {"tid": tid}, key="committed")
        return result

    def _tm_request(self, op: str, body: dict, key: str):
        reply_port = Port(self.ctx, node=self.node, name=f"ds-tm:{op}")
        self.node.service(TM_SERVICE).send(Message(op=op, body=body,
                                                   reply_to=reply_port))
        response = yield reply_port.receive()
        if "error" in response.body:
            raise response.body["error"]
        return response.body[key]

    # -- two-phase-commit participation (automated by the library) ----------------------------------------

    def _serve_system(self, message: Message):
        handler = {
            "ds.prepare": self._sys_prepare,
            "ds.commit": self._sys_commit,
            "ds.abort": self._sys_abort,
            "ds.undo_value": self._sys_undo_value,
            "ds.undo_operation": self._sys_undo_operation,
            "ds.subtxn_commit": self._sys_subtxn_commit,
        }.get(message.op)
        if handler is None:
            respond_error(message, ServerError(f"unknown system op "
                                               f"{message.op!r}"))
            return
        yield from handler(message)

    def _sys_prepare(self, message: Message):
        tid: TransactionID = message.body["tid"]
        yield self.ctx.cpu("DS", self.ctx.cpu_costs.ds_txn_overhead)
        local = self._txns.get(tid)
        if local is None:
            respond(message, {"vote": "read_only"})
            return
        if local.aborted:
            respond(message, {"vote": "abort"})
            return
        if local.buffers:
            respond_error(message, ServerError(
                f"{self.server_id}: transaction {tid} reached prepare with "
                "objects still pinned/buffered"))
            return
        if local.wrote:
            # Prepare record (large message): the write set, so recovery can
            # re-acquire locks for this in-doubt transaction.
            local.prepared = True
            self.rm.send_prepare_record(tid, self.server_id,
                                        tuple(sorted(local.write_set)))
            respond(message, {"vote": "update"})
        else:
            # Read-only optimization: release locks and drop out now.
            self.locks.release_all(tid)
            del self._txns[tid]
            respond(message, {"vote": "read_only"})

    def _sys_commit(self, message: Message):
        tid: TransactionID = message.body["tid"]
        local = self._txns.pop(tid, None)
        if local is not None and local.wrote:
            yield self.ctx.cpu("DS", self.ctx.cpu_costs.ds_commit_write_extra)
        self.locks.release_all(tid)
        respond(message, {"ok": True})

    def _sys_abort(self, message: Message):
        tid: TransactionID = message.body["tid"]
        local = self._txns.pop(tid, None)
        self._aborted_tombstones.add(tid)
        if local is not None and local.buffers:
            # An operation is still mid write cycle (pinned, possibly
            # written, not yet logged).  Its value never reached the log,
            # so the Recovery Manager's undo could not restore it: scrub
            # it back *before* the locks go, or a reader granted after
            # the release would see it.  Restore the first committed
            # pre-image, not this cycle's buffer -- if an earlier cycle
            # of the same transaction logged a write of this object,
            # the buffer holds the transaction's own (undone) value and
            # restoring it would overwrite the RM undo walk's work.
            for oid in list(local.buffers):
                buffered = local.buffers.pop(oid)
                yield from self.node.vm.write_object(
                    oid, local.pre_images.get(oid, buffered))
                self.node.vm.unpin(oid)
        self.locks.release_all(tid)
        respond(message, {"ok": True})

    def _sys_undo_value(self, message: Message):
        """Recovery Manager instruction: reset an object to its old value."""
        oid: ObjectID = message.body["oid"]
        yield from self.node.vm.write_object(oid, message.body["value"])
        respond(message, {"ok": True})

    def _sys_undo_operation(self, message: Message):
        """Recovery Manager instruction: invoke a logged undo operation."""
        yield from self.recovery_applier(message.body["operation"],
                                         message.body["args"])
        respond(message, {"ok": True})

    def _sys_subtxn_commit(self, message: Message):
        """A subtransaction committed: its parent inherits everything."""
        child: TransactionID = message.body["child"]
        parent: TransactionID = message.body["parent"]
        self.locks.transfer(child, parent)
        child_local = self._txns.pop(child, None)
        if child_local is not None:
            parent_local = self._local(parent)
            parent_local.write_set.update(child_local.write_set)
            parent_local.wrote = parent_local.wrote or child_local.wrote
            parent_local.buffers.update(child_local.buffers)
            parent_local.marked.extend(child_local.marked)
            for oid, value in child_local.pre_images.items():
                parent_local.pre_images.setdefault(oid, value)
        respond(message, {"ok": True})
        return
        yield  # pragma: no cover

    # -- recovery support ------------------------------------------------------------------------------------

    def relock_prepared(self, tid: TransactionID,
                        oids: tuple[ObjectID, ...]) -> None:
        """After a crash, re-acquire write locks for an in-doubt transaction
        so its data stays restricted until the coordinator resolves it."""
        local = self._local(tid)
        local.joined = True
        local.wrote = True
        local.prepared = True
        local.write_set.update(oids)
        for oid in oids:
            granted = self.locks.try_lock(tid, oid, WRITE)
            assert granted, "recovery re-locking found a conflicting holder"

    def crash_volatile_state(self) -> None:
        """Testing hook: model the server's share of a node crash."""
        self.locks.clear()
        self._txns.clear()
        self._aborted_tombstones.clear()


# Re-exported for data-server implementations that need only the names.
__all__ = ["DataServerLibrary", "TxnLocal", "READ", "WRITE"]
