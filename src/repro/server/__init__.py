"""The server library (Table 3-1).

Data servers are programmed with the aid of this library, which supplies
shared/exclusive locking, value logging, paging control, address
arithmetic, and a data server's role during two-phase commit
(Section 3.1.1).  Operation logging and type-specific locking -- the
features the paper lists as tested-but-unreleased -- are provided here as
well, completing the programme sketched in its Conclusions.

Every incoming request runs as its own lightweight coroutine; a coroutine
switch happens only when an operation waits (for a lock, a log ack, or a
page fault), which is precisely the monitor-style guarantee the weak queue
server relies on (Section 4.2).
"""

from repro.server.library import DataServerLibrary, TxnLocal

__all__ = ["DataServerLibrary", "TxnLocal"]
