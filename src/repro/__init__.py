"""repro: a reproduction of "Distributed Transactions for Reliable Systems"
(Spector, Daniels, Duchamp, Eppinger, Pausch -- SOSP 1985).

The package implements the TABS prototype -- a general-purpose distributed
transaction facility supporting transactions on user-defined abstract
objects -- over a deterministic discrete-event simulation of its Accent
substrate, together with the paper's five example data servers and the
Section 5 performance-evaluation methodology.

Public entry points:

- :class:`TabsCluster` / :class:`TabsConfig` -- build and drive a cluster.
- :class:`ApplicationLibrary` -- Table 3-2 (BeginTransaction and friends).
- :class:`DataServerLibrary` -- Table 3-1 (the server library).
- :mod:`repro.servers` -- the Section 4 data servers.
- :mod:`repro.perf` -- benchmarks and the microscopic performance model.
- :mod:`repro.chaos` -- deterministic fault injection and torture
  workloads (see docs/CHAOS.md).
"""

from repro.app.library import ApplicationLibrary
from repro.core.cluster import TabsCluster
from repro.core.config import TabsConfig
from repro.errors import (
    LockTimeout,
    QuorumUnavailable,
    SessionBroken,
    TabsError,
    TransactionAborted,
)
from repro.kernel.costs import ACHIEVABLE_1985, MEASURED_1985, Primitive
from repro.server.library import DataServerLibrary
from repro.txn.ids import NULL_TID, TransactionID

__version__ = "1.0.0"

__all__ = [
    "TabsCluster", "TabsConfig", "ApplicationLibrary", "DataServerLibrary",
    "TransactionID", "NULL_TID", "TabsError", "TransactionAborted",
    "LockTimeout", "SessionBroken", "QuorumUnavailable",
    "MEASURED_1985", "ACHIEVABLE_1985", "Primitive", "__version__",
]
