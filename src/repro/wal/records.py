"""Log record types.

Three families of records appear in the common log:

- **recovery records**, written on behalf of data servers: value-logging
  records with old/new values (undo/redo of at most one page), and
  operation-logging records naming the operation and its inverse;
- **transaction-management records**, written by the Transaction Manager
  (prepare/commit/abort); during crash recovery the Recovery Manager passes
  these back to the Transaction Manager (Section 3.2.2);
- **checkpoint records**, listing the pages in volatile storage and the
  status of active transactions (Section 2.1.3).

Records estimate their byte size so the messages that carry them are charged
at the correct primitive (small versus large contiguous message).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.kernel.vm import ObjectID


class RecordKind(enum.Enum):
    VALUE_UPDATE = "value_update"
    OPERATION = "operation"
    TXN_STATUS = "txn_status"
    CHECKPOINT = "checkpoint"
    PAGE_DIRTY = "page_dirty"
    SERVER_PREPARE = "server_prepare"


class TxnStatus(enum.Enum):
    """Transaction states recorded in the log by the Transaction Manager."""

    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"
    #: a subtransaction's chain was folded into its parent's
    MERGED = "merged"
    #: all commit work (including phase-two acknowledgements) is complete;
    #: also marks read-only completion.  Never forced.
    ENDED = "ended"


@dataclass
class LogRecord:
    """Base log record.  ``lsn`` is assigned when appended to the log."""

    tid: object = None
    lsn: int = 0
    #: backward chain: previous record written by the same transaction
    prev_lsn: int = 0
    kind: RecordKind = field(init=False, default=None)  # type: ignore[assignment]

    def size_bytes(self) -> int:
        """Estimated wire size, for message-cost classification."""
        return 64


def _estimate_size(value: object) -> int:
    """Crude but deterministic payload size estimate."""
    if value is None:
        return 4
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 4
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (list, tuple)):
        return 8 + sum(_estimate_size(v) for v in value)
    if isinstance(value, dict):
        return 8 + sum(_estimate_size(k) + _estimate_size(v)
                       for k, v in value.items())
    return 32


@dataclass
class ValueUpdateRecord(LogRecord):
    """Value logging: the old and new values of one object.

    The undo component (``old_value``) resets the object on abort; the redo
    component (``new_value``) replays the update after a crash.  Value
    logging restricts the object representation to at most one page
    (Section 2.1.3), which the server library enforces.
    """

    server: str = ""
    oid: ObjectID | None = None
    old_value: object = None
    new_value: object = None
    #: nonzero on a compensation record: the LSN of the update whose
    #: effect abort processing undid.  The undo write itself is not
    #: WAL-gated, so without this record a checkpoint taken before the
    #: abort would let recovery's backward scan stop short of the only
    #: evidence that the object was rolled back.  The value pass replays
    #: a compensation's ``new_value`` (the restored value) regardless of
    #: the transaction's outcome.
    compensates_lsn: int = 0

    def __post_init__(self) -> None:
        self.kind = RecordKind.VALUE_UPDATE

    def size_bytes(self) -> int:
        # Header + object id + both values.  The paper reports ~1100 bytes
        # as the average large-message size carrying these records.
        return (64 + _estimate_size(self.old_value)
                + _estimate_size(self.new_value))


@dataclass
class OperationRecord(LogRecord):
    """Operation (transition) logging: names an operation and its inverse.

    Operations are redone or undone, as necessary, during recovery
    processing.  ``sequence_number`` (the record's own LSN once appended)
    is compared against the page's sector-header sequence number to decide
    whether the operation's effect reached non-volatile storage.  A single
    record may cover a multi-page object.
    """

    server: str = ""
    operation: str = ""
    redo_args: tuple = ()
    undo_operation: str = ""
    undo_args: tuple = ()
    oids: tuple[ObjectID, ...] = ()
    #: nonzero on a compensation record (poor man's CLR): the LSN of the
    #: record whose effect this one undid during abort processing.  During
    #: crash recovery, compensated records are excluded from the undo pass
    #: and compensation records are always replayed.
    compensates_lsn: int = 0

    def __post_init__(self) -> None:
        self.kind = RecordKind.OPERATION

    def size_bytes(self) -> int:
        return (96 + _estimate_size(list(self.redo_args))
                + _estimate_size(list(self.undo_args)))


@dataclass
class TransactionStatusRecord(LogRecord):
    """Transaction-management record (prepare/commit/abort/merge).

    For a PREPARED record, ``servers`` lists the local data servers that
    joined the transaction and ``coordinator`` names the parent node in the
    commit spanning tree (empty for the root).  A coordinator's COMMITTED
    record also lists the remote ``children`` that voted update so phase
    two can be re-driven after a coordinator crash.  A MERGED record
    documents a subtransaction commit (``merged_into`` is the parent).
    """

    status: TxnStatus = TxnStatus.COMMITTED
    servers: tuple[str, ...] = ()
    coordinator: str = ""
    children: tuple[str, ...] = ()
    merged_into: object = None

    def __post_init__(self) -> None:
        self.kind = RecordKind.TXN_STATUS


@dataclass
class PageDirtyRecord(LogRecord):
    """Written when the kernel reports a recoverable page newly modified.

    "Log records written in response to kernel messages help to identify
    (at recovery time) the pages that were in memory at crash time"
    (Section 3.2.2).
    """

    segment_id: str = ""
    page: int = 0

    def __post_init__(self) -> None:
        self.kind = RecordKind.PAGE_DIRTY

    def size_bytes(self) -> int:
        return 24


@dataclass
class ServerPrepareRecord(LogRecord):
    """A data server's prepare-time record listing its write set.

    Spooled (as a large message) when the server votes update; recovery
    uses it to re-acquire write locks for in-doubt transactions.
    """

    server: str = ""
    oids: tuple[ObjectID, ...] = ()

    def __post_init__(self) -> None:
        self.kind = RecordKind.SERVER_PREPARE

    def size_bytes(self) -> int:
        return 64 + 24 * len(self.oids)


@dataclass
class CheckpointRecord(LogRecord):
    """Periodic system checkpoint (Section 2.1.3).

    Records the dirty pages in volatile storage with their recovery LSNs
    (where redo must start for each page) and the currently active
    transactions with their states, so that crash recovery need only read
    the log written after the checkpoint -- plus as much earlier log as the
    minimum recovery LSN demands.
    """

    #: {(segment_id, page): earliest LSN whose update may not be on disk}
    dirty_pages: dict[tuple[str, int], int] = field(default_factory=dict)
    #: {tid: latest known status string ("active", "prepared", ...)}
    active_transactions: dict[object, str] = field(default_factory=dict)
    #: servers attached to the log at checkpoint time: {name: segment_id}
    attached_servers: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.kind = RecordKind.CHECKPOINT

    def size_bytes(self) -> int:
        return 64 + 16 * len(self.dirty_pages) + 24 * len(
            self.active_transactions)
