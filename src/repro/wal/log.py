"""The buffered write-ahead log.

All log records are written into a volatile buffer until the buffer fills or
until the buffer is forced to non-volatile storage by either the
write-ahead-log or commit protocols (Section 3.2.2).  A crash loses the
volatile buffer; the durable prefix survives in the :class:`LogStore`.

One force operation writes the buffered records as a batch and is charged a
single stable-storage write -- this matches the paper's accounting, where a
one-page log force costs one ``Stable Storage Write`` primitive (79 ms
measured, 32 ms achievable with dedicated logging disks).

*How* force requests map onto physical forces is pluggable (see
:mod:`repro.wal.pipeline`): the default ``paper`` pipeline performs one
physical force per request, exactly as measured; the ``grouped`` pipeline
coalesces requests arriving within a window into a single force (group
commit).  :meth:`WriteAheadLog.force` is the only entry point either way --
callers enqueue a force request and get a completion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import WriteAheadLogError
from repro.kernel.context import SimContext
from repro.kernel.costs import Primitive
from repro.sim import Timeout
from repro.wal.pipeline import GroupCommitPipeline, make_force_pipeline
from repro.wal.records import LogRecord
from repro.wal.store import LogStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import CommitConfig


class WriteAheadLog:
    """LSN assignment + volatile buffering over a :class:`LogStore`."""

    def __init__(self, ctx: SimContext, store: LogStore | None = None,
                 buffer_capacity: int = 512, node_name: str = "",
                 commit: "CommitConfig | None" = None) -> None:
        if buffer_capacity < 1:
            raise WriteAheadLogError("log buffer needs capacity >= 1")
        self.ctx = ctx
        #: which node's metrics/trace track log forces land on
        self.node_name = node_name
        # Explicit None check: an *empty* LogStore is falsy (it has __len__),
        # and discarding the caller's store would sever log durability.
        self.store = LogStore() if store is None else store
        self.buffer_capacity = buffer_capacity
        self._buffer: list[LogRecord] = []
        self._next_lsn: int = max(self.store.last_lsn + 1, 1)
        self.forces = 0
        #: called when an append finds the buffer full; the Recovery Manager
        #: hooks reclamation checks here.
        self.on_buffer_full: Callable[[], None] | None = None
        #: how force requests become physical forces (paper | grouped)
        self.pipeline = make_force_pipeline(self, commit)
        #: model the log disk as a serial resource (one force in flight at
        #: a time); off by default so the paper's overlapping accounting --
        #: and every historical seed -- is preserved exactly
        self.serial_log_device: bool = bool(
            getattr(commit, "serial_log_device", False))
        self._device_free_at: float = 0.0
        # Force-path metrics, resolved once (the registry get-or-create
        # lookup is per-force otherwise; the objects are stable).
        self._forces_counter = None
        self._force_ms_histogram = None

    def device_busy_for(self) -> float:
        """Milliseconds until the serial log device frees (0 when idle).

        Always 0 under the paper's overlapping device model.  The group
        pipeline uses this to keep its batch window open while a force
        is in flight, so the next physical force carries every waiter
        that accumulated during the flight.
        """
        if not self.serial_log_device:
            return 0.0
        return max(0.0, self._device_free_at - self.ctx.now)

    # -- state ---------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """LSN of the newest record (buffered or durable)."""
        return self._next_lsn - 1

    @property
    def flushed_lsn(self) -> int:
        """LSN up to which records are durable."""
        return self.store.last_lsn

    @property
    def buffered_count(self) -> int:
        return len(self._buffer)

    @property
    def group_pipeline(self) -> GroupCommitPipeline | None:
        """The group-commit scheduler, when one is in force."""
        pipeline = self.pipeline
        return pipeline if isinstance(pipeline, GroupCommitPipeline) else None

    # -- writing ---------------------------------------------------------------

    def append(self, record: LogRecord) -> int:
        """Spool a record to the volatile buffer; returns its LSN.

        Spooling is free in the primitive cost model (the paper charges the
        *message* carrying the record and the Recovery Manager CPU, not the
        buffer insert).  An overfull buffer is synchronously drained to the
        store *without* the stable-write cost being skipped -- see
        :meth:`force`, which the caller must drive for durability guarantees.
        """
        record.lsn = self._next_lsn
        self._next_lsn += 1
        self._buffer.append(record)
        if len(self._buffer) >= self.buffer_capacity and self.on_buffer_full:
            self.on_buffer_full()
        return record.lsn

    def force(self, up_to_lsn: int | None = None) -> Iterator:
        """Make records up to ``up_to_lsn`` durable (generator; charges I/O).

        Forces the whole buffer when ``up_to_lsn`` is None.  A no-op (and
        free) when everything requested is already durable.  The request is
        routed through the force pipeline: the paper pipeline forces
        immediately; the grouped pipeline enqueues the request and the
        completion arrives when its batch's single physical force lands.
        """
        target = self.last_lsn if up_to_lsn is None else up_to_lsn
        if target <= self.flushed_lsn or not self._buffer:
            return
        if not any(r.lsn <= target for r in self._buffer):
            return
        yield from self.pipeline.force(target)

    def physical_force(self, target: int) -> Iterator:
        """One physical log force through ``target`` (generator).

        Owns the stable-storage write, the optional serial-device queue,
        and the metrics.  Pipelines call this; everyone else goes through
        :meth:`force`.
        """
        started = self.ctx.now
        span_id = 0
        if self.ctx.tracer is not None:
            span_id = self.ctx.tracer.begin(
                "wal.force", self.node_name, "WAL",
                target_lsn=target, buffered=len(self._buffer))
        if self.serial_log_device:
            # The log disk does one force at a time: queue FIFO behind the
            # in-flight force, then hold the device for the write.
            time_ms = self.ctx.delay_of(Primitive.STABLE_STORAGE_WRITE)
            begin = max(self.ctx.now, self._device_free_at)
            self._device_free_at = begin + time_ms
            yield Timeout(self.ctx.engine, self._device_free_at - self.ctx.now,
                          name=Primitive.STABLE_STORAGE_WRITE.value)
        else:
            yield self.ctx.charge(Primitive.STABLE_STORAGE_WRITE)
        # Recompute after the I/O wait: a concurrent force may have drained
        # part of the buffer while this one slept, and appending an already
        # durable record would corrupt the LSN order.
        to_flush = [r for r in self._buffer
                    if self.flushed_lsn < r.lsn <= target]
        if to_flush:
            self.store.append(to_flush)
            self._buffer = [r for r in self._buffer if r.lsn > target]
            self.forces += 1
        if self._forces_counter is None:
            self._forces_counter = self.ctx.metrics.counter(
                self.node_name, "wal.forces")
            self._force_ms_histogram = self.ctx.metrics.histogram(
                self.node_name, "wal.force_ms")
        self._forces_counter.inc()
        self._force_ms_histogram.observe(self.ctx.now - started)
        if span_id and self.ctx.tracer is not None:
            self.ctx.tracer.end(span_id, flushed=len(to_flush))

    # -- reading (durable prefix only) ----------------------------------------

    def read_forward(self, from_lsn: int = 1) -> list[LogRecord]:
        return self.store.read_forward(from_lsn)

    def read_backward(self, from_lsn: int | None = None) -> list[LogRecord]:
        return self.store.read_backward(from_lsn)

    def record_at(self, lsn: int) -> LogRecord:
        """Find a record by LSN in the buffer or the durable store.

        Abort processing walks a live transaction's backward chain, whose
        newest records are usually still in the volatile buffer.
        """
        for record in self._buffer:
            if record.lsn == lsn:
                return record
        return self.store.record_at(lsn)

    # -- failure model ----------------------------------------------------------

    def crash(self) -> None:
        """Drop the volatile buffer (the durable prefix survives).

        The force pipeline is fenced too: queued group-commit waiters are
        dropped (their processes died with the node) and any scheduled
        window callback or in-flight flush becomes inert.
        """
        self._buffer.clear()
        self.pipeline.crash()

    def tear_inflight_force(self) -> int | None:
        """Power fails mid-force: the oldest buffered record reaches the
        log disks half-written (:meth:`LogStore.append_torn`).

        Returns the torn LSN, or None when the buffer is empty.  The
        record was never durable or acknowledged, so tearing it loses
        nothing a crash would not -- but it leaves real damage on the
        media tail for the next recovery's salvage scan to truncate.
        The caller crashes the node immediately after.
        """
        if not self._buffer:
            return None
        record = min(self._buffer, key=lambda r: r.lsn)
        self.store.append_torn(record)
        return record.lsn

    @classmethod
    def after_restart(cls, ctx: SimContext, store: LogStore,
                      buffer_capacity: int = 512,
                      commit: "CommitConfig | None" = None
                      ) -> "WriteAheadLog":
        """A fresh log over a surviving store, continuing its LSN sequence."""
        return cls(ctx, store=store, buffer_capacity=buffer_capacity,
                   commit=commit)
