"""The non-volatile log store.

An append-only sequence of records with bounded capacity.  On the paper's
Perqs the log lived on the single (non-stable) disk; we likewise treat it as
non-volatile -- it survives node crashes -- and do not model media failure.

Capacity is bounded (in records) so that log reclamation (Section 3.2.2) has
something to do: when the log is close to full, the Recovery Manager runs a
reclamation algorithm that may force pages to disk so old records can be
truncated.
"""

from __future__ import annotations

from repro.errors import LogFull, WriteAheadLogError
from repro.wal.records import LogRecord


class LogStore:
    """Append-only non-volatile record storage with truncation."""

    def __init__(self, capacity_records: int = 100_000) -> None:
        if capacity_records < 1:
            raise WriteAheadLogError("log store needs capacity >= 1")
        self.capacity_records = capacity_records
        self._records: list[LogRecord] = []
        #: LSNs below this have been reclaimed
        self.truncated_before = 1
        #: called with each record at the instant it becomes durable;
        #: used by auditing harnesses that must see records even after
        #: truncation reclaims them (e.g. :mod:`repro.recovery.audit`)
        self.observers: list = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def free_records(self) -> int:
        return self.capacity_records - len(self._records)

    @property
    def last_lsn(self) -> int:
        return self._records[-1].lsn if self._records else 0

    def append(self, records: list[LogRecord]) -> None:
        """Durably append ``records`` (already holding their LSNs)."""
        if len(self._records) + len(records) > self.capacity_records:
            raise LogFull(
                f"log store full ({len(self._records)}/{self.capacity_records} "
                "records); reclamation failed to make room")
        for record in records:
            if record.lsn <= self.last_lsn:
                raise WriteAheadLogError(
                    f"append out of order: lsn {record.lsn} after {self.last_lsn}")
            self._records.append(record)
            for observer in self.observers:
                observer(record)

    def read_forward(self, from_lsn: int = 1) -> list[LogRecord]:
        """All durable records with ``lsn >= from_lsn``, oldest first."""
        if from_lsn < self.truncated_before:
            raise WriteAheadLogError(
                f"lsn {from_lsn} was reclaimed (log starts at "
                f"{self.truncated_before})")
        return [r for r in self._records if r.lsn >= from_lsn]

    def read_backward(self, from_lsn: int | None = None) -> list[LogRecord]:
        """Durable records from ``from_lsn`` (default: the end) backwards."""
        records = self._records if from_lsn is None else [
            r for r in self._records if r.lsn <= from_lsn]
        return list(reversed(records))

    def record_at(self, lsn: int) -> LogRecord:
        for record in self._records:
            if record.lsn == lsn:
                return record
        raise WriteAheadLogError(f"no durable record with lsn {lsn}")

    def truncate_before(self, lsn: int) -> int:
        """Reclaim records with ``lsn`` strictly below the given point.

        Returns the number of records reclaimed.
        """
        keep = [r for r in self._records if r.lsn >= lsn]
        reclaimed = len(self._records) - len(keep)
        self._records = keep
        self.truncated_before = max(self.truncated_before, lsn)
        return reclaimed
