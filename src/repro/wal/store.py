"""The non-volatile, *duplexed* log store.

An append-only sequence of records with bounded capacity.  On the paper's
Perqs the log lived on the single (non-stable) disk; following Gray's
stable-storage recipe we duplex it: every record is encoded to its
checksummed wire frame (:mod:`repro.wal.codec`) and written to **two**
mirrored log disks.  A read that finds one copy failing its CRC repairs it
from the good copy; a record unreadable on *both* copies is real log
damage, survivable only at the unwritten tail (a torn force during power
failure), where :meth:`salvage` truncates the log to its last intact
prefix.

The in-memory record list remains the canonical *content*: records are
mutated after append (abort processing and recovery relink ``prev_lsn``
chains), so the duplexed media bytes are an integrity witness for the
durability path, never decoded back into live objects outside salvage.

Capacity is bounded (in records) so that log reclamation (Section 3.2.2)
has something to do: when the log is close to full, the Recovery Manager
runs a reclamation algorithm that may force pages to disk so old records
can be truncated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LogFull, LogMediaCorruption, WriteAheadLogError
from repro.wal.codec import encode_record, frame_checksum
from repro.wal.records import LogRecord


class _MediaEntry:
    """One record's image on one log disk: frame bytes + stored CRC.

    ``verified`` caches the CRC check so the hot path (every log read)
    costs a flag test; fault injection clears it.
    """

    __slots__ = ("payload", "checksum", "verified")

    def __init__(self, payload: bytes, checksum: int,
                 verified: bool) -> None:
        self.payload = payload
        self.checksum = checksum
        self.verified = verified

    @property
    def ok(self) -> bool:
        if not self.verified:
            self.verified = frame_checksum(self.payload) == self.checksum
        return self.verified


@dataclass
class SalvageReport:
    """What a salvage scan found and did."""

    #: single-copy failures repaired from the mirror
    repairs: int = 0
    #: first LSN unreadable on both copies (None: whole log intact)
    truncated_from_lsn: int | None = None
    #: durable records dropped by the tail truncation
    dropped_records: int = 0

    @property
    def truncated(self) -> bool:
        return self.truncated_from_lsn is not None


class LogStore:
    """Append-only non-volatile record storage, duplexed, with truncation."""

    def __init__(self, capacity_records: int = 100_000) -> None:
        if capacity_records < 1:
            raise WriteAheadLogError("log store needs capacity >= 1")
        self.capacity_records = capacity_records
        self._records: list[LogRecord] = []
        #: the two mirrored log disks: lsn -> _MediaEntry, per copy
        self._media: tuple[dict[int, _MediaEntry], dict[int, _MediaEntry]] \
            = ({}, {})
        #: LSNs whose media may be damaged (fault injection adds; reads
        #: and salvage drain) -- keeps the clean path O(1)
        self._suspect: set[int] = set()
        #: LSNs below this have been reclaimed
        self.truncated_before = 1
        #: lifetime single-copy repairs (duplexed read path + salvage)
        self.duplex_repairs = 0
        #: lifetime salvage tail truncations
        self.salvage_truncations = 0
        #: called with each record at the instant it becomes durable;
        #: used by auditing harnesses that must see records even after
        #: truncation reclaims them (e.g. :mod:`repro.recovery.audit`)
        self.observers: list = []
        #: called with a metrics key ("wal.duplex_repairs",
        #: "wal.salvage_truncations") on each media event; the Recovery
        #: Manager binds this to the node's metrics registry
        self.media_observer = None

    def __len__(self) -> int:
        return len(self._records)

    @property
    def free_records(self) -> int:
        return self.capacity_records - len(self._records)

    @property
    def last_lsn(self) -> int:
        return self._records[-1].lsn if self._records else 0

    # -- media plumbing ---------------------------------------------------------

    def _media_event(self, kind: str, count: int = 1) -> None:
        if self.media_observer is not None:
            self.media_observer(kind, count)

    def _write_media(self, record: LogRecord) -> None:
        frame = encode_record(record)
        checksum = frame_checksum(frame)
        for copy in self._media:
            copy[record.lsn] = _MediaEntry(frame, checksum, verified=True)

    def _repair_suspects(self) -> None:
        """Duplexed read path: re-verify flagged LSNs, repair from the
        mirror, escalate when both copies of a durable record are bad.

        Torn frames beyond the durable tail (never acknowledged) stay
        flagged for :meth:`salvage`; they are not an error to read past.
        """
        if not self._suspect:
            return
        durable = {record.lsn for record in self._records}
        remaining: set[int] = set()
        for lsn in sorted(self._suspect):
            entries = [copy.get(lsn) for copy in self._media]
            states = [entry.ok if entry is not None else False
                      for entry in entries]
            if all(states):
                continue
            if not any(states):
                if lsn in durable:
                    raise LogMediaCorruption(
                        lsn, "both log-disk copies failed their checksums; "
                             "run salvage (crash recovery) to truncate the "
                             "tail or accept log loss")
                remaining.add(lsn)  # torn tail: salvage truncates it
                continue
            good = entries[states.index(True)]
            bad_index = states.index(False)
            self._media[bad_index][lsn] = _MediaEntry(
                good.payload, good.checksum, verified=True)
            self.duplex_repairs += 1
            self._media_event("wal.duplex_repairs")
        self._suspect = remaining

    # -- writing ----------------------------------------------------------------

    def append(self, records: list[LogRecord]) -> None:
        """Durably append ``records`` (already holding their LSNs).

        Every record's checksummed frame is written to both log disks.
        """
        if len(self._records) + len(records) > self.capacity_records:
            raise LogFull(
                f"log store full ({len(self._records)}/{self.capacity_records} "
                "records); reclamation failed to make room")
        for record in records:
            if record.lsn <= self.last_lsn:
                raise WriteAheadLogError(
                    f"append out of order: lsn {record.lsn} after {self.last_lsn}")
            self._records.append(record)
            self._write_media(record)
            for observer in self.observers:
                observer(record)

    def append_torn(self, record: LogRecord) -> None:
        """A force caught by power failure: the record's frame reaches both
        log disks half-written, under the full frame's checksum.

        The record does **not** become durable -- it joins neither the
        record list nor the observer stream (it was never acknowledged to
        anyone).  The next salvage scan finds the torn frames unreadable
        on both copies and truncates the tail there, exactly as a real
        log device recovers from a torn force.
        """
        frame = encode_record(record)
        checksum = frame_checksum(frame)
        torn = frame[:max(1, len(frame) // 2)]
        for copy in self._media:
            copy[record.lsn] = _MediaEntry(torn, checksum, verified=False)
        self._suspect.add(record.lsn)

    def rot_media(self, lsn: int, copy: int = 0,
                  both_copies: bool = False) -> bool:
        """Bit rot on the log disk(s): flip a byte of the stored frame.

        Returns False when no media exists for the LSN.  Rotting a single
        copy is survivable (duplex repair); rotting both copies of a
        durable record is real log loss -- chaos plans only do that to
        the unacknowledged tail.
        """
        targets = range(2) if both_copies else (copy,)
        hit = False
        for index in targets:
            entry = self._media[index].get(lsn)
            if entry is None:
                continue
            payload = bytearray(entry.payload)
            payload[len(payload) // 2] ^= 0xFF
            entry.payload = bytes(payload)
            entry.verified = False
            hit = True
        if hit:
            self._suspect.add(lsn)
        return hit

    # -- salvage ----------------------------------------------------------------

    def salvage(self) -> SalvageReport:
        """Scan the duplexed media; repair single-copy damage, truncate the
        tail at the first record unreadable on both copies.

        Run at the start of crash recovery, before any record is trusted.
        Torn tail frames (never acknowledged) are dropped silently; a
        both-copies failure *below* the durable tail drops acknowledged
        records -- the truncation is still taken (the log must end at an
        intact prefix) and the loss surfaces in the recovery audits.
        """
        report = SalvageReport()
        all_lsns = sorted(set(self._media[0]) | set(self._media[1]))
        cut = None
        for lsn in all_lsns:
            entries = [copy.get(lsn) for copy in self._media]
            states = [entry.ok if entry is not None else False
                      for entry in entries]
            if all(states):
                continue
            if any(states):
                good = entries[states.index(True)]
                bad_index = states.index(False)
                self._media[bad_index][lsn] = _MediaEntry(
                    good.payload, good.checksum, verified=True)
                report.repairs += 1
                self.duplex_repairs += 1
                self._media_event("wal.duplex_repairs")
                continue
            cut = lsn
            break
        if cut is not None:
            keep = [r for r in self._records if r.lsn < cut]
            report.truncated_from_lsn = cut
            report.dropped_records = len(self._records) - len(keep)
            self._records = keep
            for copy in self._media:
                for lsn in [lsn for lsn in copy if lsn >= cut]:
                    del copy[lsn]
            self.salvage_truncations += 1
            self._media_event("wal.salvage_truncations")
        self._suspect.clear()
        return report

    def media_intact(self) -> bool:
        """True iff every record's media verifies on both copies (audits)."""
        return all(
            (entry := copy.get(record.lsn)) is not None and entry.ok
            for record in self._records
            for copy in self._media)

    # -- reading (durable prefix only) ------------------------------------------

    def read_forward(self, from_lsn: int = 1) -> list[LogRecord]:
        """All durable records with ``lsn >= from_lsn``, oldest first."""
        if from_lsn < self.truncated_before:
            raise WriteAheadLogError(
                f"lsn {from_lsn} was reclaimed (log starts at "
                f"{self.truncated_before})")
        self._repair_suspects()
        return [r for r in self._records if r.lsn >= from_lsn]

    def read_backward(self, from_lsn: int | None = None) -> list[LogRecord]:
        """Durable records from ``from_lsn`` (default: the end) backwards."""
        self._repair_suspects()
        records = self._records if from_lsn is None else [
            r for r in self._records if r.lsn <= from_lsn]
        return list(reversed(records))

    def record_at(self, lsn: int) -> LogRecord:
        self._repair_suspects()
        for record in self._records:
            if record.lsn == lsn:
                return record
        raise WriteAheadLogError(f"no durable record with lsn {lsn}")

    def truncate_before(self, lsn: int) -> int:
        """Reclaim records with ``lsn`` strictly below the given point.

        Returns the number of records reclaimed.
        """
        keep = [r for r in self._records if r.lsn >= lsn]
        reclaimed = len(self._records) - len(keep)
        self._records = keep
        for copy in self._media:
            for old in [old for old in copy if old < lsn]:
                del copy[old]
        self._suspect = {s for s in self._suspect if s >= lsn}
        self.truncated_before = max(self.truncated_before, lsn)
        return reclaimed
