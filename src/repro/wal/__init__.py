"""Write-ahead logging substrate.

Recovery in TABS is based on write-ahead logging over a three-tiered storage
model (Section 2.1.3): log records are spooled to a *volatile* buffer, and
must be *forced* to non-volatile storage before a transaction commits and
before the volatile representation of an object is copied to non-volatile
storage.  All objects on a node share one common log.

- :mod:`repro.wal.records` -- the record types (value undo/redo, operation,
  transaction management, checkpoint),
- :mod:`repro.wal.codec` -- the binary wire format for records,
- :mod:`repro.wal.store` -- the append-only non-volatile record store,
- :mod:`repro.wal.log` -- the buffered write-ahead log with force semantics.
"""

from repro.wal.codec import (
    decode_record,
    decode_records,
    encode_record,
    encode_records,
)
from repro.wal.log import WriteAheadLog
from repro.wal.records import (
    CheckpointRecord,
    LogRecord,
    OperationRecord,
    PageDirtyRecord,
    RecordKind,
    ServerPrepareRecord,
    TransactionStatusRecord,
    TxnStatus,
    ValueUpdateRecord,
)
from repro.wal.store import LogStore

__all__ = [
    "WriteAheadLog", "LogStore", "LogRecord", "RecordKind",
    "ValueUpdateRecord", "OperationRecord", "TransactionStatusRecord",
    "CheckpointRecord", "PageDirtyRecord", "ServerPrepareRecord", "TxnStatus",
    "encode_record", "decode_record", "encode_records", "decode_records",
]
