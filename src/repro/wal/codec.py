"""A binary codec for log records.

The simulation keeps records as Python objects, but the paper's log is a
byte-addressed disk structure; this module provides the serialization a
real log device would use, so the record formats have a well-defined wire
shape and the torture suite can round-trip every record type
(``decode(encode(r)) == r``) and prove that truncated or corrupt buffers
are rejected rather than misread.

Format: every record is ``[u32 body-length][u8 kind tag][body]``.  The
body carries the common header (tid, lsn, prev_lsn) followed by the
kind-specific fields, each encoded with a one-byte type tag so decoding
is self-describing.  Integers are length-prefixed big-endian
two's-complement (Python ints are unbounded); containers are count-
prefixed.  All multi-byte scalars are big-endian.

Stable storage adds a checksum layer: the duplexed log
(:mod:`repro.wal.store`) persists each record as a *checksummed frame* --
the framed record followed by a CRC-32 of it -- so torn or rotted log
sectors are detected rather than misread.  CRC-32 detects every
single-bit error, which the property suite proves exhaustively.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import WalCodecError
from repro.kernel.vm import ObjectID
from repro.txn.ids import TransactionID
from repro.wal.records import (
    CheckpointRecord,
    LogRecord,
    OperationRecord,
    PageDirtyRecord,
    RecordKind,
    ServerPrepareRecord,
    TransactionStatusRecord,
    TxnStatus,
    ValueUpdateRecord,
)

_KIND_TAGS = {
    RecordKind.VALUE_UPDATE: 1,
    RecordKind.OPERATION: 2,
    RecordKind.TXN_STATUS: 3,
    RecordKind.CHECKPOINT: 4,
    RecordKind.PAGE_DIRTY: 5,
    RecordKind.SERVER_PREPARE: 6,
}
_KIND_BY_TAG = {tag: kind for kind, tag in _KIND_TAGS.items()}

#: value type tags
_T_NONE, _T_FALSE, _T_TRUE, _T_INT, _T_FLOAT = 0, 1, 2, 3, 4
_T_STR, _T_BYTES, _T_LIST, _T_TUPLE, _T_DICT = 5, 6, 7, 8, 9
_T_TID, _T_OID = 10, 11


# -- value encoding ---------------------------------------------------------------


def _encode_into(out: bytearray, value) -> None:
    """Append ``value``'s encoding to ``out``.

    Accumulator style: the WAL media path encodes every durable record,
    so the encoder appends into one growing buffer instead of allocating
    an intermediate ``bytes`` per nested value and joining them.
    """
    if value is None:
        out.append(_T_NONE)
        return
    if value is False:
        out.append(_T_FALSE)
        return
    if value is True:
        out.append(_T_TRUE)
        return
    if isinstance(value, int):
        length = max(1, (value.bit_length() + 8) // 8)  # room for the sign
        out.append(_T_INT)
        out.append(length)
        out += value.to_bytes(length, "big", signed=True)
        return
    if isinstance(value, float):
        out.append(_T_FLOAT)
        out += struct.pack(">d", value)
        return
    if isinstance(value, str):
        data = value.encode()
        out.append(_T_STR)
        out += struct.pack(">I", len(data))
        out += data
        return
    if isinstance(value, bytes):
        out.append(_T_BYTES)
        out += struct.pack(">I", len(value))
        out += value
        return
    if isinstance(value, TransactionID):
        out.append(_T_TID)
        _encode_into(out, value.node)
        _encode_into(out, value.seq)
        _encode_into(out, list(value.path))
        return
    if isinstance(value, ObjectID):
        out.append(_T_OID)
        _encode_into(out, value.segment_id)
        _encode_into(out, value.offset)
        _encode_into(out, value.length)
        return
    if isinstance(value, (list, tuple)):
        out.append(_T_LIST if isinstance(value, list) else _T_TUPLE)
        out += struct.pack(">I", len(value))
        for item in value:
            _encode_into(out, item)
        return
    if isinstance(value, dict):
        out.append(_T_DICT)
        out += struct.pack(">I", len(value))
        for key, item in value.items():
            _encode_into(out, key)
            _encode_into(out, item)
        return
    raise WalCodecError(f"cannot encode {type(value).__name__}: {value!r}")


def _encode_value(value) -> bytes:
    """One value's encoding as standalone bytes (non-WAL callers)."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


class _Reader:
    """A bounds-checked cursor over an encoded buffer."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise WalCodecError(
                f"truncated record: wanted {count} bytes at offset "
                f"{self.pos}, buffer holds {len(self.data)}")
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.data)


def _decode_value(reader: _Reader):
    tag = reader.u8()
    if tag == _T_NONE:
        return None
    if tag == _T_FALSE:
        return False
    if tag == _T_TRUE:
        return True
    if tag == _T_INT:
        return int.from_bytes(reader.take(reader.u8()), "big", signed=True)
    if tag == _T_FLOAT:
        return struct.unpack(">d", reader.take(8))[0]
    if tag == _T_STR:
        return reader.take(reader.u32()).decode()
    if tag == _T_BYTES:
        return reader.take(reader.u32())
    if tag == _T_TID:
        node = _decode_value(reader)
        seq = _decode_value(reader)
        path = _decode_value(reader)
        return TransactionID(node, seq, tuple(path))
    if tag == _T_OID:
        return ObjectID(_decode_value(reader), _decode_value(reader),
                        _decode_value(reader))
    if tag in (_T_LIST, _T_TUPLE):
        items = [_decode_value(reader) for _ in range(reader.u32())]
        return items if tag == _T_LIST else tuple(items)
    if tag == _T_DICT:
        count = reader.u32()
        result = {}
        for _ in range(count):
            key = _decode_value(reader)
            result[key] = _decode_value(reader)
        return result
    raise WalCodecError(f"unknown value tag {tag}")


# -- record field tables ------------------------------------------------------------

# Per kind: the dataclass and its kind-specific fields, in wire order.
# TxnStatus is carried as its value string; tuple fields round-trip through
# the tuple tag, dict keys through the generic value encoding.
_FIELDS = {
    RecordKind.VALUE_UPDATE: (
        ValueUpdateRecord, ("server", "oid", "old_value", "new_value",
                            "compensates_lsn")),
    RecordKind.OPERATION: (
        OperationRecord, ("server", "operation", "redo_args",
                          "undo_operation", "undo_args", "oids",
                          "compensates_lsn")),
    RecordKind.TXN_STATUS: (
        TransactionStatusRecord, ("servers", "coordinator", "children",
                                  "merged_into")),
    RecordKind.CHECKPOINT: (
        CheckpointRecord, ("dirty_pages", "active_transactions",
                           "attached_servers")),
    RecordKind.PAGE_DIRTY: (PageDirtyRecord, ("segment_id", "page")),
    RecordKind.SERVER_PREPARE: (ServerPrepareRecord, ("server", "oids")),
}


def encode_record(record: LogRecord) -> bytes:
    """Serialize one record to its framed wire form."""
    try:
        tag = _KIND_TAGS[record.kind]
    except KeyError:
        raise WalCodecError(
            f"cannot encode record kind {record.kind!r}") from None
    body = bytearray()
    _encode_into(body, record.tid)
    _encode_into(body, record.lsn)
    _encode_into(body, record.prev_lsn)
    if record.kind is RecordKind.TXN_STATUS:
        _encode_into(body, record.status.value)
    for name in _FIELDS[record.kind][1]:
        _encode_into(body, getattr(record, name))
    return struct.pack(">I", len(body) + 1) + bytes([tag]) + bytes(body)


def decode_record(data: bytes) -> LogRecord:
    """Decode one framed record; rejects truncated or trailing bytes."""
    reader = _Reader(data)
    length = reader.u32()
    if length < 1:
        raise WalCodecError("record frame with empty body")
    if 4 + length > len(data):
        raise WalCodecError(
            f"truncated record: frame says {length} bytes, buffer holds "
            f"{len(data) - 4} after the header")
    kind = _KIND_BY_TAG.get(reader.u8())
    if kind is None:
        raise WalCodecError("unknown record kind tag")
    tid = _decode_value(reader)
    lsn = _decode_value(reader)
    prev_lsn = _decode_value(reader)
    cls, names = _FIELDS[kind]
    fields = {}
    if kind is RecordKind.TXN_STATUS:
        fields["status"] = TxnStatus(_decode_value(reader))
    for name in names:
        fields[name] = _decode_value(reader)
    if not reader.exhausted:
        raise WalCodecError(
            f"{len(data) - reader.pos} trailing bytes after record")
    record = cls(tid=tid, lsn=lsn, prev_lsn=prev_lsn, **fields)
    return record


def encode_records(records: list[LogRecord]) -> bytes:
    """Concatenate framed records (the on-disk log image)."""
    return b"".join(encode_record(record) for record in records)


def decode_records(data: bytes) -> list[LogRecord]:
    """Split a concatenation of framed records back apart."""
    records = []
    pos = 0
    while pos < len(data):
        if pos + 4 > len(data):
            raise WalCodecError("truncated frame header at end of buffer")
        (length,) = struct.unpack(">I", data[pos:pos + 4])
        end = pos + 4 + length
        if end > len(data):
            raise WalCodecError(
                f"truncated record at offset {pos}: frame says {length} "
                f"bytes, only {len(data) - pos - 4} remain")
        records.append(decode_record(data[pos:end]))
        pos = end
    return records


# -- checksummed frames (stable-storage layer) ----------------------------------

#: trailing CRC-32 width of a checksummed frame
CHECKSUM_BYTES = 4


def frame_checksum(frame: bytes) -> int:
    """CRC-32 over an encoded record frame (detects all single-bit errors)."""
    return zlib.crc32(frame) & 0xFFFF_FFFF


def encode_record_checksummed(record: LogRecord) -> bytes:
    """Serialize one record with its trailing CRC-32 (the log-disk form)."""
    frame = encode_record(record)
    return frame + struct.pack(">I", frame_checksum(frame))


def verify_checksummed_frame(data: bytes) -> bool:
    """True iff the trailing CRC-32 matches the frame it covers."""
    if len(data) < CHECKSUM_BYTES + 5:  # u32 length + kind tag minimum
        return False
    frame, stored = data[:-CHECKSUM_BYTES], data[-CHECKSUM_BYTES:]
    return frame_checksum(frame) == struct.unpack(">I", stored)[0]


def decode_record_checksummed(data: bytes) -> LogRecord:
    """Verify the CRC-32, then decode; corrupt frames never decode."""
    if not verify_checksummed_frame(data):
        raise WalCodecError(
            "checksummed frame failed CRC-32 verification (corrupt or "
            "truncated log sector)")
    return decode_record(data[:-CHECKSUM_BYTES])
