"""Pluggable log-force pipelines: per-record forces versus group commit.

The paper's commit path forces every prepare and commit record
individually -- one ``Stable Storage Write`` per record, exactly as
Tables 5-2/5-3 account for it.  :class:`PaperForcePipeline` preserves that
behaviour byte for byte.

:class:`GroupCommitPipeline` is the classic group-commit lever (Gray &
Levine, "Thousands of DebitCredit Transactions-Per-Second"): a force
request enqueues and waits; all requests that arrive within a configurable
window -- or up to a batch-size cap -- are coalesced into one physical log
force that completes every waiter at once.  Under concurrent commit
traffic this drops forces-per-commit below 1.0, which is what turns a
log-force-bound system into a throughput machine.

Both pipelines drive :meth:`repro.wal.log.WriteAheadLog.physical_force`,
which owns the storage write, the (optional) serial log-device queue, and
the paper's cost accounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro.sim import Event, Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import CommitConfig
    from repro.wal.log import WriteAheadLog

#: ``(node_name, batch_size, target_lsn) -> None`` -- observers invoked at
#: the start of every physical group force (chaos crash triggers hook here).
GroupForceHook = Callable[[str, int, int], None]


class PaperForcePipeline:
    """One physical force per request -- the system as measured."""

    grouped = False

    def __init__(self, wal: "WriteAheadLog") -> None:
        self.wal = wal

    def force(self, target: int) -> Iterator:
        yield from self.wal.physical_force(target)

    def crash(self) -> None:
        """Nothing queued outside the WAL's own volatile buffer."""


class GroupCommitPipeline:
    """Coalesce force requests inside a window into one physical force.

    A request opens an accumulation window (``window_ms``); every request
    arriving before it expires joins the batch.  The batch is forced early
    when ``batch_cap`` requests are pending.  One stable-storage write
    completes all waiters at once.

    Over a *serial* log device the window is additionally device-aware:
    if a physical force is in flight when the window expires, the batch
    keeps accumulating until the device frees.  Without this, a backlogged
    device degenerates group commit into a FIFO of near-singleton batches
    -- every request that arrived during the 79 ms flight would force
    separately -- which is precisely the regime group commit exists for.

    Crash semantics: a node crash inside the window (or during the
    physical write) loses the volatile log buffer, so *none* of the
    batched records become durable and no waiter is completed -- the
    batched transactions atomically all abort at recovery.  The epoch
    guard makes the scheduled window callback and any in-flight flush
    process inert after a crash.
    """

    grouped = True

    def __init__(self, wal: "WriteAheadLog", window_ms: float = 2.0,
                 batch_cap: int = 64) -> None:
        self.wal = wal
        self.ctx = wal.ctx
        self.window_ms = window_ms
        self.batch_cap = batch_cap
        self._pending: list[tuple[int, Event]] = []
        self._window_open = False
        self._epoch = 0
        #: physical group forces performed
        self.batches = 0
        #: waiters completed across all batches
        self.coalesced = 0
        self.on_group_force: list[GroupForceHook] = []

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def force(self, target: int) -> Iterator:
        """Enqueue a force request and wait for its batch (generator)."""
        waiter = Event(self.ctx.engine,
                       name=f"wal.group_force_wait:{self.wal.node_name}")
        self._pending.append((target, waiter))
        if len(self._pending) >= self.batch_cap:
            self._begin_flush()
        elif not self._window_open:
            self._window_open = True
            epoch = self._epoch
            self.ctx.engine.schedule(
                self.window_ms, lambda: self._window_expired(epoch))
        yield waiter

    def _window_expired(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # the node crashed; a new incarnation owns the log now
        if not self._pending:
            self._window_open = False
            return
        busy_for = self.wal.device_busy_for()
        if busy_for > 0.0:
            # A force is occupying the serial log device: flushing now
            # would just queue a tiny batch behind it.  Hold the window
            # open until the device frees -- the classic group-commit
            # move -- so one physical force completes every waiter that
            # accumulated during the in-flight write.
            self.ctx.engine.schedule(
                busy_for, lambda: self._window_expired(epoch))
            return
        self._window_open = False
        self._begin_flush()

    def _begin_flush(self) -> None:
        batch, self._pending = self._pending, []
        self._window_open = False
        Process(self.ctx.engine, self._flush(batch),
                name=f"wal:group-force:{self.wal.node_name}")

    def _flush(self, batch: list[tuple[int, Event]]) -> Iterator:
        epoch = self._epoch
        target = max(lsn for lsn, _ in batch)
        self.batches += 1
        self.ctx.metrics.histogram(
            self.wal.node_name, "wal.group_force_batch").observe(len(batch))
        span_id = 0
        if self.ctx.tracer is not None:
            span_id = self.ctx.tracer.begin(
                "wal.group_force", self.wal.node_name, "WAL",
                target_lsn=target, batch=len(batch))
        for hook in list(self.on_group_force):
            hook(self.wal.node_name, len(batch), target)
        if epoch != self._epoch:
            # A hook crashed the node inside the window: nothing was
            # forced, no waiter completes, the batch atomically aborts.
            return
        yield from self.wal.physical_force(target)
        if span_id and self.ctx.tracer is not None:
            self.ctx.tracer.end(span_id, waiters=len(batch))
        if epoch != self._epoch:
            # Crashed during the stable write: the volatile buffer is gone,
            # nothing landed (physical_force re-reads the buffer after the
            # I/O wait), and the waiting processes died with the node.
            return
        self.coalesced += len(batch)
        for _, waiter in batch:
            waiter.succeed()

    def crash(self) -> None:
        """Drop the queue; fence the window callback and in-flight flushes."""
        self._epoch += 1
        self._pending = []
        self._window_open = False


def make_force_pipeline(wal: "WriteAheadLog",
                        commit: "CommitConfig | None"
                        ) -> PaperForcePipeline | GroupCommitPipeline:
    """Build the pipeline a commit config asks for.

    ``commit`` is duck-typed (any object with the :class:`CommitConfig`
    attributes, or None for the paper pipeline) so the WAL layer does not
    import the cluster configuration package.
    """
    if commit is not None and getattr(commit, "pipeline", "paper") == "grouped":
        return GroupCommitPipeline(
            wal, window_ms=getattr(commit, "force_window_ms", 2.0),
            batch_cap=getattr(commit, "force_batch_cap", 64))
    return PaperForcePipeline(wal)
