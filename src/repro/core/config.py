"""Cluster configuration.

A :class:`TabsConfig` fixes the cost model (which primitive-time profile,
which per-component CPU calibration), the architecture variant (separate
processes as measured, or the Section 5.3 merged projection), and the
capacity knobs of the substrate.  The performance harness sweeps these to
regenerate Table 5-4's four columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.kernel.costs import (
    ACHIEVABLE_1985,
    MEASURED_1985,
    CostProfile,
    CpuCosts,
)


@dataclass(frozen=True)
class CommitConfig:
    """The commit/logging pipeline in force on every node.

    ``pipeline="paper"`` (the default) reproduces the system exactly as
    measured: every prepare and commit record is forced individually and
    every 2PC vote/ack travels as its own datagram, so Tables 5-1 through
    5-5 and all historical chaos seeds replay byte-identically.

    ``pipeline="grouped"`` is the Section 7 scale-out direction (Gray's
    group commit): log forces arriving within ``force_window_ms`` of each
    other -- or up to ``force_batch_cap`` of them -- are coalesced into a
    single physical log force that completes all waiters at once, and the
    Transaction Manager batches 2PC datagrams destined for the same node
    (acks piggyback on the next outbound datagram at the same instant).

    ``serial_log_device`` models the log disk as a serial resource (one
    force in flight at a time, FIFO).  It is off by default because the
    paper's no-load latency accounting lets concurrent forces overlap
    freely; the throughput harness turns it on for both pipelines so the
    comparison is between equal device models.
    """

    #: "paper" | "grouped"
    pipeline: str = "paper"
    #: group-commit accumulation window in simulated milliseconds
    force_window_ms: float = 2.0
    #: force immediately once this many waiters are pending
    force_batch_cap: int = 64
    #: batch same-target 2PC datagrams issued at the same instant
    coalesce_datagrams: bool = True
    #: one physical log force in flight at a time (FIFO device queue)
    serial_log_device: bool = False

    def __post_init__(self) -> None:
        if self.pipeline not in ("paper", "grouped"):
            raise ValueError(f"unknown commit pipeline {self.pipeline!r}")
        if self.force_window_ms < 0:
            raise ValueError("force_window_ms must be >= 0")
        if self.force_batch_cap < 1:
            raise ValueError("force_batch_cap must be >= 1")

    @property
    def grouped_pipeline(self) -> bool:
        return self.pipeline == "grouped"

    @classmethod
    def paper(cls) -> "CommitConfig":
        """Byte-identical to the system as measured."""
        return cls()

    @classmethod
    def grouped(cls, force_window_ms: float = 2.0,
                force_batch_cap: int = 64) -> "CommitConfig":
        """Group commit + datagram coalescing over a serial log device."""
        return cls(pipeline="grouped", force_window_ms=force_window_ms,
                   force_batch_cap=force_batch_cap,
                   serial_log_device=True)


@dataclass(frozen=True)
class TabsConfig:
    """Everything needed to build a cluster."""

    profile: CostProfile = MEASURED_1985
    cpu_costs: CpuCosts = field(default_factory=CpuCosts)
    #: Section 5.3 "Improved TABS Architecture": TM/RM merged into the kernel
    merged_architecture: bool = False
    #: page frames of physical memory per node ("more than three times" less
    #: than the 5000-page benchmark array on a real Perq)
    vm_capacity_pages: int = 1500
    log_capacity_records: int = 100_000
    log_buffer_records: int = 512
    lock_timeout_ms: float = 10_000.0
    datagram_loss_rate: float = 0.0
    #: proactive failure detection (Section 3.2: the Communication Manager
    #: reports node failures).  Probes are uncharged background daemons, so
    #: enabling this does not perturb the paper's cost accounting.
    failure_detection: bool = True
    probe_interval_ms: float = 250.0
    suspicion_timeout_ms: float = 1500.0
    #: TM-driven checkpoint cadence (Section 3.2.2), in commits; None = off
    checkpoint_every_commits: int | None = None
    #: commit/logging pipeline (group commit, datagram coalescing); the
    #: default reproduces the paper's per-record forces exactly
    commit: CommitConfig = field(default_factory=CommitConfig)
    seed: int = 1985

    @classmethod
    def measured(cls) -> "TabsConfig":
        """The system as measured in Table 5-4's 'Measured Elapsed Time'."""
        return cls()

    @classmethod
    def improved_architecture(cls) -> "TabsConfig":
        """Table 5-4's 'Improved TABS Architecture' column."""
        return cls(merged_architecture=True)

    @classmethod
    def new_primitives(cls) -> "TabsConfig":
        """Table 5-4's 'New Primitive Times' column: the improved
        architecture running on Table 5-5's achievable primitives."""
        return cls(merged_architecture=True, profile=ACHIEVABLE_1985)

    def with_(self, **changes) -> "TabsConfig":
        """A modified copy (ablation sweeps)."""
        return replace(self, **changes)
