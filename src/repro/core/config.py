"""Cluster configuration.

A :class:`TabsConfig` fixes the cost model (which primitive-time profile,
which per-component CPU calibration), the architecture variant (separate
processes as measured, or the Section 5.3 merged projection), and the
capacity knobs of the substrate.  The performance harness sweeps these to
regenerate Table 5-4's four columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.kernel.costs import (
    ACHIEVABLE_1985,
    MEASURED_1985,
    CostProfile,
    CpuCosts,
)


@dataclass(frozen=True)
class TabsConfig:
    """Everything needed to build a cluster."""

    profile: CostProfile = MEASURED_1985
    cpu_costs: CpuCosts = field(default_factory=CpuCosts)
    #: Section 5.3 "Improved TABS Architecture": TM/RM merged into the kernel
    merged_architecture: bool = False
    #: page frames of physical memory per node ("more than three times" less
    #: than the 5000-page benchmark array on a real Perq)
    vm_capacity_pages: int = 1500
    log_capacity_records: int = 100_000
    log_buffer_records: int = 512
    lock_timeout_ms: float = 10_000.0
    datagram_loss_rate: float = 0.0
    #: proactive failure detection (Section 3.2: the Communication Manager
    #: reports node failures).  Probes are uncharged background daemons, so
    #: enabling this does not perturb the paper's cost accounting.
    failure_detection: bool = True
    probe_interval_ms: float = 250.0
    suspicion_timeout_ms: float = 1500.0
    #: TM-driven checkpoint cadence (Section 3.2.2), in commits; None = off
    checkpoint_every_commits: int | None = None
    seed: int = 1985

    @classmethod
    def measured(cls) -> "TabsConfig":
        """The system as measured in Table 5-4's 'Measured Elapsed Time'."""
        return cls()

    @classmethod
    def improved_architecture(cls) -> "TabsConfig":
        """Table 5-4's 'Improved TABS Architecture' column."""
        return cls(merged_architecture=True)

    @classmethod
    def new_primitives(cls) -> "TabsConfig":
        """Table 5-4's 'New Primitive Times' column: the improved
        architecture running on Table 5-5's achievable primitives."""
        return cls(merged_architecture=True, profile=ACHIEVABLE_1985)

    def with_(self, **changes) -> "TabsConfig":
        """A modified copy (ablation sweeps)."""
        return replace(self, **changes)
