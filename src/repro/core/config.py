"""Cluster configuration.

A :class:`TabsConfig` fixes the cost model (which primitive-time profile,
which per-component CPU calibration), the architecture variant (separate
processes as measured, or the Section 5.3 merged projection), and the
capacity knobs of the substrate.  The performance harness sweeps these to
regenerate Table 5-4's four columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.kernel.costs import (
    ACHIEVABLE_1985,
    MEASURED_1985,
    CostProfile,
    CpuCosts,
)
from repro.sim.engine import EngineConfig


@dataclass(frozen=True)
class CommitConfig:
    """The commit/logging pipeline in force on every node.

    ``pipeline="paper"`` (the default) reproduces the system exactly as
    measured: every prepare and commit record is forced individually and
    every 2PC vote/ack travels as its own datagram, so Tables 5-1 through
    5-5 and all historical chaos seeds replay byte-identically.

    ``pipeline="grouped"`` is the Section 7 scale-out direction (Gray's
    group commit): log forces arriving within ``force_window_ms`` of each
    other -- or up to ``force_batch_cap`` of them -- are coalesced into a
    single physical log force that completes all waiters at once, and the
    Transaction Manager batches 2PC datagrams destined for the same node
    (acks piggyback on the next outbound datagram at the same instant).

    ``serial_log_device`` models the log disk as a serial resource (one
    force in flight at a time, FIFO).  It is off by default because the
    paper's no-load latency accounting lets concurrent forces overlap
    freely; the throughput harness turns it on for both pipelines so the
    comparison is between equal device models.
    """

    #: "paper" | "grouped"
    pipeline: str = "paper"
    #: group-commit accumulation window in simulated milliseconds
    force_window_ms: float = 2.0
    #: force immediately once this many waiters are pending
    force_batch_cap: int = 64
    #: batch same-target 2PC datagrams issued at the same instant
    coalesce_datagrams: bool = True
    #: one physical log force in flight at a time (FIFO device queue)
    serial_log_device: bool = False

    def __post_init__(self) -> None:
        if self.pipeline not in ("paper", "grouped"):
            raise ValueError(f"unknown commit pipeline {self.pipeline!r}")
        if self.force_window_ms < 0:
            raise ValueError("force_window_ms must be >= 0")
        if self.force_batch_cap < 1:
            raise ValueError("force_batch_cap must be >= 1")

    @property
    def grouped_pipeline(self) -> bool:
        return self.pipeline == "grouped"

    @classmethod
    def paper(cls) -> "CommitConfig":
        """Byte-identical to the system as measured."""
        return cls()

    @classmethod
    def grouped(cls, force_window_ms: float = 2.0,
                force_batch_cap: int = 64) -> "CommitConfig":
        """Group commit + datagram coalescing over a serial log device."""
        return cls(pipeline="grouped", force_window_ms=force_window_ms,
                   force_batch_cap=force_batch_cap,
                   serial_log_device=True)


@dataclass(frozen=True)
class ReplicationConfig:
    """Available-copies replication over sharded key-spaces.

    Off by default: the paper's system keeps every recoverable object on
    exactly one node, and all historical goldens replay byte-identically.
    With ``enabled``, workload builders shard their logical key-spaces
    across the data-server nodes via a
    :class:`~repro.replication.placement.PlacementMap` with
    ``replication_factor`` copies each, clients route writes to *all
    available* copies and reads to *any available* copy, and the
    Transaction Manager validates at commit time that no written replica
    failed (erasing its in-memory CC state) while the transaction was
    open -- the RepCRec available-copies protocol layered on the
    existing 2PC/2PL facility.

    A recovering replica observes a read barrier: it refuses reads until
    a catch-up pass has merged current versions from its live peers
    (``catchup_retry_ms``/``catchup_max_retries`` bound the per-peer
    retry loop when peers are still down or contended).
    """

    enabled: bool = False
    #: copies of each key-space (clamped to the node count at build time)
    replication_factor: int = 2
    #: base backoff between catch-up attempts against one peer
    catchup_retry_ms: float = 400.0
    #: per-peer catch-up attempts before skipping that peer
    catchup_max_retries: int = 8
    #: lock wait bound for catch-up snapshot/apply cell locks.  Much
    #: shorter than the workload's lock time-out: a catch-up chunk that
    #: hits a convoyed hot cell should fail fast and retry in a gap,
    #: not park behind the convoy while the read barrier stays up.
    catchup_lock_timeout_ms: float = 1_500.0
    #: RPC bound for catch-up calls to the peer.  The default RPC
    #: time-out (30 s) outlives a whole failover window; a peer that
    #: dies mid-snapshot must fail the chunk quickly so the retry loop
    #: can notice the peer is gone and move on.
    catchup_call_timeout_ms: float = 6_000.0
    #: how long a prepared 2PC subordinate waits before inquiring about
    #: the outcome itself.  Replication tightens the single-copy default
    #: (30 s): a crashed coordinator's in-doubt transactions hold write
    #: locks on the *surviving* copies of everything they touched, and
    #: those shards stay frozen until the inquiry resolves them --
    #: exactly the outage-by-blocking this subsystem exists to shrink.
    prepared_inquiry_ms: float = 5_000.0

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.catchup_retry_ms < 0:
            raise ValueError("catchup_retry_ms must be >= 0")
        if self.catchup_max_retries < 1:
            raise ValueError("catchup_max_retries must be >= 1")
        if self.catchup_lock_timeout_ms <= 0:
            raise ValueError("catchup_lock_timeout_ms must be > 0")
        if self.catchup_call_timeout_ms <= 0:
            raise ValueError("catchup_call_timeout_ms must be > 0")
        if self.prepared_inquiry_ms <= 0:
            raise ValueError("prepared_inquiry_ms must be > 0")

    @classmethod
    def off(cls) -> "ReplicationConfig":
        """Single-copy placement, byte-identical to the paper's system."""
        return cls()

    @classmethod
    def available_copies(cls, replication_factor: int = 2,
                         **overrides) -> "ReplicationConfig":
        """Write-all-available / read-any-available replication."""
        return cls(enabled=True, replication_factor=replication_factor,
                   **overrides)


@dataclass(frozen=True)
class ReconfigConfig:
    """Online reconfiguration: live join/retire and shard migration.

    Off by default: cluster membership and the placement map stay fixed
    at construction exactly as before, no epoch ever rides in a message
    body, and all historical goldens and bench baselines replay
    byte-identically.  With ``enabled``, placement becomes
    epoch-versioned (:class:`~repro.reconfig.epoch.PlacementEpoch`):
    routers stamp each transaction with the epoch it routed under and
    the Transaction Manager aborts it at commit if the epoch moved
    meanwhile (a migration re-homed something it touched), nodes may
    join a *running* cluster and retire from it, and a
    :class:`~repro.reconfig.migration.MigrationCoordinator` moves one
    shard between nodes as a crash-safe transaction (durable intent in
    the originator's WAL, chunked copy behind a read barrier, epoch
    install as the commit action, presumed-abort rollback).

    The copy loop reuses the replication catch-up knobs
    (``catchup_call_timeout_ms``, ``catchup_lock_timeout_ms``) for its
    RPCs; ``copy_retry_ms``/``copy_max_retries`` bound how long a
    migration keeps retrying a failing source or destination before
    rolling back to the old epoch.
    """

    enabled: bool = False
    #: base backoff between retries of a failed copy chunk
    copy_retry_ms: float = 400.0
    #: consecutive chunk failures before the migration rolls back
    copy_max_retries: int = 6

    def __post_init__(self) -> None:
        if self.copy_retry_ms < 0:
            raise ValueError("copy_retry_ms must be >= 0")
        if self.copy_max_retries < 1:
            raise ValueError("copy_max_retries must be >= 1")

    @classmethod
    def off(cls) -> "ReconfigConfig":
        """Static membership and placement, byte-identical to PR 7."""
        return cls()

    @classmethod
    def online(cls, **overrides) -> "ReconfigConfig":
        """Live join/retire and transactional shard migration."""
        return cls(enabled=True, **overrides)


@dataclass(frozen=True)
class WorkloadConfig:
    """The banking schema a workload-driven cluster is built around.

    Mirrors :class:`CommitConfig`: an immutable selector-plus-knobs block
    hanging off :class:`TabsConfig`, consumed by
    :meth:`~repro.core.cluster.TabsCluster.build_workload`.  The one
    schema today is ``"debitcredit"`` -- Jim Gray's DebitCredit / TPC-B
    banking workload (*Thousands of DebitCredit Transactions-Per-Second
    in Low-Cost Systems*): each branch comprises the branch balance row
    (the hot row every local transaction updates), its tellers, its
    account partition, and its history strands, with
    ``branches_per_node`` branches co-hosted per cluster node.

    ``branches_per_node`` matters for the commit pipeline: within one
    branch, strict two-phase locking on the hot row serializes commits,
    so a node hosting a single branch never has two log forces in
    flight and group commit has nothing to coalesce.  Co-hosted
    branches commit independently against the *same* serial log device
    -- the regime where the ``grouped`` pipeline amortizes one physical
    force across every branch committing in the window.

    ``accounts_per_branch`` scales to millions of *logical* accounts:
    account cells live in a sparse recoverable segment whose pages
    materialize only when written, so segment size is address-space, not
    memory.  ``locality`` is the probability that a transaction debits an
    account of its home branch; the remainder pick a uniformly random
    remote branch, making the transaction a cross-node 2PC.
    """

    #: workload schema; only "debitcredit" exists today
    schema: str = "debitcredit"
    branches: int = 2
    #: branches co-hosted on one cluster node (ceil-divided; the last
    #: node may hold fewer)
    branches_per_node: int = 1
    tellers_per_branch: int = 10
    #: logical accounts per branch (sparse; pages materialize on write)
    accounts_per_branch: int = 100_000
    #: probability a transaction's account belongs to its home branch
    locality: float = 0.9
    #: transaction amounts are drawn uniformly from [1, max_delta], signed
    max_delta: int = 999
    #: history capacity per teller strand (rows, not bytes)
    history_slots_per_teller: int = 4096

    def __post_init__(self) -> None:
        if self.schema != "debitcredit":
            raise ValueError(f"unknown workload schema {self.schema!r}")
        if self.branches < 1:
            raise ValueError("need at least one branch")
        if self.branches_per_node < 1:
            raise ValueError("need at least one branch per node")
        if self.tellers_per_branch < 1:
            raise ValueError("need at least one teller per branch")
        if self.accounts_per_branch < 1:
            raise ValueError("need at least one account per branch")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError("locality is a probability")
        if self.max_delta < 1:
            raise ValueError("max_delta must be >= 1")
        if self.history_slots_per_teller < 1:
            raise ValueError("need at least one history slot per teller")
        from repro.core.facility import SEGMENT_VA_STRIDE

        for rows, what in ((self.accounts_per_branch, "accounts"),
                           ((self.tellers_per_branch
                             * (1 + self.history_slots_per_teller)),
                            "history slots")):
            if rows * 4 > SEGMENT_VA_STRIDE:  # 4-byte cells, one segment
                raise ValueError(
                    f"{what} per branch exceed one recoverable segment "
                    f"({SEGMENT_VA_STRIDE // 4} cells)")

    @property
    def total_accounts(self) -> int:
        return self.branches * self.accounts_per_branch

    @property
    def nodes(self) -> int:
        """Cluster nodes needed to host every branch."""
        return -(-self.branches // self.branches_per_node)

    @classmethod
    def debitcredit(cls, **overrides) -> "WorkloadConfig":
        """The default two-branch schema (hot row + cross-node traffic)."""
        return cls(**overrides)

    @classmethod
    def millions(cls) -> "WorkloadConfig":
        """Four branches x one million sparse accounts each."""
        return cls(branches=4, accounts_per_branch=1_000_000)


@dataclass(frozen=True)
class TabsConfig:
    """Everything needed to build a cluster."""

    profile: CostProfile = MEASURED_1985
    cpu_costs: CpuCosts = field(default_factory=CpuCosts)
    #: Section 5.3 "Improved TABS Architecture": TM/RM merged into the kernel
    merged_architecture: bool = False
    #: page frames of physical memory per node ("more than three times" less
    #: than the 5000-page benchmark array on a real Perq)
    vm_capacity_pages: int = 1500
    log_capacity_records: int = 100_000
    log_buffer_records: int = 512
    lock_timeout_ms: float = 10_000.0
    datagram_loss_rate: float = 0.0
    #: proactive failure detection (Section 3.2: the Communication Manager
    #: reports node failures).  Probes are uncharged background daemons, so
    #: enabling this does not perturb the paper's cost accounting.
    failure_detection: bool = True
    probe_interval_ms: float = 250.0
    suspicion_timeout_ms: float = 1500.0
    #: TM-driven checkpoint cadence (Section 3.2.2), in commits; None = off
    checkpoint_every_commits: int | None = None
    #: commit/logging pipeline (group commit, datagram coalescing); the
    #: default reproduces the paper's per-record forces exactly
    commit: CommitConfig = field(default_factory=CommitConfig)
    #: banking schema built by :meth:`TabsCluster.build_workload`
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: available-copies replication of the workload's key-spaces; the
    #: default (off) keeps every object single-copy as in the paper
    replication: ReplicationConfig = field(default_factory=ReplicationConfig)
    #: online reconfiguration (live join/retire, shard migration); the
    #: default (off) keeps membership and placement fixed at construction
    reconfig: ReconfigConfig = field(default_factory=ReconfigConfig)
    #: event-queue implementation of the simulation engine ("calendar" by
    #: default, "heap" as the reference fallback); both orders are
    #: byte-identical, the selector trades constant factors only
    engine: EngineConfig = field(default_factory=EngineConfig)
    seed: int = 1985

    @classmethod
    def measured(cls) -> "TabsConfig":
        """The system as measured in Table 5-4's 'Measured Elapsed Time'."""
        return cls()

    @classmethod
    def improved_architecture(cls) -> "TabsConfig":
        """Table 5-4's 'Improved TABS Architecture' column."""
        return cls(merged_architecture=True)

    @classmethod
    def new_primitives(cls) -> "TabsConfig":
        """Table 5-4's 'New Primitive Times' column: the improved
        architecture running on Table 5-5's achievable primitives."""
        return cls(merged_architecture=True, profile=ACHIEVABLE_1985)

    def with_(self, **changes) -> "TabsConfig":
        """A modified copy (ablation sweeps)."""
        return replace(self, **changes)
