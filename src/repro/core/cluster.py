"""A cluster of TABS nodes over one simulated network.

The cluster owns the :class:`~repro.kernel.context.SimContext` (engine +
cost model + instrumentation) and provides the synchronous driving surface
used by tests, examples, and benchmarks: build nodes, add servers, start
everything, then run application generators to completion.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.app.library import ApplicationLibrary
from repro.comm.network import Network
from repro.core.config import TabsConfig
from repro.core.facility import TabsNode
from repro.errors import TabsError
from repro.kernel.context import SimContext
from repro.sim import Engine, Process


def bring_up_server(server):
    """Bring one freshly added data server of a live node up (generator):
    map + recover its (empty) segment, register its name, serve."""
    yield from server.setup()
    yield from server.on_recovered()
    server.start()


class TabsCluster:
    """Builds and drives a set of TABS nodes."""

    def __init__(self, config: TabsConfig | None = None) -> None:
        self.config = config or TabsConfig()
        self.ctx = SimContext(engine=Engine(self.config.engine),
                              profile=self.config.profile,
                              cpu_costs=self.config.cpu_costs,
                              seed=self.config.seed)
        self.ctx.merged_architecture = self.config.merged_architecture
        self.network = Network(self.ctx,
                               datagram_loss_rate=self.config
                               .datagram_loss_rate)
        self.nodes: dict[str, TabsNode] = {}
        #: key-space sharding, set by the workload builder when
        #: ``config.replication.enabled`` (see :meth:`set_placement`)
        self.placement = None
        #: placement epoch of the current map; bumped by online
        #: reconfiguration (see :mod:`repro.reconfig`), 0 forever when off
        self.placement_epoch = 0
        #: the cluster's :class:`~repro.reconfig.manager.ReconfigManager`,
        #: registered by its constructor; None when reconfiguration is off
        self.reconfig = None
        #: called as hook(tabs_node) whenever a node is added -- lets the
        #: chaos controller and workload wire their observers onto nodes
        #: that join *after* they were constructed
        self.node_join_hooks: list[Callable] = []
        self._started = False

    @property
    def engine(self):
        return self.ctx.engine

    @property
    def meter(self):
        return self.ctx.meter

    @property
    def metrics(self):
        return self.ctx.metrics

    def enable_tracing(self):
        """Attach a :class:`~repro.obs.Tracer` to the cluster.

        Idempotent; returns the tracer.  Tracing is passive -- it charges
        no primitives, schedules no events, and draws no randomness -- so
        an instrumented run replays the untraced event sequence exactly.
        """
        if self.ctx.tracer is None:
            from repro.obs import Tracer

            tracer = Tracer(self.ctx.engine)
            self.ctx.tracer = tracer
            self.network.add_trace_hook(tracer.network_event)
        return self.ctx.tracer

    def enable_profiling(self):
        """Attach a :class:`~repro.obs.SimProfiler` to the cluster.

        Idempotent; returns the profiler.  The profiler reads the wall
        clock but never feeds a reading back into simulated state --
        no primitive charges, no scheduled events, no RNG draws -- so a
        profiled run replays the unprofiled event sequence byte for byte.
        """
        if self.ctx.profiler is None:
            from repro.obs import SimProfiler

            profiler = SimProfiler(self.ctx)
            profiler.network = self.network
            self.ctx.profiler = profiler
            self.ctx.engine.profiler = profiler
        return self.ctx.profiler

    # -- topology ------------------------------------------------------------------

    def add_node(self, name: str) -> TabsNode:
        """Create a node.  Before :meth:`start` this is pure construction;
        on a *running* cluster it is a live join -- the node boots, its
        servers recover (there are none yet), peers' failure detectors
        discover it, and it becomes eligible for shard placement."""
        if name in self.nodes:
            raise TabsError(f"node {name!r} already exists")
        tabs_node = TabsNode(self.ctx, self.network, name, self.config)
        self.nodes[name] = tabs_node
        if self.placement is not None and tabs_node.replication is not None:
            tabs_node.replication.placement = self.placement
            tabs_node.replication.epoch = self.placement_epoch
        for hook in self.node_join_hooks:
            hook(tabs_node)
        if self._started:
            # Spawned, not run to completion: a live join may be issued
            # from inside the running simulation (a scheduled
            # reconfiguration step), where re-entering the engine is
            # illegal.  Driver-context callers settle() afterwards.
            tabs_node.node.spawn(tabs_node.setup_generator(),
                                 name="join:setup", defused=True)
        return tabs_node

    def set_placement(self, placement) -> None:
        """Install the key-space :class:`~repro.replication.placement
        .PlacementMap` on the cluster and every node's replication
        runtime (workload builders call this before ``start``)."""
        self.placement = placement
        for tabs_node in self.nodes.values():
            if tabs_node.replication is not None:
                tabs_node.replication.placement = placement

    def node(self, name: str) -> TabsNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise TabsError(f"no node named {name!r}") from None

    def add_server(self, node_name: str, factory: Callable) -> None:
        self.node(node_name).add_server(factory)

    def add_server_live(self, node_name: str, factory: Callable):
        """Add a data server to a node of a *running* cluster and bring it
        up (map, recover its fresh segment, register, serve).  Returns
        the live server.  Used by shard migration to materialize the
        destination copy's server before the catch-up style copy."""
        if not self._started:
            raise TabsError("add_server_live needs a started cluster "
                            "(use add_server before start())")
        tabs_node = self.node(node_name)
        before = set(tabs_node.servers)
        tabs_node.add_server(factory)
        (name,) = set(tabs_node.servers) - before
        server = tabs_node.servers[name]
        self.run_on(node_name, bring_up_server(server))
        return server

    def build_workload(self):
        """Build the nodes and servers of ``config.workload``.

        Lays the configured workload schema (see
        :class:`~repro.core.config.WorkloadConfig`) over this cluster --
        one node per branch, each hosting its branch/teller/account/
        history servers -- starts every node, and returns the topology
        object the load generators and audits navigate by.
        """
        from repro.workloads import build_workload

        return build_workload(self)

    def start(self) -> None:
        """Bring every node's servers up (runs the simulation)."""
        for tabs_node in self.nodes.values():
            self.run_on(tabs_node.name, tabs_node.setup_generator())
        self._started = True

    # -- failure control -----------------------------------------------------------------

    def crash_node(self, name: str) -> None:
        self.node(name).crash()

    def partition(self, *groups) -> None:
        """Split the network into the given node groups (see
        :meth:`repro.comm.network.Network.partition`)."""
        self.network.partition(groups)

    def heal_partition(self) -> None:
        self.network.heal()

    def restart_node(self, name: str):
        """Restart a crashed node and run its crash recovery.

        Returns the :class:`~repro.recovery.driver.RecoveryReport`.
        """
        tabs_node = self.node(name)
        return self.run_on(name, tabs_node.restart_generator())

    # -- driving the simulation -------------------------------------------------------------

    def run_on(self, node_name: str, generator: Generator):
        """Run a generator as a process on a node, to completion."""
        process = Process(self.ctx.engine, generator,
                          name=f"{node_name}:driver")
        return self.ctx.engine.run_until(process)

    def spawn_on(self, node_name: str, generator: Generator,
                 name: str = "app") -> Process:
        """Start a generator as a background process on a node."""
        return self.node(node_name).node.spawn(generator, name=name,
                                               defused=True)

    def settle(self, extra_ms: float = 0.0) -> None:
        """Drain all pending simulation work (e.g. lazy phase two)."""
        if extra_ms:
            self.ctx.engine.run(until=self.ctx.engine.now + extra_ms)
        self.ctx.engine.run()

    # -- applications ------------------------------------------------------------------------

    def application(self, node_name: str,
                    measured: bool = False) -> ApplicationLibrary:
        return ApplicationLibrary(self.node(node_name).node, self.network,
                                  measured=measured)

    def replicated_application(self, node_name: str):
        """A :class:`~repro.replication.router.ReplicatedApp` homed on
        ``node_name`` (requires a placement map)."""
        from repro.replication.router import ReplicatedApp

        return ReplicatedApp(self, node_name)

    def run_transaction(self, node_name: str, body_fn: Callable,
                        measured: bool = False, retries: int = 0):
        """Begin/run/commit ``body_fn(tid)`` on a node; returns its result."""
        app = self.application(node_name, measured=measured)
        return self.run_on(node_name, app.run_transaction(body_fn,
                                                          retries=retries))
