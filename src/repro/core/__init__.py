"""The TABS facility: assembled nodes and clusters.

This package is the library's front door.  A :class:`TabsCluster` owns the
simulation context and network; each :class:`TabsNode` runs one instance of
the TABS facilities -- Name Server, Communication Manager, Recovery
Manager, Transaction Manager (Figure 3-1) -- plus user data servers and
applications.

Typical use::

    from repro import TabsCluster, TabsConfig
    from repro.servers.int_array import IntegerArrayServer

    cluster = TabsCluster(TabsConfig())
    node = cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("accounts"))
    cluster.start()

    app = cluster.application("n1")

    def deposit(tid):
        ref = yield from app.lookup_one("accounts")
        yield from app.call(ref, "set_cell", {"cell": 1, "value": 100}, tid)

    cluster.run_transaction("n1", deposit)
"""

from repro.core.cluster import TabsCluster
from repro.core.config import TabsConfig
from repro.core.facility import TabsNode

__all__ = ["TabsCluster", "TabsConfig", "TabsNode"]
