"""One TABS node: the four system processes plus user data servers.

The component inventory mirrors Figure 3-1: applications and data servers
above; Name Server, Communication Manager, Recovery Manager, and
Transaction Manager as the TABS system components; the (simulated) Accent
kernel below.  The node's durable state -- its disk and its non-volatile
log store -- survives :meth:`crash`; everything else is rebuilt by
:meth:`restart` followed by crash recovery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.comm.failures import FailureDetector
from repro.comm.manager import CommunicationManager
from repro.comm.network import Network
from repro.errors import TabsError
from repro.kernel.context import SimContext
from repro.kernel.node import Node
from repro.nameserver.server import NameServer
from repro.recovery.archive import Archive
from repro.recovery.driver import RecoveryReport, recover_node
from repro.recovery.manager import (
    RecoveryManager,
    RecoveryManagerClient,
    RmPagerClient,
)
from repro.recovery.supervisor import RecoverySupervisor
from repro.txn.manager import TransactionManager
from repro.wal.store import LogStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import TabsConfig

#: base virtual address of the first recoverable segment on a node; further
#: segments are laid out above it
SEGMENT_BASE_VA = 0x1000_0000
SEGMENT_VA_STRIDE = 0x0100_0000


class TabsNode:
    """The TABS facilities on one simulated workstation."""

    def __init__(self, ctx: SimContext, network: Network, name: str,
                 config: "TabsConfig") -> None:
        self.ctx = ctx
        self.network = network
        self.name = name
        self.config = config
        #: durable across restarts (the log lives on the node's disk)
        self.log_store = LogStore(config.log_capacity_records)
        #: the off-line archive (Section 2.1.3); survives even disk loss
        self.archive = Archive()
        self._server_factories: dict[str, Callable] = {}
        self._next_va = SEGMENT_BASE_VA
        self._segment_vas: dict[str, int] = {}
        self.node: Node | None = None
        self.last_recovery: RecoveryReport | None = None
        #: failure-detector observers; the list survives rebuilds so chaos
        #: tracing hooks keep observing across crash/recovery cycles
        self.fd_observers: list = []
        #: generator factories spawned after every crash recovery (e.g. a
        #: reconfiguration manager resolving a migration the crash cut
        #: short); survives rebuilds like ``fd_observers``
        self.recovery_hooks: list[Callable] = []
        #: a retired node left the cluster for good: it is powered off,
        #: deregistered from the network, and repair/finale sweeps must
        #: not restart it
        self.retired = False
        self._pending_media_restore: list[str] | None = None
        #: available-copies replication runtime; like ``fd_observers`` it
        #: survives rebuilds (the availability view is knowledge about
        #: peers, not volatile local state).  None when replication is off.
        self.replication = None
        if getattr(config, "replication", None) is not None \
                and config.replication.enabled:
            from repro.replication.runtime import ReplicaRuntime

            self.replication = ReplicaRuntime(self)
        self._build()
        #: self-healing: recovery now runs off Node.on_restart, unattended
        self.supervisor = RecoverySupervisor(self)

    # -- construction -------------------------------------------------------------

    def _build(self) -> None:
        if self.node is None:
            self.node = Node(self.ctx, self.name,
                             vm_capacity_pages=self.config.vm_capacity_pages)
        self.cm = CommunicationManager(self.node, self.network)
        if self.config.failure_detection:
            self.cm.failure_detector = FailureDetector(
                self.cm,
                probe_interval_ms=self.config.probe_interval_ms,
                suspicion_timeout_ms=self.config.suspicion_timeout_ms,
                observers=self.fd_observers)
        self.ns = NameServer(self.node, self.network)
        self.rm = RecoveryManager(self.node, store=self.log_store,
                                  buffer_capacity=self.config
                                  .log_buffer_records,
                                  commit=self.config.commit)
        self.tm = TransactionManager(self.node,
                                     RecoveryManagerClient(self.node),
                                     commit=self.config.commit)
        # Inbound protocol traffic (a peer's prompt abort, an outcome
        # query) must not race the log replay below; the gate opens at
        # the end of setup_generator once the node is consistent.
        self.tm.hold_messages_until_recovered()
        self.tm.checkpoint_every_commits = \
            self.config.checkpoint_every_commits
        if self.replication is not None:
            self.tm.replication_validator = self.replication.validate
            # A dead coordinator's in-doubt locks freeze the surviving
            # replica copies it wrote; inquire early to unfreeze them.
            self.tm.prepared_inquiry_ms = \
                self.config.replication.prepared_inquiry_ms
            # Don't await 2PC acks from peers the availability view has
            # down: they cannot answer, and the wait freezes the client.
            view = self.replication.view
            self.tm.peer_down_probe = \
                lambda peer: not view.available(peer)
        self.node.vm.pager_client = RmPagerClient(self.node)
        #: name -> live data-server objects (BaseDataServer instances)
        self.servers: dict[str, object] = {}

    def allocate_segment_va(self, segment_id: str = "") -> int:
        """Carve out address space for one more recoverable segment.

        Keyed by segment id: a recovered server re-maps its segment at
        the same virtual address, so object ids stay stable.
        """
        if segment_id and segment_id in self._segment_vas:
            return self._segment_vas[segment_id]
        va = self._next_va
        self._next_va += SEGMENT_VA_STRIDE
        if segment_id:
            self._segment_vas[segment_id] = va
        return va

    # -- server management ------------------------------------------------------------

    def add_server(self, factory: Callable) -> None:
        """Register a data-server factory: ``factory(tabs_node) -> server``.

        The factory is kept so the server can be re-instantiated after a
        crash (the abstraction is permanent even though its ports change,
        Section 3.1.3).
        """
        server = factory(self)
        if server.name in self._server_factories:
            raise TabsError(f"server {server.name!r} already exists on "
                            f"node {self.name!r}")
        self._server_factories[server.name] = factory
        self.servers[server.name] = server

    def setup_generator(self, media_restore_segments: list[str] | None = None):
        """Bring every server up: map, attach, recover, serve (generator).

        With ``media_restore_segments``, archived page images are restored
        first and the value pass replays from the archive position (media
        recovery).
        """
        for server in self.servers.values():
            yield from server.setup()
        media_bound = None
        if media_restore_segments:
            self.archive.restore(self.node.disk, media_restore_segments)
            # Roll forward over the whole retained log: the archived
            # image may hold uncommitted values stolen by the dump's
            # flush, whose undo records sit below ``archive_lsn``.
            media_bound = self.rm.wal.store.truncated_before
        report = yield from recover_node(
            self.rm, self.tm,
            {name: server.library for name, server in self.servers.items()},
            media_bound=media_bound,
            archive=self.archive,
            segment_ids=[server.segment_id
                         for server in self.servers.values()])
        self.last_recovery = report
        for server in self.servers.values():
            yield from server.on_recovered()
        for server in self.servers.values():
            server.start()
        self.tm.recovery_complete()
        return report

    # -- failure model -----------------------------------------------------------------

    def crash(self) -> None:
        """Power failure: kill the node; disk and durable log survive."""
        self.rm.crash()
        self.node.crash()
        self.servers = {}

    def shutdown_generator(self):
        """Graceful power-off (generator): flush dirty pages and force the
        log so the disk image is consistent, then cut power.

        Used by node retirement -- unlike :meth:`crash`, a retired node's
        disk must stand on its own because no recovery pass will ever
        reconcile it with the log again.
        """
        yield from self.node.vm.flush_all()
        yield from self.rm.wal.force()
        self.crash()

    def restart_generator(self, media_restore_segments: list[str] | None = None):
        """Restart + crash recovery (generator).  Run it on the engine.

        Thin wrapper: powering the node on fires the
        :class:`RecoverySupervisor`, which drives the recovery itself;
        this generator merely awaits that process and returns its report.
        """
        self._pending_media_restore = media_restore_segments
        self.node.restart()
        report = yield self.supervisor.recovery_process
        return report

    def recovery_generator(self):
        """Rebuild the system processes and run crash recovery (generator).

        Spawned by the :class:`RecoverySupervisor` the moment the kernel
        node restarts; assumes the node itself is already powered on.
        """
        media_restore_segments = self._pending_media_restore
        self._pending_media_restore = None
        self._build()
        if not self.archive.empty:
            self.rm.media_retention_lsn = self.archive.archive_lsn + 1
        for factory in self._server_factories.values():
            server = factory(self)
            self.servers[server.name] = server
        if self.replication is not None:
            # The read barrier must be up before the servers accept
            # requests: log replay restores durable state, not the
            # writes peers committed while this node was down.
            self.replication.mark_catchup_pending()
        report = yield from self.setup_generator(
            media_restore_segments=media_restore_segments)
        if self.replication is not None:
            self.replication.spawn_catchup()
        for index, hook in enumerate(self.recovery_hooks):
            self.node.spawn(hook(), name=f"recovery-hook:{index}",
                            defused=True)
        return report

    # -- archive dumps and media recovery (the Section 7 extension) -------------

    def archive_dump_generator(self):
        """Dump every attached segment's non-volatile image (generator).

        "Systems infrequently dump the contents of non-volatile storage
        into an off-line archive" (Section 2.1.3).  Forces dirty pages and
        the log first, so the dump is consistent at ``archive_lsn``.
        """
        yield from self.node.vm.flush_all()
        yield from self.rm.wal.force()
        segment_ids = [server.segment_id
                       for server in self.servers.values()]
        self.archive.dump(self.node.disk, segment_ids,
                          self.rm.wal.flushed_lsn)
        self.rm.media_retention_lsn = self.archive.archive_lsn + 1
        return self.archive.archive_lsn

    def media_failure(self, segment_ids: list[str]) -> int:
        """A disk failure destroys the named segments (node must be down:
        losing the disk takes the system with it).  Returns pages lost."""
        if self.node.alive:
            raise TabsError("crash the node before failing its disk")
        return sum(self.node.disk.wipe_segment(segment_id)
                   for segment_id in segment_ids)

    def media_recover_generator(self, segment_ids: list[str]):
        """Restart with media recovery: restore the archive, then roll
        the log forward from the archive position."""
        return self.restart_generator(media_restore_segments=segment_ids)

    # -- single-server recovery (the Section 7 extension) ----------------------------------

    def fail_server(self, name: str) -> None:
        """Kill one data-server process; the node stays up.

        The paper's Conclusions ask that TABS "be extended to permit the
        recovery of a single server without the recovery of the entire
        node"; :meth:`recover_server` is that extension's other half.
        """
        server = self.servers.pop(name)
        server.library.fail()

    def recover_server_generator(self, name: str):
        """Re-create one failed data server and recover it (generator).

        The segment and the common log are intact (the node never went
        down), so there is nothing to replay; what the dead process lost
        was its volatile state.  Recovery therefore: re-creates the
        process at the same segment address, aborts every non-prepared
        transaction that had joined it (their locks and buffered state
        are gone), and re-acquires write locks for its in-doubt prepared
        transactions from the durable log.
        """
        from repro.kernel.messages import Message
        from repro.kernel.ports import Port
        from repro.recovery.analysis import analyze
        from repro.wal.records import (
            OperationRecord,
            ServerPrepareRecord,
            ValueUpdateRecord,
        )

        server = self._server_factories[name](self)
        self.servers[name] = server
        yield from server.setup()
        self.tm.rebind_server_port(name, server.library.port)

        # In-doubt transactions: restore their locks before anything runs.
        records = self.rm.wal.read_forward(
            self.rm.wal.store.truncated_before)
        plan = analyze(records)
        for tid, status_record in plan.prepared.items():
            if name not in status_record.servers:
                continue
            oids = set()
            for record in records:
                if getattr(record, "server", None) != name:
                    continue
                if isinstance(record, ServerPrepareRecord):
                    oids.update(record.oids)
                elif isinstance(record, ValueUpdateRecord) and record.oid:
                    oids.add(record.oid)
                elif isinstance(record, OperationRecord):
                    oids.update(record.oids)
            server.library.relock_prepared(tid, tuple(sorted(oids)))

        # The request loop must run before the aborts: the Recovery
        # Manager's undo instructions arrive on the new port.
        server.start()

        # Everything else this server had joined lost its locks: abort.
        for tid in self.tm.transactions_with_server(name):
            reply_port = Port(self.ctx, node=self.node, name="sr-abort")
            self.node.service("transaction_manager").send(Message(
                op="tm.abort",
                body={"tid": tid,
                      "reason": f"data server {name!r} failed"},
                reply_to=reply_port))
            yield reply_port.receive()

        yield from server.on_recovered()
        return server

    # -- introspection ---------------------------------------------------------------------

    def component_inventory(self) -> dict[str, str]:
        """The Figure 3-1 component map, programmatically."""
        inventory = {
            "name_server": "name dissemination",
            "communication_manager": "network communication",
            "recovery_manager": "recovery and log management",
            "transaction_manager": "transaction management",
        }
        for name in self.servers:
            inventory[name] = "data server"
        return inventory
