"""Exporters: Chrome trace-event JSON (Perfetto) and compact JSONL.

The Chrome trace-event format maps naturally onto the simulation: one
"process" per simulated node, one "thread" per Figure 3-1 component (APP,
DS, RPC, LOCK, WAL, RM, TM, CM, NET, KERNEL, ...).  Spans become "X"
(complete) events, instant events become "i", and "M" metadata events name
the tracks.  Timestamps are simulated milliseconds scaled to microseconds,
the unit Perfetto expects.

Byte determinism is part of the contract: output is built from
insertion-ordered lists and sorted dicts and serialised with
``sort_keys=True`` and fixed separators, so two same-seed runs produce
identical files (the CI trace-determinism job diffs them).
"""

from __future__ import annotations

import json

from repro.obs.tracer import Tracer

#: Stable thread ordering per node: known components first, in the order a
#: transaction descends the stack, then anything novel alphabetically.
COMPONENT_ORDER = [
    "APP", "DS", "RPC", "LOCK", "WAL", "RM", "TM", "CM", "NS", "NET",
    "KERNEL", "RECOVERY",
]


def _microseconds(time_ms: float) -> int:
    return int(round(time_ms * 1000.0))


def _track_ids(tracer: Tracer) -> tuple[dict[str, int], dict[tuple[str, str], int]]:
    """Assign pids to nodes and tids to (node, component) tracks."""
    nodes: list[str] = []
    components: dict[str, list[str]] = {}
    for span in tracer.spans:
        if span.node not in components:
            nodes.append(span.node)
            components[span.node] = []
        if span.component not in components[span.node]:
            components[span.node].append(span.component)
    for event in tracer.events:
        if event.node not in components:
            nodes.append(event.node)
            components[event.node] = []
        if event.component not in components[event.node]:
            components[event.node].append(event.component)

    def component_rank(name: str):
        try:
            return (COMPONENT_ORDER.index(name), "")
        except ValueError:
            return (len(COMPONENT_ORDER), name)

    pids = {node: index + 1 for index, node in enumerate(sorted(nodes))}
    tids: dict[tuple[str, str], int] = {}
    for node in sorted(nodes):
        for index, component in enumerate(
                sorted(components[node], key=component_rank)):
            tids[(node, component)] = index + 1
    return pids, tids


def _span_args(span, tracer: Tracer) -> dict:
    args = {"span_id": span.span_id, "parent_id": span.parent_id}
    if span.family:
        args["txn"] = span.family
    if span.open:
        args["open_at_export"] = True
    for key in sorted(span.attrs):
        args[key] = span.attrs[key]
    return args


def chrome_trace(tracer: Tracer) -> dict:
    """The trace as a Chrome trace-event object (``traceEvents`` + meta)."""
    pids, tids = _track_ids(tracer)
    end_bound = tracer.last_time_ms()
    events: list[dict] = []
    for node in sorted(pids):
        events.append({
            "ph": "M", "name": "process_name", "pid": pids[node], "tid": 0,
            "args": {"name": f"node {node}"},
        })
    for (node, component) in sorted(tids):
        events.append({
            "ph": "M", "name": "thread_name", "pid": pids[node],
            "tid": tids[(node, component)], "args": {"name": component},
        })
    for span in tracer.spans:
        end_ms = span.end_ms if span.end_ms is not None else end_bound
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.component,
            "pid": pids[span.node],
            "tid": tids[(span.node, span.component)],
            "ts": _microseconds(span.start_ms),
            "dur": max(0, _microseconds(end_ms) - _microseconds(span.start_ms)),
            "args": _span_args(span, tracer),
        })
    for event in tracer.events:
        args = {"event_id": event.event_id}
        if event.family:
            args["txn"] = event.family
        for key in sorted(event.attrs):
            args[key] = event.attrs[key]
        events.append({
            "ph": "i",
            "name": event.name,
            "cat": event.component,
            "pid": pids[event.node],
            "tid": tids[(event.node, event.component)],
            "ts": _microseconds(event.time_ms),
            "s": "t",
            "args": args,
        })
    return {
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "unit": "us"},
        "traceEvents": events,
    }


def chrome_trace_json(tracer: Tracer) -> str:
    """Byte-deterministic serialisation of :func:`chrome_trace`."""
    return json.dumps(chrome_trace(tracer), sort_keys=True,
                      separators=(",", ":"))


def jsonl_events(tracer: Tracer) -> str:
    """Compact one-record-per-line log: spans then instants, by id."""
    records: list[tuple[int, dict]] = []
    for span in tracer.spans:
        records.append((span.span_id, {
            "type": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "node": span.node,
            "component": span.component,
            "txn": span.family,
            "start_ms": span.start_ms,
            "end_ms": span.end_ms,
            "attrs": {key: span.attrs[key] for key in sorted(span.attrs)},
        }))
    for event in tracer.events:
        records.append((event.event_id, {
            "type": "event",
            "id": event.event_id,
            "name": event.name,
            "node": event.node,
            "component": event.component,
            "txn": event.family,
            "time_ms": event.time_ms,
            "attrs": {key: event.attrs[key] for key in sorted(event.attrs)},
        }))
    records.sort(key=lambda pair: pair[0])
    lines = [json.dumps(record, sort_keys=True, separators=(",", ":"))
             for _, record in records]
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_json(registry) -> str:
    """Byte-deterministic serialisation of a metrics snapshot."""
    return json.dumps(registry.snapshot(), sort_keys=True,
                      separators=(",", ":"))


# -- profiler exports ---------------------------------------------------------
#
# Wall-clock profiles are inherently nondeterministic (the numbers are
# real time), so unlike the trace exporters above these promise only
# *shape* determinism: the frame set and ordering are pure functions of
# the run, only the sample values vary.

def collapsed_stacks(profiler) -> str:
    """The profile as collapsed-stack flamegraph text.

    One line per handler category -- ``sim;Type;label value`` -- where
    the value is cumulative wall time in integer microseconds, the input
    ``flamegraph.pl`` and speedscope both accept.  Category segments
    (``Timeout:datagram``) become stack frames under a common ``sim``
    root.
    """
    lines = []
    for category in sorted(profiler.handlers):
        count, wall_s = profiler.handlers[category]
        frames = ["sim"] + [frame for frame in category.split(":") if frame]
        micros = int(round(wall_s * 1e6))
        lines.append(f"{';'.join(frames)} {max(micros, 1)}")
    return "\n".join(lines) + ("\n" if lines else "")


def pstats_table(profiler) -> dict:
    """The profile as a ``pstats``-shaped stats dict.

    Keys are ``(filename, line, function)`` triples; values are the
    ``(call_count, primitive_calls, total_time, cumulative_time,
    callers)`` tuples ``pstats.Stats`` expects.  Each handler category
    maps to one flat entry (the event loop has no call hierarchy worth
    faking).
    """
    return {("sim", 0, category): (count, count, wall_s, wall_s, {})
            for category, (count, wall_s) in profiler.handlers.items()}


def write_pstats(profiler, path) -> None:
    """Dump the profile where ``pstats.Stats(path)`` can load it."""
    import marshal

    with open(path, "wb") as handle:
        marshal.dump(pstats_table(profiler), handle)
