"""Per-node counters, gauges, and log-bucket latency histograms.

The :class:`~repro.kernel.costs.CostMeter` answers the paper's Table 5-2/5-3
question -- *how many* of each hardware primitive a transaction consumes.
The metrics registry answers the operational questions next to it: how deep
did lock wait queues get, how long did log forces take, what was the
commit-path latency per commit protocol, how often did the Transaction
Manager retransmit.

Everything is keyed ``(node, name)`` and stored in insertion-ordered dicts,
so two same-seed runs snapshot identically and renderings are stable.
Recording is a couple of dict operations -- cheap enough to stay always-on,
and since it never charges primitives, schedules events, or draws
randomness, it cannot perturb the simulation.
"""

from __future__ import annotations


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A value that goes up and down; remembers its high-water mark."""

    __slots__ = ("value", "high_water")

    def __init__(self) -> None:
        self.value = 0
        self.high_water = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, amount: int = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: int = 1) -> None:
        self.set(self.value - amount)

    def snapshot(self):
        return {"value": self.value, "max": self.high_water}


class Histogram:
    """Log2-bucketed latency distribution (milliseconds).

    Bucket ``b`` holds observations in ``[2**(b-1), 2**b)`` ms, with bucket
    0 holding everything below 1 ms.  Exact sums and counts ride along so
    reports can show a true mean next to the distribution.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value_ms: float) -> None:
        bucket = 0
        edge = 1.0
        while value_ms >= edge:
            bucket += 1
            edge *= 2.0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value_ms
        if self.min is None or value_ms < self.min:
            self.min = value_ms
        if self.max is None or value_ms > self.max:
            self.max = value_ms

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Estimated value at ``fraction`` (e.g. ``0.95``) of the
        distribution.

        Walks the log2 buckets to the target rank and interpolates
        linearly inside the landing bucket, clamped to the exact
        observed ``[min, max]``.  Accessor-only: the snapshot shape is
        unchanged, so golden metric digests stay valid.
        """
        if not self.count:
            return 0.0
        low = self.min if self.min is not None else 0.0
        high = self.max if self.max is not None else 0.0
        rank = fraction * self.count
        cumulative = 0
        for bucket in sorted(self.buckets):
            weight = self.buckets[bucket]
            if cumulative + weight >= rank:
                lower = 0.0 if bucket == 0 else float(2 ** (bucket - 1))
                upper = float(2 ** bucket)
                within = max(rank - cumulative, 0.0) / weight
                value = lower + within * (upper - lower)
                return min(max(value, low), high)
            cumulative += weight
        return high

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def snapshot(self):
        return {
            "count": self.count,
            "mean_ms": self.mean,
            "min_ms": self.min if self.min is not None else 0.0,
            "max_ms": self.max if self.max is not None else 0.0,
            "buckets": {str(b): self.buckets[b] for b in sorted(self.buckets)},
        }


class MetricsRegistry:
    """All metrics for one cluster, keyed ``(node, name)``."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, str], Counter] = {}
        self._gauges: dict[tuple[str, str], Gauge] = {}
        self._histograms: dict[tuple[str, str], Histogram] = {}

    # -- accessors (create on first use) -------------------------------------

    def counter(self, node: str, name: str) -> Counter:
        key = (node, name)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, node: str, name: str) -> Gauge:
        key = (node, name)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, node: str, name: str) -> Histogram:
        key = (node, name)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram()
        return metric

    # -- reading back ---------------------------------------------------------

    def counters(self) -> dict[tuple[str, str], Counter]:
        return dict(self._counters)

    def gauges(self) -> dict[tuple[str, str], Gauge]:
        return dict(self._gauges)

    def histograms(self) -> dict[tuple[str, str], Histogram]:
        return dict(self._histograms)

    def snapshot(self) -> dict:
        """A sorted, JSON-ready dump of every metric."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for (node, name) in sorted(self._counters):
            out["counters"][f"{node}/{name}"] = self._counters[(node, name)].snapshot()
        for (node, name) in sorted(self._gauges):
            out["gauges"][f"{node}/{name}"] = self._gauges[(node, name)].snapshot()
        for (node, name) in sorted(self._histograms):
            out["histograms"][f"{node}/{name}"] = self._histograms[(node, name)].snapshot()
        return out
