"""Causal span tracing over the discrete-event simulation.

A :class:`Tracer` records *spans* (named intervals of simulated time with a
node, a Figure 3-1 component, and an optional transaction family) and
*instant events* (votes, acks, network datagram events).  Spans form a
tree: each carries the id of its parent, and the whole family of one
distributed transaction -- client call on the birth node, lock waits and
log forces on every participant, the 2PC prepare/vote/commit/ack exchange
-- stitches into a single cross-node tree rooted at the application's
``txn`` span.

Parent resolution, in priority order:

1. an explicit ``parent_id`` (used when span context crosses nodes: RPC
   stubs and the Transaction Manager's protocol datagrams carry the
   sender's current span id in ``Message.trace_parent``);
2. the innermost open span *of the same transaction family on the same
   node* (so a lock wait inside a data-server operation nests under it);
3. for family-less spans (a WAL force issued for page cleaning, say), the
   innermost open span on the node, whose family is inherited;
4. the family's registered root span;
5. no parent (a top-level span on the node's track).

Determinism: span ids are a plain counter, timestamps come exclusively
from the engine's simulated clock, and recording draws no randomness and
schedules no events.  Two same-seed runs therefore produce identical
traces, and a traced run executes the exact event sequence of an untraced
one -- the regression suite asserts both properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim import Engine


@dataclass
class Span:
    """One named interval on a (node, component) track."""

    span_id: int
    name: str
    node: str
    component: str
    start_ms: float
    end_ms: float | None = None
    parent_id: int = 0
    #: transaction-family key (``str(tid.toplevel)``), or "" when the span
    #: is not tied to a transaction
    family: str = ""
    attrs: dict = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.end_ms is None

    def duration_ms(self, fallback_end: float | None = None) -> float:
        end = self.end_ms if self.end_ms is not None else fallback_end
        if end is None:
            return 0.0
        return max(0.0, end - self.start_ms)


@dataclass
class TraceEvent:
    """One instant event (a vote arriving, a datagram dropped, ...)."""

    event_id: int
    name: str
    node: str
    component: str
    time_ms: float
    family: str = ""
    attrs: dict = field(default_factory=dict)


def family_of(tid) -> str:
    """The family key of a transaction identifier (its top level)."""
    if tid is None:
        return ""
    toplevel = getattr(tid, "toplevel", tid)
    return str(toplevel)


class Tracer:
    """Collects spans and events for one simulated cluster run."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self._next_id = 1
        self._open: dict[int, Span] = {}
        #: innermost-last open spans per node (all families interleaved)
        self._node_stacks: dict[str, list[Span]] = {}
        #: family key -> root span id (the application's ``txn`` span)
        self._family_roots: dict[str, int] = {}

    # -- span lifecycle ------------------------------------------------------

    def begin(self, name: str, node: str, component: str, tid=None,
              parent_id: int | None = None, **attrs) -> int:
        """Open a span; returns its id (pass to :meth:`end`)."""
        family = family_of(tid)
        stack = self._node_stacks.setdefault(node, [])
        if parent_id is None or parent_id == 0:
            parent_id = 0
            if family:
                for open_span in reversed(stack):
                    if open_span.family == family:
                        parent_id = open_span.span_id
                        break
                if not parent_id:
                    parent_id = self._family_roots.get(family, 0)
            elif stack:
                parent = stack[-1]
                parent_id = parent.span_id
                family = parent.family
        span = Span(self._next_id, name, node, component, self.engine.now,
                    parent_id=parent_id, family=family, attrs=dict(attrs))
        self._next_id += 1
        self.spans.append(span)
        self._open[span.span_id] = span
        stack.append(span)
        return span.span_id

    def begin_root(self, tid, node: str, component: str = "APP",
                   name: str = "txn") -> int:
        """Open a transaction family's root span and register it."""
        family = family_of(tid)
        span_id = self.begin(name, node, component, tid=tid, parent_id=0)
        self._family_roots.setdefault(family, span_id)
        return span_id

    def end(self, span_id: int, **attrs) -> None:
        """Close a span (idempotent; unknown/closed ids are ignored)."""
        span = self._open.pop(span_id, None)
        if span is None:
            return
        span.end_ms = self.engine.now
        span.attrs.update(attrs)
        stack = self._node_stacks.get(span.node)
        if stack is not None:
            try:
                stack.remove(span)
            except ValueError:  # pragma: no cover - defensive
                pass

    def current_span_id(self, tid, node: str) -> int:
        """The innermost open span of ``tid``'s family at ``node``.

        Falls back to the family root; 0 when the family is untraced.
        This is what message senders stamp into ``Message.trace_parent``
        so the receiving node's spans parent across the wire.
        """
        family = family_of(tid)
        stack = self._node_stacks.get(node, ())
        if not family:
            return stack[-1].span_id if stack else 0
        for open_span in reversed(stack):
            if open_span.family == family:
                return open_span.span_id
        return self._family_roots.get(family, 0)

    # -- instant events ------------------------------------------------------

    def event(self, name: str, node: str, component: str, tid=None,
              **attrs) -> None:
        self.events.append(TraceEvent(
            self._next_id, name, node, component, self.engine.now,
            family=family_of(tid), attrs=dict(attrs)))
        self._next_id += 1

    def network_event(self, time_ms: float, event: str, source: str,
                      target: str, op: str) -> None:
        """Subscriber for :meth:`repro.comm.network.Network.add_trace_hook`."""
        self.events.append(TraceEvent(
            self._next_id, f"net.{event}", source or target, "NET", time_ms,
            attrs={"source": source, "target": target, "op": op}))
        self._next_id += 1

    # -- failure model -------------------------------------------------------

    def node_crashed(self, node: str) -> None:
        """Close every open span on a crashing node (volatile state gone)."""
        for open_span in list(self._node_stacks.get(node, ())):
            self.end(open_span.span_id, truncated="crash")
        self.event("node.crash", node, "KERNEL")

    # -- introspection -------------------------------------------------------

    def last_time_ms(self) -> float:
        """The newest timestamp recorded (export bound for open spans)."""
        last = 0.0
        for span in self.spans:
            last = max(last, span.start_ms, span.end_ms or 0.0)
        for trace_event in self.events:
            last = max(last, trace_event.time_ms)
        return last

    def family_root(self, tid) -> int:
        return self._family_roots.get(family_of(tid), 0)

    def spans_of_family(self, tid) -> list[Span]:
        family = family_of(tid)
        return [span for span in self.spans if span.family == family]

    def span_children(self, span_id: int) -> list[Span]:
        return [span for span in self.spans if span.parent_id == span_id]
