"""``repro.obs``: deterministic tracing and metrics for the simulation.

The observability layer has three parts, mirroring how Section 5 of the
paper accounts for *where time goes*:

- :mod:`repro.obs.tracer` -- causal spans keyed by transaction family,
  opened at every interesting point of a transaction's life (client call,
  lock wait, WAL force, the 2PC phases, recovery replay) and stitched into
  one cross-node tree per distributed transaction.
- :mod:`repro.obs.metrics` -- per-node counters, gauges, and log-bucket
  latency histograms (lock waits, log forces, commit paths per protocol,
  retransmits), complementing the :class:`~repro.kernel.costs.CostMeter`'s
  paper-table primitive counts.
- :mod:`repro.obs.export` -- Chrome trace-event JSON (open it in Perfetto
  or ``chrome://tracing``) and a compact JSONL event log.
- :mod:`repro.obs.profile` -- the *wall-clock* layer: a deterministic-safe
  self-profiler attributing real time per handler category, lock
  contention heatmaps, and the simulated-events-per-second meter the
  ``bench_sim_speed`` meta-benchmark gates.

Everything is timestamped from the simulation engine's clock, never the
wall clock, so a traced chaos run is byte-for-byte reproducible from its
seed; and tracing is strictly passive (no primitive charges, no scheduled
events, no RNG draws), so enabling it never changes a paper table.
"""

from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    collapsed_stacks,
    jsonl_events,
    metrics_json,
    pstats_table,
    write_pstats,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import SimProfiler, handler_category, render_profile
from repro.obs.tracer import Span, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SimProfiler",
    "Span",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "chrome_trace_json",
    "collapsed_stacks",
    "handler_category",
    "jsonl_events",
    "metrics_json",
    "pstats_table",
    "render_profile",
    "write_pstats",
]
