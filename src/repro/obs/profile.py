"""Wall-clock self-profiling for the simulator -- where *real* time goes.

Everything else in ``repro.obs`` answers questions in *simulated*
milliseconds.  This module answers the ROADMAP item 3 question instead:
how fast does the simulator itself run, and which handler categories and
lock keys burn the wall-clock budget?  QUANTAS-style, simulated-events
per wall second is a first-class output of the simulator.

The zero-feedback invariant is the contract that makes this safe to ship
always-available: the profiler *reads* the wall clock but never lets a
reading feed back into simulated state.  It charges no primitives,
schedules no events, draws no randomness, and touches no metric the
golden digests hash -- so a profiled run replays the unprofiled event
sequence byte for byte (the determinism suite asserts it).

Three layers:

- **Event-loop accounting** -- :meth:`SimProfiler.run_step` wraps every
  callback the :class:`~repro.sim.engine.Engine` pops, attributing wall
  time and counts to a *handler category* derived from the callback's
  owner (``Process:client``, ``Timeout:datagram``) or its closure's
  qualname (``Network._arrival``).  Label normalisation strips instance
  digits so two same-shape runs produce the same category set.
- **Contention telemetry** -- :meth:`SimProfiler.record_lock_wait` feeds
  a per-``(node, key)`` heatmap of cumulative *simulated* lock wait (the
  hottest keys are what a calendar-queue or lock-splitting optimisation
  must attack first), and :meth:`SimProfiler.wait_for_graph` snapshots
  who-waits-behind-whom across every lock manager in the cluster.
- **The meter** -- events per wall second and wall seconds per simulated
  second, the two numbers the ``bench_sim_speed`` meta-benchmark gates.

Exports (collapsed-stack flamegraph text, pstats dump) live in
:mod:`repro.obs.export`; the ``profile`` CLI subcommand renders the
``--top N`` hot-handler table through ``write_report``.
"""

from __future__ import annotations

import time as _time
from typing import Callable

#: markers stripped from closure qualnames so lambdas fold into the
#: function that created them (``Process.__init__.<locals>.<lambda>``
#: profiles as ``Process.__init__``)
_LOCALS_MARKER = ".<locals>."


def _normalize_label(name: str) -> str:
    """Collapse an instance label into a category label.

    ``client7`` and ``client12`` are the same *kind* of handler; so are
    ``timeout(5.0)`` and ``timeout(80.0)``, and ``n1:driver`` and
    ``n2:driver``.  Strips a parenthesised suffix, then digits, then
    dangling separators -- purely lexical, so the mapping is
    deterministic and total.
    """
    label = name.split("(", 1)[0]
    label = "".join(ch for ch in label if not ch.isdigit())
    return label.strip(":_ ")


def handler_category(callback: Callable[[], None]) -> str:
    """The profiling category of one scheduled callback.

    Bound methods are attributed to their owner -- for simulation events
    that is the event type plus its normalised name label
    (``Timeout:datagram``, ``Process:client``, ``Event:lock``).  Plain
    functions and lambdas are attributed to the enclosing function of
    their qualname (``Network._arrival``, ``Timeout.__init__``).
    """
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        base = type(owner).__name__
        name = getattr(owner, "name", None)
        if isinstance(name, str) and name:
            label = _normalize_label(name)
            if label:
                return f"{base}:{label}"
        return base
    qualname = getattr(callback, "__qualname__", "")
    if not qualname:
        return type(callback).__name__
    return qualname.split(_LOCALS_MARKER, 1)[0]


class SimProfiler:
    """Wall-clock accounting for one cluster's event loop.

    Strictly passive: every record is a dict/float update on profiler-own
    state.  ``clock`` is injectable (tests pass a fake) and defaults to
    ``time.perf_counter``.
    """

    def __init__(self, ctx, clock: Callable[[], float] = _time.perf_counter
                 ) -> None:
        self.ctx = ctx
        self.engine = ctx.engine
        self._clock = clock
        #: handler category -> [executed count, cumulative wall seconds]
        self.handlers: dict[str, list] = {}
        #: (node, lock key repr) -> [wait count, cumulative simulated ms]
        self.lock_waits: dict[tuple[str, str], list] = {}
        self.steps = 0
        self.daemon_steps = 0
        self._wall_first: float | None = None
        self._wall_last: float | None = None
        self._sim_first: float | None = None
        self._sim_last: float | None = None
        #: the cluster network, for the message-churn snapshot section
        self.network = None

    # -- the engine hook ---------------------------------------------------------

    def run_step(self, callback: Callable[..., None], daemon: bool,
                 now: float, args: tuple = ()) -> None:
        """Execute ``callback(*args)`` under the wall clock (called by
        ``Engine.step``; exceptions propagate unchanged)."""
        start = self._clock()
        if self._wall_first is None:
            self._wall_first = start
            self._sim_first = now
        try:
            callback(*args)
        finally:
            end = self._clock()
            self._wall_last = end
            self._sim_last = now
            self.steps += 1
            if daemon:
                self.daemon_steps += 1
            category = handler_category(callback)
            stat = self.handlers.get(category)
            if stat is None:
                stat = self.handlers[category] = [0, 0.0]
            stat[0] += 1
            stat[1] += end - start

    # -- contention telemetry ----------------------------------------------------

    def record_lock_wait(self, node: str, key, wait_ms: float) -> None:
        """One finished lock wait (simulated ms; called by LockManager)."""
        heat_key = (node, str(key))
        stat = self.lock_waits.get(heat_key)
        if stat is None:
            stat = self.lock_waits[heat_key] = [0, 0.0]
        stat[0] += 1
        stat[1] += wait_ms

    def hottest_lock_keys(self, top: int = 10) -> list[dict]:
        """The contention heatmap: top-N lock keys by cumulative wait."""
        ranked = sorted(self.lock_waits.items(),
                        key=lambda item: (-item[1][1], item[0]))
        return [{"node": node, "key": key, "waits": count,
                 "wait_ms": wait_ms}
                for (node, key), (count, wait_ms) in ranked[:top]]

    def wait_for_graph(self) -> list[dict]:
        """A live who-waits-for-whom snapshot across every lock manager.

        One edge per queued waiter: ``waiter`` (tid) is queued for
        ``key`` on ``node`` behind ``holders``.  Registration happens in
        ``LockManager.__init__`` via ``ctx.lock_managers``, so managers
        of crashed-and-rebuilt nodes are covered too (their cleared
        tables simply contribute no edges).
        """
        edges: list[dict] = []
        for manager in getattr(self.ctx, "lock_managers", []):
            edges.extend(manager.wait_graph())
        return edges

    # -- the meter ---------------------------------------------------------------

    def wall_seconds(self) -> float:
        if self._wall_first is None or self._wall_last is None:
            return 0.0
        return self._wall_last - self._wall_first

    def sim_seconds(self) -> float:
        if self._sim_first is None or self._sim_last is None:
            return 0.0
        return (self._sim_last - self._sim_first) / 1000.0

    def events_per_wall_second(self) -> float:
        wall = self.wall_seconds()
        return self.steps / wall if wall > 0 else 0.0

    def wall_sec_per_sim_sec(self) -> float:
        sim = self.sim_seconds()
        return self.wall_seconds() / sim if sim > 0 else 0.0

    def meter(self) -> dict:
        """The live speed meter -- readable mid-run or after."""
        return {
            "events_executed": self.steps,
            "daemon_executed": self.daemon_steps,
            "wall_s": self.wall_seconds(),
            "sim_ms": (self._sim_last - self._sim_first)
            if self._sim_last is not None and self._sim_first is not None
            else 0.0,
            "events_per_wall_sec": self.events_per_wall_second(),
            "wall_sec_per_sim_sec": self.wall_sec_per_sim_sec(),
        }

    # -- snapshots ---------------------------------------------------------------

    def hot_handlers(self, top: int = 10) -> list[dict]:
        """Top-N handler categories by cumulative wall time."""
        ranked = sorted(self.handlers.items(),
                        key=lambda item: (-item[1][1], item[0]))
        total_wall = sum(stat[1] for stat in self.handlers.values())
        out = []
        for category, (count, wall_s) in ranked[:top]:
            out.append({
                "category": category,
                "count": count,
                "wall_s": wall_s,
                "share": wall_s / total_wall if total_wall > 0 else 0.0,
            })
        return out

    def engine_counters(self) -> dict:
        """The fabric churn section (always-on Engine counters)."""
        engine = self.engine
        return {
            "events_scheduled": engine.events_scheduled,
            "daemon_scheduled": engine.daemon_scheduled,
            "events_executed": engine.events_executed,
            "daemon_executed": engine.daemon_executed,
            "heap_high_water": engine.heap_high_water,
            "pending_now": engine.pending_count(),
        }

    def network_counters(self) -> dict:
        """Message churn: delivered vs dropped datagrams."""
        network = self.network
        if network is None:
            return {}
        return {
            "datagrams_sent": network.datagrams_sent,
            "datagrams_lost": network.datagrams_lost,
            "datagrams_blocked": network.datagrams_blocked,
            "datagrams_undeliverable": network.datagrams_undeliverable,
            "datagrams_duplicated": network.datagrams_duplicated,
            "datagrams_reordered": network.datagrams_reordered,
        }

    def snapshot(self) -> dict:
        """Everything, JSON-ready (wall fields are nondeterministic)."""
        return {
            "handlers": {category: {"count": count, "wall_s": wall_s}
                         for category, (count, wall_s)
                         in sorted(self.handlers.items())},
            "engine": self.engine_counters(),
            "network": self.network_counters(),
            "meter": self.meter(),
            "lock_contention": self.hottest_lock_keys(),
            "wait_for": self.wait_for_graph(),
        }


def render_profile(profiler: SimProfiler, top: int = 10) -> str:
    """The ``profile`` CLI report: meter, churn, hot handlers, heatmap."""
    from repro.perf.report import render_table

    meter = profiler.meter()
    sections = [
        "Simulator speed meter\n=====================\n"
        f"  events executed        {meter['events_executed']}\n"
        f"  wall seconds           {meter['wall_s']:.3f}\n"
        f"  simulated ms           {meter['sim_ms']:.1f}\n"
        f"  events / wall sec      {meter['events_per_wall_sec']:.0f}\n"
        f"  wall sec / sim sec     {meter['wall_sec_per_sim_sec']:.4f}",
    ]
    engine = profiler.engine_counters()
    churn_rows = [[name, str(value)] for name, value in engine.items()]
    network = profiler.network_counters()
    churn_rows.extend([name, str(value)] for name, value in network.items())
    sections.append(render_table("Fabric churn", ["counter", "value"],
                                 churn_rows))
    handlers = profiler.hot_handlers(top)
    if handlers:
        rows = [[h["category"], str(h["count"]),
                 f"{h['wall_s'] * 1000.0:.2f}", f"{h['share']:.1%}"]
                for h in handlers]
        sections.append(render_table(
            f"Hot handlers (top {top} by wall time)",
            ["category", "events", "wall ms", "share"], rows))
    heatmap = profiler.hottest_lock_keys(top)
    if heatmap:
        rows = [[h["node"], h["key"], str(h["waits"]),
                 f"{h['wait_ms']:.1f}"]
                for h in heatmap]
        sections.append(render_table(
            f"Lock contention heatmap (top {top} by cumulative wait)",
            ["node", "key", "waits", "wait ms (sim)"], rows))
    edges = profiler.wait_for_graph()
    if edges:
        rows = [[e["node"], e["key"], str(e["waiter"]), e["mode"],
                 ", ".join(e["holders"])]
                for e in edges]
        sections.append(render_table(
            "Wait-for graph (queued lock requests at snapshot time)",
            ["node", "key", "waiter", "mode", "behind holders"], rows))
    return "\n\n".join(sections)
