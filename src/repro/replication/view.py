"""The availability view: which peers this node currently trusts.

Fed by the PR 2 :class:`~repro.comm.failures.FailureDetector` through
the node's persistent ``fd_observers`` list, so the view survives the
node's own crash/rebuild cycles.  Three detector events matter:

- ``"suspect"`` -- the peer stopped answering probes.  It becomes
  unavailable and its *fail count* is bumped: any open transaction that
  wrote to it can no longer trust that site's in-memory lock and
  buffer state.
- ``"restart-observed"`` -- a pong arrived bearing a higher kernel
  epoch: the peer died and came back while we weren't looking.  It is
  available again, but the fail count bumps (its CC state was erased by
  the restart even if we never saw it down).
- ``"recovered"`` -- a false suspicion: the same epoch answered again.
  The peer is available and the fail count stays -- the *suspicion*
  already bumped it, and conservatively a transaction that wrote
  through the flap aborts (the detector cannot prove the silence was
  harmless).

Commit-time validation (:func:`validate_footprint`) compares the fail
counts recorded at access time against the current view: any difference
means the touched replica's volatile CC state may be gone, so the
transaction aborts rather than commit around a write a replica silently
dropped -- or around a read whose lock no longer protects it.
"""

from __future__ import annotations


class AvailabilityView:
    """One node's opinion of which peers are up, with failure epochs."""

    def __init__(self, local_node: str) -> None:
        self.local_node = local_node
        self._down: set[str] = set()
        self._fail_counts: dict[str, int] = {}

    # -- failure-detector observer ------------------------------------------------

    def observe(self, time_ms: float, local_node: str, event: str,
                peer: str) -> None:
        """``fd_observers`` hook (see FailureDetector)."""
        if event == "suspect":
            self._down.add(peer)
            self._fail_counts[peer] = self._fail_counts.get(peer, 0) + 1
        elif event == "restart-observed":
            self._down.discard(peer)
            self._fail_counts[peer] = self._fail_counts.get(peer, 0) + 1
        elif event == "recovered":
            self._down.discard(peer)

    # -- queries --------------------------------------------------------------------

    def available(self, node: str) -> bool:
        """Is ``node`` believed up?  The local node always is."""
        return node == self.local_node or node not in self._down

    def fail_count(self, node: str) -> int:
        """How many times ``node`` has been seen to fail (monotonic)."""
        return self._fail_counts.get(node, 0)

    def available_replicas(self, placement, keyspace: str) -> list[str]:
        """The key-space's replicas currently believed up, in placement
        order."""
        return [node for node in placement.replicas(keyspace)
                if self.available(node)]


def validate_footprint(view: AvailabilityView, placement,
                       footprint: dict,
                       epoch: int | None = None) -> str | None:
    """Commit-time validation of a transaction's replication footprint.

    ``footprint`` is gathered client-side by the router:
    ``{"written": {node: fail_count_at_first_write},
    "read": {node: fail_count_at_first_read},
    "keyspaces": {keyspace: [nodes written]}}``, plus -- when online
    reconfiguration is enabled -- ``"epoch"``, the placement epoch the
    transaction routed under.  Returns an abort reason, or None if the
    transaction may commit.

    Rule 1 (the RepCRec rule): a site failure erases its in-memory CC
    state, so a transaction that *touched* a since-failed replica must
    abort -- whether the replica is still down or already back (a
    changed fail count betrays the restart, and covers the
    suspect -> recovered -> suspect flap).  Plain reads are covered
    too: the failed site's read lock is erased with the rest of its CC
    state, so a concurrent writer could update the item at surviving
    copies and commit -- letting the reader also commit would be read
    skew, not single-copy serializability.

    Rule 2 (the post-recovery write barrier): if a replica of a written
    key-space is available *now* but missed the write (it was down or
    recovering when the write fanned out), committing would strand a
    stale copy that the catch-up merge may already have passed over.
    The transaction aborts; its retry writes to the recovered copy too.

    Rule 3 (the stale-epoch rule, online reconfiguration): a
    transaction that routed under one placement epoch must not commit
    under another.  A migration committed while the transaction was
    open may have re-homed a key-space it touched -- its writes fanned
    out to the *old* replica set, so committing could strand the newly
    installed copy stale (the mirror image of rule 2) or keep a
    dropped copy authoritative.  Conservative like rule 1: the epoch
    bump aborts every open stamped transaction, and retries route
    under the new map.
    """
    if epoch is not None and footprint.get("epoch", epoch) != epoch:
        return (f"placement epoch changed mid-transaction "
                f"({footprint['epoch']} -> {epoch})")
    for node, recorded in footprint.get("written", {}).items():
        if not view.available(node):
            return f"replica {node!r} failed after a write touched it"
        if view.fail_count(node) != recorded:
            return (f"replica {node!r} restarted after a write touched it "
                    f"(fail count {recorded} -> {view.fail_count(node)})")
    for node, recorded in footprint.get("read", {}).items():
        if not view.available(node):
            return f"replica {node!r} failed after serving a read"
        if view.fail_count(node) != recorded:
            return (f"replica {node!r} restarted after serving a read "
                    f"(fail count {recorded} -> {view.fail_count(node)})")
    if placement is not None:
        for keyspace, written in footprint.get("keyspaces", {}).items():
            written_set = set(written)
            for node in placement.replicas(keyspace):
                if view.available(node) and node not in written_set:
                    return (f"replica {node!r} of {keyspace!r} recovered "
                            "mid-transaction and missed a write")
    return None
