"""The replica side: versioned cells, read barrier, catch-up operations.

Replicated data servers store *versioned cells*: a plain tuple
``("v", version, value)`` where the version is the simulated instant the
write executed.  Versions are codec-safe (the WAL logs them unchanged)
and monotonic per cell -- the writer holds the cell's write lock from
the write to commit, so a later write always carries a later instant.
That monotonicity is what makes catch-up a safe *merge*: a recovering
replica applies a peer's cell only if the peer's version is newer, so
merging from a peer that is itself stale (or mid-catch-up) can never
regress a cell.

:class:`ReplicatedServerMixin` layers three things over a
:class:`~repro.servers.base.BaseDataServer` subclass:

- the post-recovery *read barrier*: while ``catchup_pending`` is set the
  ops named in ``GATED_READS`` are refused with
  :class:`~repro.errors.ReplicaUnavailable`, so clients fail over to a
  current copy.  Writes are *not* gated (a recovering copy must observe
  new writes or it would recover forever behind), and neither are the
  ``repl_*`` catch-up ops (two pending replicas may merge from each
  other after a total shard outage).
- ``repl_cells`` / ``repl_read_batch``: enumerate and copy the last
  committed value of each written cell (without queueing behind active
  writers), used by a peer's catch-up snapshot transaction.
- ``repl_apply_batch``: the versioned conditional merge, applied by the
  recovering node's local transaction under ordinary write locks and
  value logging (an aborted catch-up rolls back like any transaction).
"""

from __future__ import annotations

from repro.errors import ReplicaUnavailable
from repro.kernel.disk import PAGE_SIZE
from repro.locking.modes import READ, WRITE
from repro.txn.ids import TransactionID

#: versioned-cell tag; cells are ("v", version, value) tuples
CELL_TAG = "v"


def pack_cell(version: float, value: object) -> tuple:
    """A versioned cell as stored in the segment (and the WAL)."""
    return (CELL_TAG, float(version), value)


def unpack_cell(raw: object) -> tuple[float, object]:
    """``(version, value)`` of a stored cell.

    Unversioned contents (None, or cells written before replication was
    enabled) report version ``-1.0`` so any versioned write wins.
    """
    if (isinstance(raw, tuple) and len(raw) == 3 and raw[0] == CELL_TAG):
        return float(raw[1]), raw[2]
    return -1.0, raw


class ReplicatedServerMixin:
    """Mix into a data server (before the base class) to make it a replica."""

    #: user ops refused while this copy is catching up
    GATED_READS: tuple[str, ...] = ()
    #: cell width in segment bytes (offset granularity)
    CELL_SIZE = 4

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: read barrier: set on restart, cleared when catch-up completes
        self.catchup_pending = False

    def dispatch(self, op: str, body: dict, tid: TransactionID | None):
        if self.catchup_pending and op in self.GATED_READS:
            oid = self.for_update_oid(op, body)
            if oid is not None and tid is not None:
                # Serialization must survive the barrier.  Same-row
                # writers all lock the row at the first *up* copy in
                # placement order -- and this copy is up, merely
                # unreadable.  Take the write lock before refusing the
                # value; otherwise a contender arriving while the
                # barrier is raised would serialize at the next copy
                # while one arriving after it clears serializes here,
                # and their write fan-outs deadlock copy-against-copy.
                yield from self.library.lock_object(tid, oid, WRITE)
            raise ReplicaUnavailable(
                f"{self.name} on {self.node.name}: copy is catching up "
                f"and cannot serve {op!r}")
        result = yield from super().dispatch(op, body, tid)
        return result

    def for_update_oid(self, op: str, body: dict):
        """The cell a ``*_for_update`` op would write-lock, or None.

        Subclasses map their for-update ops here so the read barrier can
        keep the lock-site order consistent while refusing the read.
        """
        return None

    # -- catch-up support -----------------------------------------------------------

    def _offset_oid(self, offset: int):
        return self.library.create_object_id(self.base_va + offset,
                                             self.CELL_SIZE)

    def written_offsets(self) -> list[int]:
        """Every segment offset holding a value, durable or resident.

        The union of the non-volatile image and the resident page frames
        (which may hold committed values not yet written back), sorted
        so lock acquisition has a deterministic intra-server order.
        """
        offsets: set[int] = set()
        for data in self.node.disk.pages_of_segment(self.segment_id).values():
            offsets.update(offset for offset, value in data.items()
                           if value is not None)
        for segment_id, page in self.node.vm.resident_pages():
            if segment_id != self.segment_id:
                continue
            frame = self.node.vm.frame(segment_id, page)
            for offset, value in frame.data.items():
                if value is None:
                    offsets.discard(offset)
                else:
                    offsets.add(offset)
        return sorted(offsets)

    def op_repl_cells(self, body: dict, tid: TransactionID):
        """Enumerate written cells (no locks: a hint for the snapshot)."""
        return {"offsets": self.written_offsets()}
        yield  # pragma: no cover - generator protocol

    def op_repl_read_batch(self, body: dict, tid: TransactionID):
        """Read one chunk of cells for a peer's catch-up snapshot.

        Each cell is read via
        :meth:`~repro.server.library.DataServerLibrary.read_committed`,
        which never queues behind an active writer (the writer's first
        pre-image *is* the committed value).  The versioned merge does
        not need a serializable snapshot: a cell that moves on after
        the read carries a newer version and the stale copy loses the
        conditional apply, and a writer whose fan-out missed the
        recovering copy fails footprint validation at commit.  Only a
        *prepared* (in-doubt) holder forces a locked read -- bounded by
        ``lock_timeout_ms`` from the request so the chunk fails fast
        and retries rather than parking behind the in-doubt resolution.
        """
        timeout_ms = body.get("lock_timeout_ms")
        cells: dict[int, object] = {}
        for offset in sorted(body["offsets"]):
            oid = self._offset_oid(offset)
            ok, value = yield from self.library.read_committed(oid)
            if not ok:
                yield from self.library.lock_object(tid, oid, READ,
                                                    timeout_ms=timeout_ms)
                value = yield from self.library.read_object(oid)
                self.library.locks.release(tid, oid)
            cells[offset] = value
        return {"cells": cells}

    def op_repl_apply_batch(self, body: dict, tid: TransactionID):
        """Merge a peer snapshot: write each cell iff the peer's version
        is newer than ours (under ordinary write locks + value logging).

        The caller sets ``priority`` so the merge's write locks queue at
        the head of each cell's wait queue: catch-up applies hold a cell
        for one read-compare-write, and waiting a full convoy's turn per
        hot cell would keep the read barrier up for the convoy's
        lifetime (catch-up sends one cell per apply transaction for the
        same reason -- never holding one cell while waiting on another).
        """
        timeout_ms = body.get("lock_timeout_ms")
        priority = bool(body.get("priority"))
        applied = 0
        pages: set[int] = set()
        for offset in sorted(body["cells"]):
            peer_raw = body["cells"][offset]
            if peer_raw is None:
                continue
            oid = self._offset_oid(offset)
            yield from self.library.lock_object(tid, oid, WRITE,
                                                timeout_ms=timeout_ms,
                                                priority=priority)
            local_raw = yield from self.library.read_object(oid)
            peer_version, _ = unpack_cell(peer_raw)
            local_version, _ = unpack_cell(local_raw)
            if peer_version <= local_version:
                continue
            yield from self.library.pin_and_buffer(tid, oid)
            yield from self.library.write_object(oid, peer_raw)
            yield from self.library.log_and_unpin(tid, oid)
            applied += 1
            pages.add(offset // PAGE_SIZE)
        return {"applied": applied, "pages": len(pages)}
