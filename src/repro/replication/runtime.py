"""Per-node replication runtime: availability view, validation, catch-up.

One :class:`ReplicaRuntime` hangs off each :class:`~repro.core.facility
.TabsNode` when ``config.replication.enabled``.  Like the node's
``fd_observers`` list it is created once and *survives* crash/rebuild
cycles -- the availability view is knowledge about peers, not volatile
node state, and losing it on every local restart would blind commit-time
validation exactly when it matters (a node that restarts mid-run must
still abort transactions that wrote to peers which failed meanwhile).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.replication.server import ReplicatedServerMixin
from repro.replication.view import AvailabilityView, validate_footprint

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.facility import TabsNode
    from repro.replication.placement import PlacementMap


class ReplicaRuntime:
    """Replication state and hooks for one TABS node."""

    def __init__(self, tabs_node: "TabsNode") -> None:
        self.tabs_node = tabs_node
        self.config = tabs_node.config.replication
        self.view = AvailabilityView(tabs_node.name)
        #: assigned by TabsCluster.set_placement once the workload builder
        #: has decided the sharding
        self.placement: "PlacementMap | None" = None
        tabs_node.fd_observers.append(self.view.observe)

    # -- commit-time validation (called by the Transaction Manager) -------------

    def validate(self, footprint: dict) -> str | None:
        """Abort reason for a transaction's replication footprint, or
        None if it may commit."""
        return validate_footprint(self.view, self.placement, footprint)

    # -- recovery hooks (called by TabsNode.recovery_generator) -----------------

    def _replicated(self, server) -> bool:
        return (isinstance(server, ReplicatedServerMixin)
                and self.placement is not None
                and server.name in self.placement
                and len(self.placement.replicas(server.name)) > 1)

    def mark_catchup_pending(self) -> None:
        """Raise the read barrier on every replicated server -- called
        after a restart re-creates the servers, before they serve."""
        for server in self.tabs_node.servers.values():
            if self._replicated(server):
                server.catchup_pending = True

    def spawn_catchup(self) -> None:
        """Start one catch-up process per pending server -- called once
        crash recovery completes and the node serves requests again."""
        from repro.replication.catchup import catchup_server

        for server in self.tabs_node.servers.values():
            if getattr(server, "catchup_pending", False):
                self.tabs_node.node.spawn(
                    catchup_server(self, server),
                    name=f"catchup:{server.name}", defused=True)
