"""Per-node replication runtime: availability view, validation, catch-up.

One :class:`ReplicaRuntime` hangs off each :class:`~repro.core.facility
.TabsNode` when ``config.replication.enabled``.  Like the node's
``fd_observers`` list it is created once and *survives* crash/rebuild
cycles -- the availability view is knowledge about peers, not volatile
node state, and losing it on every local restart would blind commit-time
validation exactly when it matters (a node that restarts mid-run must
still abort transactions that wrote to peers which failed meanwhile).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.replication.server import ReplicatedServerMixin
from repro.replication.view import AvailabilityView, validate_footprint

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.facility import TabsNode
    from repro.replication.placement import PlacementMap


class ReplicaRuntime:
    """Replication state and hooks for one TABS node."""

    def __init__(self, tabs_node: "TabsNode") -> None:
        self.tabs_node = tabs_node
        self.config = tabs_node.config.replication
        self.view = AvailabilityView(tabs_node.name)
        #: assigned by TabsCluster.set_placement once the workload builder
        #: has decided the sharding (property: installing it also primes
        #: the per-shard available-copies gauges)
        self._placement: "PlacementMap | None" = None
        #: placement epoch this node currently routes under; bumped by
        #: :meth:`install_epoch` when online reconfiguration commits a
        #: migration (0 forever when reconfiguration is off)
        self.epoch = 0
        #: key-spaces whose available-copies gauge this node last set --
        #: so a shard migrated *away* zeroes its gauge instead of
        #: reporting a stale copy count forever
        self._gauged: set[str] = set()
        # Order matters: the view must absorb the detector event before
        # the gauge refresh reads it.
        tabs_node.fd_observers.append(self.view.observe)
        tabs_node.fd_observers.append(self._observe_availability)

    @property
    def placement(self) -> "PlacementMap | None":
        return self._placement

    @placement.setter
    def placement(self, placement: "PlacementMap | None") -> None:
        self._placement = placement
        self.refresh_copy_gauges()

    def install_epoch(self, epoch: int, placement: "PlacementMap") -> None:
        """Adopt a new placement epoch (online reconfiguration).

        Refreshes the copy gauges for the new map -- including zeroing
        the gauges of key-spaces that just migrated away -- and records
        the epoch this node now stamps transactions with.
        """
        self.epoch = epoch
        self.placement = placement
        self.tabs_node.ctx.metrics.gauge(
            self.tabs_node.name, "reconfig.placement_epoch").set(epoch)

    def _observe_availability(self, time_ms: float, local_node: str,
                              event: str, peer: str) -> None:
        """``fd_observers`` hook: any availability change moves gauges."""
        if event in ("suspect", "restart-observed", "recovered"):
            self.refresh_copy_gauges()

    def refresh_copy_gauges(self) -> None:
        """Per-shard redundancy as this node sees it:
        ``replication.available_copies[keyspace]`` for each locally
        hosted key-space."""
        if self._placement is None:
            return
        metrics = self.tabs_node.ctx.metrics
        local = self.tabs_node.name
        hosted = self._placement.keyspaces_on(local)
        # A key-space that moved away must not keep reporting its last
        # copy count: zero the gauge it primed while hosted here.
        for keyspace in sorted(self._gauged.difference(hosted)):
            metrics.gauge(
                local, f"replication.available_copies[{keyspace}]").set(0)
        self._gauged = set(hosted)
        for keyspace in hosted:
            copies = len(self.view.available_replicas(self._placement,
                                                      keyspace))
            metrics.gauge(
                local, f"replication.available_copies[{keyspace}]"
            ).set(copies)

    # -- commit-time validation (called by the Transaction Manager) -------------

    def validate(self, footprint: dict) -> str | None:
        """Abort reason for a transaction's replication footprint, or
        None if it may commit."""
        reason = validate_footprint(self.view, self.placement, footprint,
                                    epoch=self.epoch)
        if reason is not None and reason.startswith("placement epoch"):
            self.tabs_node.ctx.metrics.counter(
                self.tabs_node.name, "reconfig.stale_epoch_abort").inc()
        return reason

    # -- recovery hooks (called by TabsNode.recovery_generator) -----------------

    def _replicated(self, server) -> bool:
        # The local-replica check matters under reconfiguration: a node
        # may still host the *orphaned* copy of a key-space that
        # migrated away (or whose migration rolled back) -- placement no
        # longer routes reads here, so neither barrier nor catch-up
        # applies to it.
        return (isinstance(server, ReplicatedServerMixin)
                and self.placement is not None
                and server.name in self.placement
                and self.tabs_node.name
                in self.placement.replicas(server.name)
                and len(self.placement.replicas(server.name)) > 1)

    def mark_catchup_pending(self) -> None:
        """Raise the read barrier on every replicated server -- called
        after a restart re-creates the servers, before they serve."""
        for server in self.tabs_node.servers.values():
            if self._replicated(server):
                server.catchup_pending = True

    def spawn_catchup(self) -> None:
        """Start one catch-up process per pending server -- called once
        crash recovery completes and the node serves requests again."""
        from repro.replication.catchup import catchup_server

        for server in self.tabs_node.servers.values():
            if getattr(server, "catchup_pending", False):
                self.tabs_node.node.spawn(
                    catchup_server(self, server),
                    name=f"catchup:{server.name}", defused=True)
