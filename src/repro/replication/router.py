"""Write-all-available / read-any-available routing for applications.

:class:`ReplicatedApp` wraps an :class:`~repro.app.library
.ApplicationLibrary` with the available-copies client protocol:

- **reads** go to any available copy, failing over down the key-space's
  placement order when a replica is down, unreachable, or refuses with
  the post-recovery read barrier (each hop counts
  ``replication.read_failover``);
- **read-for-update** (the read half of a read-modify-write) always
  locks the *first* available copy in placement order, so two
  transactions updating the same cell serialize at one site; the
  touched node is recorded in the transaction's footprint because a
  site failure would erase that write lock;
- **writes** fan out to *all* available copies (``write_all``); writing
  fewer copies than the placement lists counts
  ``replication.write_all_degraded``.

The router records a *footprint* per transaction -- which nodes
received writes, which nodes served plain reads (each with the failure
count observed at first touch), and which key-spaces were written
where -- and ships it with ``EndTransaction``.  The Transaction
Manager validates it against the current availability view before
running 2PC (see :func:`~repro.replication.view.validate_footprint`):
a site failure erases read locks as well as write locks, so reads from
a since-failed copy abort at commit too.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import (
    CommunicationError,
    LockTimeout,
    LookupFailed,
    ReplicaUnavailable,
    TransactionAborted,
)
from repro.txn.ids import TransactionID

#: per-target failures that mean "try another copy", not "give up"
_FAILOVER_ERRORS = (ReplicaUnavailable, LookupFailed, CommunicationError)


class ReplicatedApp:
    """Transaction control plus replica routing for one application."""

    def __init__(self, cluster, node_name: str) -> None:
        if cluster.placement is None:
            raise ReplicaUnavailable(
                "cluster has no placement map (replication not built)")
        tabs_node = cluster.node(node_name)
        if tabs_node.replication is None:
            raise ReplicaUnavailable(
                f"node {node_name!r} runs without a replication runtime")
        self.cluster = cluster
        self.node_name = node_name
        self.app = cluster.application(node_name)
        self.ctx = self.app.ctx
        self._runtime = tabs_node.replication
        self.view = tabs_node.replication.view
        #: stamp transactions with the placement epoch they route under
        #: (commit-time rule 3); off by default so replication-only
        #: message bodies stay byte-identical to PR 7
        self._stamp_epoch = tabs_node.config.reconfig.enabled
        #: tid -> {"written": {node: fail_count},
        #:         "read": {node: fail_count}, "keyspaces": {ks: set}}
        self._footprints: dict[TransactionID, dict] = {}

    @property
    def placement(self):
        """The placement currently installed on the home node's runtime.

        A property, not a construction-time snapshot: online
        reconfiguration installs successor epochs mid-run, and an open
        app must route by the live map (stale routing would be caught at
        commit by the epoch rule anyway -- this avoids the pointless
        abort storm).
        """
        placement = self._runtime.placement
        if placement is None:  # pragma: no cover - guarded in __init__
            raise ReplicaUnavailable(
                f"node {self.node_name!r} has no placement installed")
        return placement

    # -- transaction control ----------------------------------------------------

    def begin_transaction(self):
        tid = yield from self.app.begin_transaction()
        self._footprints[tid] = self._new_footprint()
        return tid

    def end_transaction(self, tid: TransactionID):
        footprint = self._footprints.pop(tid, None)
        extra = None
        if footprint and (footprint["written"] or footprint["read"]):
            shipped = {
                "written": dict(footprint["written"]),
                "read": dict(footprint["read"]),
                "keyspaces": {keyspace: sorted(nodes) for keyspace, nodes
                              in footprint["keyspaces"].items()}}
            if "epoch" in footprint:
                shipped["epoch"] = footprint["epoch"]
            extra = {"replication": shipped}
        committed = yield from self.app.end_transaction(tid, extra=extra)
        return committed

    def abort_transaction(self, tid: TransactionID, reason: str = ""):
        self._footprints.pop(tid, None)
        yield from self.app.abort_transaction(tid, reason=reason)

    def run_transaction(self, body_fn: Callable, retries: int = 0,
                        backoff_ms: float = 200.0):
        """Begin, run ``body_fn(tid)``, commit; jittered retries on abort
        (mirrors :meth:`ApplicationLibrary.run_transaction`)."""
        from repro.sim import Timeout

        attempt = 0
        while True:
            tid = yield from self.begin_transaction()
            try:
                result = yield from body_fn(tid)
            except Exception as error:
                yield from self.abort_transaction(tid, reason=repr(error))
                retryable = isinstance(error, (TransactionAborted,
                                               LockTimeout,
                                               ReplicaUnavailable))
                if retryable and attempt < retries:
                    attempt += 1
                    yield Timeout(self.ctx.engine,
                                  self.ctx.random.uniform(
                                      0.0, backoff_ms * attempt))
                    continue
                raise
            committed = yield from self.end_transaction(tid)
            if committed:
                return result
            if attempt >= retries:
                raise TransactionAborted(tid, "commit failed")
            attempt += 1

    # -- routed operations ------------------------------------------------------

    def _counter(self, name: str):
        return self.ctx.metrics.counter(self.node_name, name)

    def _new_footprint(self) -> dict:
        footprint: dict = {"written": {}, "read": {}, "keyspaces": {}}
        if self._stamp_epoch:
            # The epoch at first touch is the one the transaction routed
            # under; commit-time rule 3 aborts it if a migration moved
            # the map meanwhile.
            footprint["epoch"] = self._runtime.epoch
        return footprint

    def _footprint(self, tid: TransactionID) -> dict:
        footprint = self._footprints.get(tid)
        if footprint is None:
            footprint = self._footprints[tid] = self._new_footprint()
        return footprint

    def _record_write(self, tid: TransactionID, node: str) -> None:
        # setdefault: the count at *first* touch is the binding one -- a
        # replica that restarts between two writes of the same
        # transaction must fail validation, not refresh its entry.
        self._footprint(tid)["written"].setdefault(
            node, self.view.fail_count(node))

    def _record_read(self, tid: TransactionID, node: str) -> None:
        self._footprint(tid)["read"].setdefault(
            node, self.view.fail_count(node))

    def read(self, keyspace: str, op: str, body: dict,
             tid: TransactionID, for_update: bool = False):
        """Invoke a read op on any available copy of ``keyspace``.

        The serving node is always recorded in the footprint: a site
        failure erases read locks too, so a since-failed copy's read
        must abort at commit or a concurrent writer committing at the
        surviving copies would give the reader read skew.  With
        ``for_update`` the op is expected to take a *write* lock and
        the node is recorded in the written set instead -- an erased
        write lock would permit a lost update, and rule 1 covers both
        maps identically.  Serialization survives failover because every
        contender walks the same placement order and sees the same
        refusals, so same-cell writers lock at the same site; a lock
        *conflict* (:class:`~repro.errors.LockTimeout`) deliberately
        does not fail over -- shopping past a held lock is exactly the
        two-writers-two-sites race the protocol exists to prevent.
        """
        replicas = self.placement.replicas(keyspace)
        candidates = [node for node in replicas if self.view.available(node)]
        if not candidates:
            # The view can be stale (e.g. every peer suspected during a
            # partition that just healed): try them all before giving up.
            candidates = list(replicas)
        last_error: Exception | None = None
        for node in candidates:
            try:
                ref = yield from self.app.lookup_one(keyspace,
                                                     node_name=node)
                result = yield from self.app.call(ref, op, body, tid)
            except _FAILOVER_ERRORS as error:
                self._counter("replication.read_failover").inc()
                last_error = error
                continue
            if for_update:
                self._record_write(tid, node)
            else:
                self._record_read(tid, node)
            return result
        raise ReplicaUnavailable(
            f"no available copy of {keyspace!r} could serve {op!r} "
            f"(tried {candidates!r})") from last_error

    def write_all(self, keyspace: str, op: str, body: dict,
                  tid: TransactionID):
        """Invoke a write op on *all* available copies of ``keyspace``.

        Returns the last copy's reply (they are deterministic writes of
        the same value).  A copy that fails mid-call raises -- per the
        available-copies rule the transaction must abort anyway, and
        commit-time validation backstops the case where the failure is
        only noticed later.
        """
        replicas = self.placement.replicas(keyspace)
        targets = [node for node in replicas if self.view.available(node)]
        if not targets:
            # Mirror read(): the view can be stale (every peer suspected
            # during a partition that just healed), so try every
            # placement replica rather than refusing outright.  Safe
            # either way -- a copy that is truly down raises mid-call
            # and aborts the transaction, and one that was merely
            # suspected records its current fail count, which rule 1
            # re-checks at commit.
            targets = list(replicas)
        if len(targets) < len(replicas):
            self._counter("replication.write_all_degraded").inc()
        footprint = self._footprint(tid)
        result = None
        for node in targets:
            ref = yield from self.app.lookup_one(keyspace, node_name=node)
            result = yield from self.app.call(ref, op, body, tid)
            self._record_write(tid, node)
            footprint["keyspaces"].setdefault(keyspace, set()).add(node)
        return result
