"""Replica catch-up: merge current versions from live peers.

A recovering replica's segment is durably consistent after log replay,
but *stale*: every write that committed on its peers while it was down
is missing.  Until it has merged current versions it refuses reads (the
``catchup_pending`` barrier in
:class:`~repro.replication.server.ReplicatedServerMixin`).

The merge runs as a *stream of small transaction pairs* per peer, never
one big one:

1. a *listing* transaction asks the peer which cells it has written
   (``repl_cells`` -- a catalogue read, no data locks);
2. for each chunk of at most :data:`CATCHUP_CHUNK_CELLS` offsets, a
   *snapshot* transaction on the peer copies the raw (versioned)
   values cell by cell under short read locks (each released as soon
   as the value is copied), followed by an *apply* transaction on the
   recovering node only, which write-locks the local cells and
   overwrites each iff the peer's version is newer
   (``repl_apply_batch``).

Chunking matters for liveness, not just politeness: a snapshot that
read-locked the whole key-space in one transaction would collide with
every concurrent writer of any cell -- including the hot branch row --
and convoy the entire workload behind lock timeouts for the duration
of the merge.  A cell's snapshot read waits only for that cell's
current holder, and never makes a writer wait behind the rest of the
chunk.

Splitting them costs atomicity -- the apply may run long after the
snapshot -- but versioned cells make that safe: a cell that moved on
between snapshot and apply has a newer local version and the stale
snapshot value is skipped, and the commit-time write barrier
(:func:`~repro.replication.view.validate_footprint` rule 2) aborts any
transaction whose write fanned out while this copy was still catching
up.  What the split *buys* is liveness: a single distributed
transaction spanning both nodes could deadlock against the mirror-image
catch-up when two replicas recover from a total shard outage (each
holding write locks at home while awaiting read locks at the other),
and a crash mid-2PC would leave the snapshot's locks in doubt on the
surviving peer.

The merge visits *all* peers, so after a total outage the union of
surviving versions wins even if each survivor holds a different suffix.
A peer that stays unreachable past the retry budget is skipped
(``replication.catchup_skipped_peer``); if no peer could be merged at
all the replica serves from its own recovered state
(``replication.catchup_selfserve``) -- with every copy freshly
recovered there is no fresher site to defer to.
"""

from __future__ import annotations

from repro.app.library import ApplicationLibrary
from repro.errors import (
    CommunicationError,
    LockTimeout,
    LookupFailed,
    ReplicaUnavailable,
    TransactionAborted,
)
from repro.kernel.disk import PAGE_SIZE
from repro.sim import Timeout

#: cells per snapshot/apply transaction pair: small enough that a chunk
#: only ever waits on a handful of concurrent writers
CATCHUP_CHUNK_CELLS = 32

#: failures a merge chunk retries: the peer dying or unreachable
#: mid-call, a lock timed out behind a hot-cell convoy, a catch-up
#: transaction aborted (RuntimeError is the helpers' own
#: commit-refused signal).  Anything else is a code defect and
#: propagates -- silently skipping the peer and dropping the read
#: barrier would degrade a bug into serving stale data.
_RETRYABLE_ERRORS = (CommunicationError, LookupFailed, LockTimeout,
                     ReplicaUnavailable, TransactionAborted, RuntimeError)


def catchup_server(runtime, server):
    """Catch one recovering replicated server up from its peers
    (generator; spawned on the recovering node)."""
    tabs_node = runtime.tabs_node
    ctx = tabs_node.ctx
    placement = runtime.placement
    local = tabs_node.name
    peers = [node for node in placement.replicas(server.name)
             if node != local]
    started = ctx.now
    span_id = 0
    if ctx.tracer is not None:
        span_id = ctx.tracer.begin("replica.catchup", local, "REPL",
                                   server=server.name)
    app = ApplicationLibrary(tabs_node.node, tabs_node.network)
    merged_peers = 0
    applied_pages = 0
    for peer in sorted(peers):
        pages = yield from _merge_from_peer(runtime, app, server, peer)
        if pages is None:
            ctx.metrics.counter(local,
                                "replication.catchup_skipped_peer").inc()
        else:
            merged_peers += 1
            applied_pages += pages
    if merged_peers == 0:
        # No fresher copy reachable: serve from the recovered local
        # state.  A known window -- if a fresher peer was merely
        # unreachable, reads here may be stale until it returns and the
        # next recovery merges it.  The convergence audit bounds it.
        ctx.metrics.counter(local, "replication.catchup_selfserve").inc()
    server.catchup_pending = False
    # How long this shard's read barrier stayed up -- the per-shard
    # degraded-service window the availability bench cares about.
    ctx.metrics.histogram(local, "replica.catchup_wait_ms").observe(
        ctx.now - started)
    if applied_pages:
        ctx.metrics.counter(local,
                            "replica.catchup_pages").inc(applied_pages)
    if span_id and ctx.tracer is not None:
        ctx.tracer.end(span_id, pages=applied_pages, peers=merged_peers)


def _merge_from_peer(runtime, app, server, peer):
    """Snapshot ``peer`` and apply locally; returns pages applied, or
    None if the peer stayed unmergeable past the retry budget.

    Progress survives failures: a chunk that dies (a lock time-out
    behind a hot-row convoy, the peer crashing mid-merge) is retried
    from *that chunk*, not from the top, and every completed chunk
    resets the attempt counter.  The budget therefore bounds
    consecutive failures on one chunk rather than the whole merge --
    restarting a large key-space from scratch under live write traffic
    could otherwise thrash forever and pin the read barrier up.
    """
    ctx = runtime.tabs_node.ctx
    config = runtime.config
    attempt = 0
    offsets: list[int] | None = None
    start = 0
    pages = 0
    while True:
        if attempt:
            if attempt >= config.catchup_max_retries:
                return None
            yield Timeout(ctx.engine,
                          ctx.random.uniform(0.5, 1.0)
                          * config.catchup_retry_ms * attempt)
        if not runtime.view.available(peer):
            attempt += 1
            continue
        try:
            if offsets is None:
                offsets = yield from _list_peer(app, server.name, peer,
                                                config)
            while start < len(offsets):
                chunk = offsets[start:start + CATCHUP_CHUNK_CELLS]
                cells = yield from _snapshot_peer(app, server.name, peer,
                                                  chunk, config)
                pages += yield from _apply_local(app, server, cells, config)
                start += CATCHUP_CHUNK_CELLS
                attempt = 0  # forward progress refreshes the budget
        except _RETRYABLE_ERRORS:
            attempt += 1
            continue
        return pages


def _list_peer(app, server_name, peer, config):
    """The catalogue read: which cells has the peer written?"""
    tid = yield from app.begin_transaction()
    try:
        ref = yield from app.lookup_one(server_name, node_name=peer)
        listing = yield from app.call(
            ref, "repl_cells", {}, tid,
            timeout_ms=config.catchup_call_timeout_ms)
    except Exception:
        yield from app.abort_transaction(tid, reason="catchup listing")
        raise
    committed = yield from app.end_transaction(tid)
    if not committed:
        raise RuntimeError(f"catchup listing of {server_name!r} on "
                           f"{peer!r} aborted")
    return listing["offsets"]


def _snapshot_peer(app, server_name, peer, offsets, config):
    """Copy one chunk of the peer's written cells.

    Both bounds are deliberately tight: the snapshot's cell locks time
    out at ``catchup_lock_timeout_ms`` (fail fast behind a convoyed hot
    cell, retry in a gap) and the call itself at
    ``catchup_call_timeout_ms`` (a peer dying mid-snapshot must not
    leave the barrier up while a 30 s RPC time-out runs down).
    """
    tid = yield from app.begin_transaction()
    try:
        ref = yield from app.lookup_one(server_name, node_name=peer)
        reply = yield from app.call(
            ref, "repl_read_batch",
            {"offsets": offsets,
             "lock_timeout_ms": config.catchup_lock_timeout_ms}, tid,
            timeout_ms=config.catchup_call_timeout_ms)
    except Exception:
        yield from app.abort_transaction(tid, reason="catchup snapshot")
        raise
    committed = yield from app.end_transaction(tid)
    if not committed:
        raise RuntimeError(f"catchup snapshot of {server_name!r} on "
                           f"{peer!r} aborted")
    return reply["cells"]


def _apply_local(app, server, cells, config):
    """Transaction 2: versioned conditional merge into the local copy.

    One cell per transaction, with a priority (head-of-queue) write
    lock: the apply never holds one cell while waiting on another, and
    waits only for a hot cell's *current* holder rather than the whole
    convoy behind it.  A cell that fails retries with the chunk; cells
    already merged re-apply as no-ops (the version check).
    """
    pages: set[int] = set()
    for offset in sorted(cells):
        if cells[offset] is None:
            continue
        tid = yield from app.begin_transaction()
        try:
            ref = yield from app.lookup_one(server.name,
                                            node_name=server.node.name)
            reply = yield from app.call(
                ref, "repl_apply_batch",
                {"cells": {offset: cells[offset]}, "priority": True}, tid)
        except Exception:
            yield from app.abort_transaction(tid, reason="catchup apply")
            raise
        committed = yield from app.end_transaction(tid)
        if not committed:
            raise RuntimeError(f"catchup apply into {server.name!r} aborted")
        if reply["applied"]:
            pages.add(offset // PAGE_SIZE)
    return len(pages)
