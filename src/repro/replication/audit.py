"""Single-copy-serializability audits for replicated runs.

The replicated cluster must be indistinguishable from a single-copy
one.  The workload-level conservation audits already check the *logical*
ledger; this module adds the replica-level check: after the run drains
and every recovering copy has caught up, all replicas of a key-space
must agree on every cell's *value* (versions may differ in the legacy
``-1`` case, values may not).
"""

from __future__ import annotations

from repro.recovery.audit import AuditViolation
from repro.replication.server import unpack_cell


def replica_cells(tabs_node, server_name: str) -> dict[int, object]:
    """The current cell image of one replica: the non-volatile segment
    overlaid with resident page frames (which may be fresher)."""
    segment_id = f"{tabs_node.name}:{server_name}"
    cells: dict[int, object] = {}
    for data in tabs_node.node.disk.pages_of_segment(segment_id).values():
        for offset, value in data.items():
            if value is not None:
                cells[offset] = value
    for seg, page in tabs_node.node.vm.resident_pages():
        if seg != segment_id:
            continue
        frame = tabs_node.node.vm.frame(seg, page)
        for offset, value in frame.data.items():
            if value is None:
                cells.pop(offset, None)
            else:
                cells[offset] = value
    return cells


def audit_replica_convergence(cluster) -> list[AuditViolation]:
    """Every replica of every key-space agrees on every cell's value."""
    placement = cluster.placement
    violations: list[AuditViolation] = []
    if placement is None:
        return violations
    for keyspace in placement.keyspaces():
        replicas = placement.replicas(keyspace)
        if len(replicas) < 2:
            continue
        images = {node: replica_cells(cluster.node(node), keyspace)
                  for node in replicas}
        offsets: set[int] = set()
        for image in images.values():
            offsets.update(image)
        for offset in sorted(offsets):
            values = {node: unpack_cell(image.get(offset))[1]
                      for node, image in images.items()}
            if len(set(values.values())) > 1:
                violations.append(AuditViolation(
                    "replica-divergence",
                    detail=f"{keyspace!r} offset {offset}: {values!r}"))
    return violations
