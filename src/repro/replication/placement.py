"""Replica placement: which nodes hold copies of which key-space.

A *key-space* is a logical shard named after its data server (every
replica node runs a server of that name over its own recoverable
segment, so segment ids ``{node}:{name}`` stay unique).  A
:class:`PlacementMap` is immutable; a *run* changes placement by
installing a successor map under a new epoch number
(:class:`~repro.reconfig.epoch.PlacementEpoch`, ROADMAP item 5) --
workload builders still decide the initial map once at construction.

The replica list of a key-space is *ordered*: the first entry is the
shard's home (anchor) node.  Routing exploits the order for determinism
-- read-modify-write reads always lock the first available copy, so two
transactions contending for the same cell serialize at one site instead
of deadlocking across two.
"""

from __future__ import annotations

from repro.errors import TabsError


class PlacementMap:
    """An immutable key-space -> ordered replica-node-tuple mapping."""

    def __init__(self, assignments: dict[str, tuple[str, ...]]) -> None:
        if not assignments:
            raise TabsError("placement map has no key-spaces")
        self._assignments: dict[str, tuple[str, ...]] = {}
        for keyspace, nodes in assignments.items():
            nodes = tuple(nodes)
            if not nodes:
                raise TabsError(f"key-space {keyspace!r} has no replicas")
            if len(set(nodes)) != len(nodes):
                raise TabsError(f"key-space {keyspace!r} lists a replica "
                                "node twice")
            self._assignments[keyspace] = nodes

    def __contains__(self, keyspace: str) -> bool:
        return keyspace in self._assignments

    def __len__(self) -> int:
        return len(self._assignments)

    def replicas(self, keyspace: str) -> tuple[str, ...]:
        """The ordered replica nodes of ``keyspace`` (anchor first)."""
        try:
            return self._assignments[keyspace]
        except KeyError:
            raise TabsError(f"no placement for key-space "
                            f"{keyspace!r}") from None

    def keyspaces(self) -> list[str]:
        return list(self._assignments)

    def assignments(self) -> dict[str, tuple[str, ...]]:
        """A mutable copy of the full mapping (for building successors)."""
        return dict(self._assignments)

    def keyspaces_on(self, node: str) -> list[str]:
        """Every key-space with a copy on ``node``."""
        return [keyspace for keyspace, nodes in self._assignments.items()
                if node in nodes]

    def nodes(self) -> list[str]:
        """Every node holding at least one replica, sorted."""
        seen: set[str] = set()
        for nodes in self._assignments.values():
            seen.update(nodes)
        return sorted(seen)

    @classmethod
    def ring(cls, keyspaces: list[str], nodes: list[str],
             replication_factor: int,
             anchors: dict[str, int] | None = None) -> "PlacementMap":
        """Ring placement: each key-space anchors at a node and its extra
        copies go to the next nodes around the ring.

        ``anchors`` maps key-space -> node index (e.g. a branch's home
        node); unlisted key-spaces anchor round-robin by position.  The
        factor is clamped to the node count -- a copy per node is full
        replication.
        """
        if not nodes:
            raise TabsError("ring placement needs at least one node")
        factor = max(1, min(replication_factor, len(nodes)))
        anchors = anchors or {}
        assignments: dict[str, tuple[str, ...]] = {}
        for index, keyspace in enumerate(keyspaces):
            anchor = anchors.get(keyspace, index) % len(nodes)
            assignments[keyspace] = tuple(
                nodes[(anchor + step) % len(nodes)] for step in range(factor))
        return cls(assignments)
