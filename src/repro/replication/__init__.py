"""``repro.replication``: available-copies replication over sharded
key-spaces.

Crashes become degraded service, not outages: each logical key-space is
placed on ``replication_factor`` nodes (:class:`PlacementMap`), clients
write all available copies and read any one (:class:`ReplicatedApp`),
and the Transaction Manager validates at commit time that no written
replica failed while the transaction was open
(:func:`validate_footprint` -- the RepCRec available-copies rule: a
site failure erases its in-memory concurrency-control state).  A
recovering replica merges current versions from its live peers before
serving reads again (:mod:`repro.replication.catchup`).

Selected by :class:`~repro.core.config.ReplicationConfig` on
:class:`~repro.core.config.TabsConfig`; off by default, in which case
nothing in this package runs and the single-copy system is
byte-identical to the paper's.
"""

from repro.replication.audit import audit_replica_convergence, replica_cells
from repro.replication.placement import PlacementMap
from repro.replication.router import ReplicatedApp
from repro.replication.runtime import ReplicaRuntime
from repro.replication.server import (
    ReplicatedServerMixin,
    pack_cell,
    unpack_cell,
)
from repro.replication.view import AvailabilityView, validate_footprint

__all__ = [
    "AvailabilityView",
    "PlacementMap",
    "ReplicaRuntime",
    "ReplicatedApp",
    "ReplicatedServerMixin",
    "audit_replica_convergence",
    "pack_cell",
    "replica_cells",
    "unpack_cell",
    "validate_footprint",
]
