"""Transaction management.

The Transaction Manager's major responsibilities are implementing commit
protocols and allocating globally unique transaction identifiers
(Section 3.2.3).  This package provides:

- :mod:`repro.txn.ids` -- globally unique transaction identifiers with
  subtransaction paths,
- :mod:`repro.txn.status` -- the per-transaction state machine,
- :mod:`repro.txn.manager` -- the Transaction Manager process, including the
  tree-structured two-phase commit protocol driven over Communication
  Manager datagrams.
"""

from repro.txn.ids import NULL_TID, TidFactory, TransactionID
from repro.txn.status import TransactionState, TxnPhase

__all__ = ["TransactionID", "TidFactory", "NULL_TID", "TransactionState",
           "TxnPhase"]
