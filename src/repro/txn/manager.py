"""The Transaction Manager process.

Responsibilities (Section 3.2.3): allocating globally unique transaction
identifiers, tracking which data servers and remote sites act on behalf of
each transaction, and driving the tree-structured two-phase commit protocol
in which each node serves as coordinator for the nodes that are its
children in the spanning tree recorded by the Communication Manager.

Local request port (``transaction_manager`` service):

====================  ========================================================
``tm.begin``          allocate a (sub)transaction id; reply
``tm.join``           a data server performed its first operation; ack
``tm.remote_sites``   Communication Manager: remote sites now involved
``tm.remote_arrived`` Communication Manager: a remote-born transaction is
                      active here; ack back to the CM
``tm.end``            commit request from the application; reply bool
``tm.abort``          abort request; reply
``tm.query_status``   current phase of a transaction; reply
====================  ========================================================

Datagram-borne protocol (arriving via the Communication Manager):
``tm.prepare_req`` / ``tm.vote`` / ``tm.commit_req`` / ``tm.abort_req`` /
``tm.ack`` / ``tm.outcome_query`` / ``tm.outcome_reply``.

Commit of an update subtree follows presumed-abort conventions: a
subordinate forces a PREPARED record before voting and a COMMITTED record
before acknowledging; the coordinator forces its COMMITTED record before
phase two and appends an unforced end record once all acknowledgements are
in; an in-doubt subordinate that finds no coordinator state learns
"aborted".  Read-only participants vote read-only, release their locks at
prepare time, and drop out of phase two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.comm.manager import SERVICE as CM_SERVICE
from repro.errors import InvalidTransaction, TransactionAborted
from repro.kernel.messages import Message
from repro.kernel.node import Node
from repro.kernel.ports import Port
from repro.rpc.stubs import respond, respond_error
from repro.sim import AnyOf, Event, Timeout
from repro.txn.coalesce import DatagramCoalescer
from repro.txn.ids import NULL_TID, TidFactory, TransactionID
from repro.txn.status import TransactionState, TxnPhase

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import CommitConfig
    from repro.recovery.manager import RecoveryManagerClient

SERVICE = "transaction_manager"

#: How long the coordinator waits for votes before aborting.
DEFAULT_VOTE_TIMEOUT_MS = 60_000.0
#: How long phase two waits for an acknowledgement before retrying.
DEFAULT_ACK_TIMEOUT_MS = 10_000.0
#: Retry interval while resolving an in-doubt (prepared) transaction.
RESOLVE_RETRY_MS = 5_000.0


@dataclass
class _Votes:
    expected: set[str] = field(default_factory=set)
    received: dict[str, str] = field(default_factory=dict)
    done: Event | None = None


class TransactionManager:
    """One per node."""

    def __init__(self, node: Node,
                 recovery_manager: "RecoveryManagerClient",
                 commit: "CommitConfig | None" = None) -> None:
        self.node = node
        self.ctx = node.ctx
        self.rm = recovery_manager
        #: same-instant, same-target 2PC datagrams ride one batch datagram
        #: under the grouped commit pipeline; None sends each individually
        #: (the paper's accounting, byte-identical)
        self._coalescer: DatagramCoalescer | None = None
        if (commit is not None
                and getattr(commit, "pipeline", "paper") == "grouped"
                and getattr(commit, "coalesce_datagrams", True)):
            self._coalescer = DatagramCoalescer(node)
        self.port = node.create_port("tm")
        node.register_service(SERVICE, self.port)
        self.tids = TidFactory(node.name, epoch=node.epoch)
        self._states: dict[TransactionID, TransactionState] = {}
        #: per-transaction {server name: request port} for 2PC messages
        self._server_ports: dict[TransactionID, dict[str, Port]] = {}
        #: open vote/ack collections keyed by (kind, toplevel tid)
        self._collections: dict[tuple[str, TransactionID], _Votes] = {}
        self.vote_timeout_ms = DEFAULT_VOTE_TIMEOUT_MS
        self.ack_timeout_ms = DEFAULT_ACK_TIMEOUT_MS
        self.max_ack_retries = 3
        #: how long a prepared subordinate waits before inquiring
        self.prepared_inquiry_ms = 30_000.0
        #: "checkpoints are performed at intervals determined by the
        #: transaction manager" (Section 3.2.2): one every N commits.
        #: None disables TM-driven checkpoints.
        self.checkpoint_every_commits: int | None = None
        #: available-copies commit-time validation: callable taking the
        #: client's replication footprint and returning an abort reason
        #: or None (wired by the node's ReplicaRuntime; None when
        #: replication is off)
        self.replication_validator: "Callable[[dict], str | None] | None" \
            = None
        #: availability probe for phase-two ack collections: a child the
        #: probe reports down cannot ack, so waiting out the timeout only
        #: freezes the family's locks -- presumed abort / the recovery
        #: outcome query already cover it.  None (replication off) keeps
        #: the measured system's exact waiting behavior.
        self.peer_down_probe: "Callable[[str], bool] | None" = None
        self._commits_since_checkpoint = 0
        self.commits = 0
        self.aborts = 0
        #: family aborts driven by peer-failure notifications
        self.aborts_on_failure = 0
        #: crash-recovery gate: while set, inbound messages wait in the
        #: port queue so protocol traffic cannot race log replay
        self._recovery_gate: Event | None = None
        node.spawn(self._loop(), name="transaction-manager", defused=True)

    # -- plumbing ---------------------------------------------------------------

    def _loop(self):
        while True:
            message = yield self.port.receive()
            if self._recovery_gate is not None:
                yield self._recovery_gate
            handler = getattr(self, "_handle_" + message.op.split(".")[-1],
                              None)
            if handler is None:
                continue
            self.node.spawn(handler(message), name=f"tm:{message.op}",
                            defused=True)

    def hold_messages_until_recovered(self) -> None:
        """Close the message gate until :meth:`recovery_complete`.

        A restarting node can receive commit-protocol traffic -- e.g. a
        prompt abort triggered by a peer's failure detector -- while its
        own log replay is still restoring the very transactions those
        messages concern.  Processing an abort mid-replay interleaves
        its undo with recovery's redo, resurrecting prepared-but-aborted
        effects.  While the gate is closed, inbound messages simply wait
        in the port queue; nothing is dropped.
        """
        self._recovery_gate = Event(self.ctx.engine,
                                    name=f"tm-recovered:{self.node.name}")

    def recovery_complete(self) -> None:
        """Open the message gate: this node's state is consistent again."""
        gate, self._recovery_gate = self._recovery_gate, None
        if gate is not None and not gate.triggered:
            gate.succeed()

    def _state(self, tid: TransactionID) -> TransactionState:
        try:
            return self._states[tid]
        except KeyError:
            raise InvalidTransaction(
                f"transaction {tid} is unknown on node "
                f"{self.node.name!r}") from None

    def _send_datagram(self, target: str, op: str, body: dict,
                       tid: TransactionID) -> None:
        trace_parent = 0
        if self.ctx.tracer is not None:
            trace_parent = self.ctx.tracer.current_span_id(tid,
                                                           self.node.name)
        payload = Message(op=op, tid=tid,
                          body={**body, "service": SERVICE,
                                "from": self.node.name, "tid": tid},
                          trace_parent=trace_parent)
        if self._coalescer is not None:
            self._coalescer.send(target, payload)
            return
        self.node.service(CM_SERVICE).send(Message(
            op="cm.send_datagram", body={"target": target,
                                         "payload": payload}))

    # -- begin / join / bookkeeping ----------------------------------------------

    def _handle_begin(self, message: Message):
        yield self.ctx.cpu("TM", self.ctx.cpu_costs.tm_begin)
        parent_tid: TransactionID = message.body.get("parent", NULL_TID)
        if parent_tid.is_null:
            tid = self.tids.new_toplevel()
        else:
            parent = self._state(parent_tid)
            if parent.phase is not TxnPhase.ACTIVE:
                respond_error(message, TransactionAborted(
                    parent_tid, "parent is no longer active"))
                return
            tid = self.tids.new_subtransaction(parent_tid)
            parent.children.add(tid)
        self._states[tid] = TransactionState(tid)
        self._server_ports[tid] = {}
        respond(message, {"tid": tid})

    def _handle_join(self, message: Message):
        tid: TransactionID = message.body["tid"]
        state = self._states.get(tid)
        if state is None and not tid.is_toplevel:
            # A remote subtransaction operating here: track under its own id.
            state = self._states[tid] = TransactionState(tid)
            self._server_ports[tid] = {}
        if state is None:
            respond_error(message, InvalidTransaction(str(tid)))
            return
        state.servers.add(message.body["server"])
        self._server_ports[tid][message.body["server"]] = message.body["port"]
        respond(message, {"ok": True})
        return
        yield  # pragma: no cover

    def _handle_remote_sites(self, message: Message):
        state = self._states.get(message.body["tid"])
        if state is not None:
            state.has_remote_sites = True
        return
        yield  # pragma: no cover

    def _handle_remote_arrived(self, message: Message):
        tid: TransactionID = message.body["tid"]
        if tid not in self._states:
            state = TransactionState(tid)
            state.parent_node = message.body["parent_node"]
            self._states[tid] = state
            self._server_ports[tid] = {}
        # Ack back to the Communication Manager (counted small message).
        self.node.service(CM_SERVICE).send(
            Message(op="cm.ack_remote", body={"tid": tid}))
        return
        yield  # pragma: no cover

    def _handle_query_status(self, message: Message):
        state = self._states.get(message.body["tid"])
        respond(message, {
            "phase": state.phase.value if state else "unknown"})
        return
        yield  # pragma: no cover

    # -- subtransaction merge ------------------------------------------------------

    def _merge_child_into_parent(self, child: TransactionID):
        """Commit a subtransaction: fold its locks, write set, and undo
        chain into its parent; the real commit happens with the top level."""
        parent_tid = child.parent
        assert parent_tid is not None
        child_state = self._state(child)
        parent_state = self._state(parent_tid)
        # Deepest first: live grandchildren merge into the child before the
        # child merges into the parent.
        for grandchild in sorted(child_state.children,
                                 key=lambda t: len(t.path), reverse=True):
            if grandchild in self._states:
                yield from self._merge_child_into_parent(grandchild)
        for server, port in list(self._server_ports.get(child, {}).items()):
            yield from self._call_server(
                child, server, "ds.subtxn_commit",
                {"child": child, "parent": parent_tid})
            parent_state.servers.add(server)
            self._server_ports[parent_tid].setdefault(server, port)
        yield from self.rm.merge_chain_via_message(
            self.node, child, parent_tid)
        parent_state.children.discard(child)
        parent_state.read_only = (parent_state.read_only
                                  and child_state.read_only)
        parent_state.has_remote_sites = (parent_state.has_remote_sites
                                         or child_state.has_remote_sites)
        self._forget(child)

    def _merge_family_into(self, root_tid: TransactionID):
        """Fold every live family member into the (top-level) root.

        At the birth node this sweeps up unended subtransactions at
        commit; at a subordinate it handles subtransactions that operated
        here remotely -- they were tracked under their own identifiers
        (the join arrived with the subtransaction's tid) and must merge
        before the subtree prepares, or their servers and undo chains
        would be invisible to two-phase commit.
        """
        members = sorted(
            [tid for tid, state in self._states.items()
             if tid != root_tid and tid.toplevel == root_tid.toplevel
             and not state.phase.terminal],
            key=lambda tid: len(tid.path), reverse=True)
        for member in members:
            parent_tid = member.parent
            target = (parent_tid if parent_tid in self._states
                      and parent_tid != member else root_tid)
            if target == member:  # pragma: no cover - defensive
                continue
            member_state = self._states[member]
            target_state = self._states[target]
            for server, port in list(
                    self._server_ports.get(member, {}).items()):
                yield from self._call_server(
                    member, server, "ds.subtxn_commit",
                    {"child": member, "parent": target})
                target_state.servers.add(server)
                self._server_ports.setdefault(target, {}).setdefault(
                    server, port)
            yield from self.rm.merge_chain_via_message(self.node, member,
                                                       target)
            target_state.children.discard(member)
            target_state.read_only = (target_state.read_only
                                      and member_state.read_only)
            target_state.has_remote_sites = (
                target_state.has_remote_sites
                or member_state.has_remote_sites)
            self._forget(member)

    def _call_port(self, port: Port, op: str, body: dict):
        """Small-message request/response with a local process."""
        reply_port = Port(self.ctx, node=self.node, name=f"tm-reply:{op}")
        port.send(Message(op=op, body=body, reply_to=reply_port))
        response = yield reply_port.receive()
        if "error" in response.body:
            raise response.body["error"]
        return response.body

    def _call_server(self, tid: TransactionID, server: str, op: str,
                     body: dict, retries: int = 30,
                     retry_ms: float = 1_000.0):
        """Request/response with a data server, resilient to the server
        process failing and being recovered mid-protocol: each retry
        re-reads the (possibly rebound) port.  Raises after the retries
        are exhausted."""
        attempt = 0
        while True:
            port = self._server_ports.get(tid, {}).get(server)
            if port is None:
                raise InvalidTransaction(
                    f"no port for server {server!r} under {tid}")
            reply_port = Port(self.ctx, node=self.node,
                              name=f"tm-reply:{op}")
            port.send(Message(op=op, body=body, reply_to=reply_port))
            deadline = Timeout(self.ctx.engine, retry_ms)
            which, response = yield AnyOf(self.ctx.engine,
                                          [reply_port.receive(), deadline])
            if which == 0:
                if "error" in response.body:
                    raise response.body["error"]
                return response.body
            attempt += 1
            if attempt >= retries:
                raise TransactionAborted(
                    tid, f"data server {server!r} unreachable for {op!r}")

    # -- commit: application entry point --------------------------------------------

    def _handle_end(self, message: Message):
        tid: TransactionID = message.body["tid"]
        try:
            state = self._state(tid)
        except InvalidTransaction as error:
            respond_error(message, error)
            return
        if state.phase is TxnPhase.ABORTED:
            respond(message, {"committed": False,
                              "reason": state.abort_reason})
            return
        if not tid.is_toplevel:
            # EndTransaction on a subtransaction merges it into its parent;
            # permanence comes only with the top-level commit (Section 2.1.3).
            yield from self._merge_child_into_parent(tid)
            respond(message, {"committed": True})
            return
        footprint = message.body.get("replication")
        if footprint is not None and self.replication_validator is not None:
            # Available-copies validation: a site failure erased its
            # in-memory CC state, so a write that touched a since-failed
            # replica cannot be trusted -- abort before prepare fans out.
            reason = self.replication_validator(footprint)
            if reason is not None:
                self.ctx.metrics.counter(
                    self.node.name, "replication.validation_abort").inc()
                children: list[str] = []
                if state.has_remote_sites:
                    info = yield from self._call_port(
                        self.node.service(CM_SERVICE), "cm.spanning_info",
                        {"tid": tid})
                    children = [c for c in info["children"]
                                if c != self.node.name]
                yield from self._merge_family_into(tid)
                yield from self._abort_subtree(state, children, reason=reason)
                respond(message, {"committed": False,
                                  "reason": state.abort_reason})
                return
        yield self.ctx.cpu("TM", self.ctx.cpu_costs.tm_commit_read)
        yield self.ctx.cpu("other", self.ctx.cpu_costs.tm_dispatch_slop)
        # Live subtransactions commit with their parent.
        yield from self._merge_family_into(tid)
        committed = yield from self._commit_root(state)
        respond(message, {"committed": committed,
                          "reason": state.abort_reason})

    def _commit_root(self, state: TransactionState):
        tid = state.tid
        if state.phase.terminal:
            # A peer-failure notification aborted the family between the
            # client's EndTransaction and here.
            return state.phase is TxnPhase.COMMITTED
        started = self.ctx.now
        span_id = 0
        if self.ctx.tracer is not None:
            span_id = self.ctx.tracer.begin("2pc.commit", self.node.name,
                                            "TM", tid=tid)
        children: list[str] = []
        if state.has_remote_sites:
            info = yield from self._call_port(
                self.node.service(CM_SERVICE), "cm.spanning_info",
                {"tid": tid})
            children = [c for c in info["children"] if c != self.node.name]

        vote = yield from self._prepare_subtree(state, children)
        if vote == "abort":
            yield from self._abort_subtree(state, children)
            self.aborts += 1
            if span_id and self.ctx.tracer is not None:
                self.ctx.tracer.end(span_id, outcome="abort")
            return False
        if vote == "read_only":
            # No updates anywhere: note completion (unforced) and finish.
            self.rm.note_txn_done(self.node, tid)
            # Single-CPU serialization: the Recovery Manager's bookkeeping
            # delays the application's next request on a real Perq.
            yield Timeout(self.ctx.engine, self.ctx.cpu_costs.rm_read_txn)
            self.commits += 1
            self._forget(tid)
            self._maybe_checkpoint()
            self._observe_commit(started, 1 + len(children), "read")
            if span_id and self.ctx.tracer is not None:
                self.ctx.tracer.end(span_id, outcome="read_only")
            return True

        # Update transaction: force the commit record, then phase two.
        yield from self.rm.append_status_via_message(
            self.node, tid, "committed", servers=tuple(state.servers),
            children=tuple(children), force=True)
        yield self.ctx.cpu("TM", self.ctx.cpu_costs.tm_commit_write_extra)
        state.advance(TxnPhase.COMMITTED)
        if self.ctx.merged_architecture:
            # Improved architecture: phase two overlaps succeeding
            # transactions; the application's reply does not wait for it.
            self.node.spawn(self._finish_phase_two(state, children),
                            name=f"tm:lazy-p2:{tid}", defused=True)
        else:
            yield from self._finish_phase_two(state, children)
        self.commits += 1
        self._maybe_checkpoint()
        self._observe_commit(started, 1 + len(children), "write")
        if span_id and self.ctx.tracer is not None:
            self.ctx.tracer.end(span_id, outcome="committed")
        return True

    def _observe_commit(self, started: float, nodes: int,
                        kind: str) -> None:
        """Per-protocol commit-path latency (Table 5-7's row naming)."""
        protocol = f"{nodes}_node_{kind}"
        self.ctx.metrics.counter(self.node.name,
                                 f"commit.{protocol}").inc()
        self.ctx.metrics.histogram(
            self.node.name, f"commit.{protocol}_ms").observe(
            self.ctx.now - started)

    def _finish_phase_two(self, state: TransactionState,
                          children: list[str]):
        tid = state.tid
        yield from self._phase_two(state, children, "commit")
        if state.pending_acks:
            # A child is unreachable: keep the committed state so its
            # recovery can learn the outcome.  A stray ack completes us.
            return
        if children:
            # The unforced end record stops recovery from re-driving phase
            # two; a purely local commit needs none.
            self.rm.note_txn_done(self.node, tid)
        self._forget(tid)

    def _maybe_checkpoint(self) -> None:
        """TM-driven periodic checkpoints, counted in commits."""
        if not self.checkpoint_every_commits:
            return
        self._commits_since_checkpoint += 1
        if self._commits_since_checkpoint < self.checkpoint_every_commits:
            return
        self._commits_since_checkpoint = 0
        self.node.service("recovery_manager").send(Message(
            op="rm.checkpoint",
            body={"active_transactions": self.active_transactions()}))

    # -- prepare phase -----------------------------------------------------------------

    def _prepare_subtree(self, state: TransactionState,
                         children: list[str]):
        """Prepare local servers and child nodes; combined vote."""
        tid = state.tid
        if state.phase is TxnPhase.ABORTED:
            # Aborted under our feet (peer-failure notification) while the
            # caller was off gathering spanning info.
            return "abort"
        state.advance(TxnPhase.PREPARING)
        span_id = 0
        if self.ctx.tracer is not None:
            span_id = self.ctx.tracer.begin(
                "2pc.prepare", self.node.name, "TM", tid=tid,
                children=",".join(children))
        collection = None
        if children:
            collection = self._open_collection("vote", tid, children)
            for child in children:
                self._send_datagram(child, "tm.prepare_req", {}, tid)

        local_vote = "read_only"
        for server in list(self._server_ports.get(tid, {})):
            try:
                reply = yield from self._call_server(tid, server,
                                                     "ds.prepare",
                                                     {"tid": tid})
            except Exception:
                local_vote = "abort"
                break
            if reply["vote"] == "abort":
                local_vote = "abort"
                break
            if reply["vote"] == "update":
                local_vote = "update"

        combined = local_vote
        if collection is not None:
            remote_votes = yield from self._await_collection(
                "vote", tid, self.vote_timeout_ms)
            if remote_votes is None or "abort" in remote_votes.values():
                combined = "abort"
            elif "update" in remote_votes.values() and combined != "abort":
                combined = "update"
        if combined != "abort":
            state.read_only = combined == "read_only"
        if span_id and self.ctx.tracer is not None:
            self.ctx.tracer.end(span_id, vote=combined)
        return combined

    def _live_children(self, children: list[str]) -> list[str]:
        """The children worth awaiting: all of them, minus any a
        configured availability probe currently reports down."""
        if self.peer_down_probe is None:
            return list(children)
        return [child for child in children
                if not self.peer_down_probe(child)]

    def _open_collection(self, kind: str, tid: TransactionID,
                         expected: list[str]) -> _Votes:
        votes = _Votes(expected=set(expected),
                       done=Event(self.ctx.engine, name=f"{kind}:{tid}"))
        self._collections[(kind, tid.toplevel)] = votes
        return votes

    def _await_collection(self, kind: str, tid: TransactionID,
                          timeout_ms: float):
        """Wait for all expected responses; None on timeout."""
        votes = self._collections[(kind, tid.toplevel)]
        deadline = Timeout(self.ctx.engine, timeout_ms)
        which, _ = yield AnyOf(self.ctx.engine, [votes.done, deadline])
        del self._collections[(kind, tid.toplevel)]
        if which == 1 and len(votes.received) < len(votes.expected):
            return None
        return votes.received

    def _handle_vote(self, message: Message):
        if self.ctx.tracer is not None:
            # Zero-duration span with an explicit cross-node parent: the
            # subordinate's prepare span caused this vote's arrival.
            span_id = self.ctx.tracer.begin(
                "2pc.vote", self.node.name, "TM", tid=message.body["tid"],
                parent_id=message.trace_parent, voter=message.body["from"],
                vote=message.body.get("vote", ""))
            self.ctx.tracer.end(span_id)
        self._record_response("vote", message)
        return
        yield  # pragma: no cover

    def _handle_ack(self, message: Message):
        if self.ctx.tracer is not None:
            span_id = self.ctx.tracer.begin(
                "2pc.ack", self.node.name, "TM", tid=message.body["tid"],
                parent_id=message.trace_parent, acker=message.body["from"],
                ack=message.body.get("ack", ""))
            self.ctx.tracer.end(span_id)
        self._record_response("ack", message)
        return
        yield  # pragma: no cover

    def _handle_batch(self, message: Message):
        """Unpack a coalesced ``tm.batch`` datagram into its payloads.

        Each inner payload dispatches exactly as if it had arrived alone
        (own handler process, own trace parent); only the wire crossing
        was shared.
        """
        for payload in message.body.get("payloads", ()):
            handler = getattr(self, "_handle_" + payload.op.split(".")[-1],
                              None)
            if handler is None or payload.op == "tm.batch":
                continue  # never nested; unknown inner ops drop like datagrams
            self.node.spawn(handler(payload), name=f"tm:{payload.op}",
                            defused=True)
        return
        yield  # pragma: no cover

    def _record_response(self, kind: str, message: Message) -> None:
        tid: TransactionID = message.body["tid"]
        votes = self._collections.get((kind, tid.toplevel))
        if votes is None:
            if kind == "ack":
                self._stray_ack(tid, message.body["from"])
            return  # otherwise: stale response after a timeout-driven abort
        votes.received[message.body["from"]] = message.body.get(kind, "")
        if (set(votes.received) >= votes.expected
                and not votes.done.triggered):
            votes.done.succeed()

    def _stray_ack(self, tid: TransactionID, child: str) -> None:
        """A late phase-two ack from a child that crashed mid-protocol and
        resolved the transaction through its own recovery."""
        state = self._states.get(tid)
        if state is None or not state.pending_acks:
            return
        state.pending_acks.discard(child)
        if not state.pending_acks:
            self.rm.note_txn_done(self.node, tid)
            self._forget(tid)

    # -- peer-failure notifications (from the Communication Manager) --------------

    def _handle_peer_failed(self, message: Message):
        """A peer spanning this family was declared dead or restarted.

        Presumed abort, promptly: abort every still-ACTIVE family fragment
        at this node (releasing its locks), inject a synthetic abort vote
        into the family's open vote collection so a coordinator mid-prepare
        stops waiting immediately, and flag fragments that are mid-prepare
        so their eventual vote becomes abort.  PREPARED and COMMITTED
        fragments are never touched -- a prepared subordinate must learn
        the outcome from its coordinator (possibly via recovery-time
        outcome queries), and a committed transaction is history.
        """
        tid: TransactionID = message.body["tid"]
        peer: str = message.body["peer"]
        reason = f"peer {peer} {message.body.get('event', 'failed')}"
        votes = self._collections.get(("vote", tid.toplevel))
        if (votes is not None and peer in votes.expected
                and peer not in votes.received):
            votes.received[peer] = "abort"
            if (set(votes.received) >= votes.expected
                    and not votes.done.triggered):
                votes.done.succeed()
        members = sorted(
            (other for other in self._states if other.toplevel == tid.toplevel),
            key=lambda t: len(t.path), reverse=True)
        for member in members:
            state = self._states.get(member)
            if state is None or state.phase.terminal:
                continue
            if state.phase is TxnPhase.PREPARED:
                continue  # blocking window: only the coordinator decides
            state.aborted_by_failure = True
            if state.phase is TxnPhase.PREPARING:
                # The prepare handler owns this state right now; make its
                # vote come out abort instead of aborting under its feet.
                state.abort_on_prepare = reason
                continue
            children = [c for c in message.body.get("children", ())
                        if c not in (peer, self.node.name)]
            self.aborts_on_failure += 1
            self.ctx.meter.bump("aborts_on_failure")
            yield from self._abort_subtree(state, children, reason=reason)

    # -- subordinate side ---------------------------------------------------------------

    def _handle_prepare_req(self, message: Message):
        span_id = 0
        if self.ctx.tracer is not None:
            span_id = self.ctx.tracer.begin(
                "2pc.prepare_req", self.node.name, "TM",
                tid=message.body["tid"], parent_id=message.trace_parent,
                coordinator=message.body["from"])
        try:
            yield from self._prepare_req_traced(message)
        finally:
            if span_id and self.ctx.tracer is not None:
                self.ctx.tracer.end(span_id)

    def _prepare_req_traced(self, message: Message):
        tid: TransactionID = message.body["tid"]
        coordinator: str = message.body["from"]
        state = self._states.get(tid)
        if state is not None and state.phase is TxnPhase.ABORTED:
            # Already aborted here (e.g. a peer-failure notification beat
            # the coordinator's prepare): the vote must be abort.
            self._send_datagram(coordinator, "tm.vote", {"vote": "abort"},
                                tid)
            return
        if state is None:
            # A fragment aborted on a failure notification leaves a flagged
            # tombstone: its locks are gone and its effects undone, so the
            # family must not commit.
            if any(other.toplevel == tid
                   and known.phase is TxnPhase.ABORTED
                   and known.aborted_by_failure
                   for other, known in self._states.items()):
                self._send_datagram(coordinator, "tm.vote",
                                    {"vote": "abort"}, tid)
                return
            # The top level itself never operated here, but one of its
            # subtransactions may have (tracked under its own id): give
            # the family a root to merge into.
            family_here = any(
                other.toplevel == tid and not known.phase.terminal
                for other, known in self._states.items())
            if family_here:
                state = TransactionState(tid)
                state.parent_node = coordinator
                self._states[tid] = state
                self._server_ports.setdefault(tid, {})
            else:
                # We never saw the transaction (or already forgot a
                # read-only participation): vote read-only.
                self._send_datagram(coordinator, "tm.vote",
                                    {"vote": "read_only"}, tid)
                return

        yield self.ctx.cpu("TM", self.ctx.cpu_costs.tm_commit_read)
        yield from self._merge_family_into(tid)
        yield self.ctx.cpu("other", self.ctx.cpu_costs.tm_dispatch_slop)
        children: list[str] = []
        if state.has_remote_sites:
            # Interior node of the spanning tree: fetch our children from
            # the Communication Manager.  Leaves skip the query.
            info = self.node.service(CM_SERVICE)
            spanning = yield from self._call_port(info, "cm.spanning_info",
                                                  {"tid": tid})
            children = [c for c in spanning["children"]
                        if c not in (self.node.name, coordinator)]
        try:
            vote = yield from self._prepare_subtree(state, children)
        except Exception:
            vote = "abort"
        if state.abort_on_prepare and vote != "abort":
            # A peer failure arrived while we were preparing: we may still
            # abort unilaterally (nothing durable was promised yet).
            yield from self._abort_subtree(state, children,
                                           reason=state.abort_on_prepare)
            vote = "abort"
            self._send_datagram(coordinator, "tm.vote", {"vote": vote}, tid)
            return
        if vote == "update":
            yield from self.rm.append_status_via_message(
                self.node, tid, "prepared", servers=tuple(state.servers),
                children=tuple(children), coordinator=coordinator,
                force=True)
            state.advance(TxnPhase.PREPARED)
            # Watchdog: if the outcome never arrives (lost datagram,
            # coordinator hiccup), inquire rather than block forever.
            self.node.spawn(self._watch_prepared(state),
                            name=f"tm:watch:{tid}", defused=True)
        elif vote == "read_only":
            # Read-only optimization: locks are already released (servers
            # release at prepare); drop out of phase two entirely.
            self._forget(tid)
        else:
            yield from self._abort_subtree(state, children)
        self._send_datagram(coordinator, "tm.vote", {"vote": vote}, tid)

    def _handle_commit_req(self, message: Message):
        span_id = 0
        if self.ctx.tracer is not None:
            span_id = self.ctx.tracer.begin(
                "2pc.commit_req", self.node.name, "TM",
                tid=message.body["tid"], parent_id=message.trace_parent,
                coordinator=message.body["from"])
        try:
            yield from self._commit_req_traced(message)
        finally:
            if span_id and self.ctx.tracer is not None:
                self.ctx.tracer.end(span_id)

    def _commit_req_traced(self, message: Message):
        tid: TransactionID = message.body["tid"]
        coordinator: str = message.body["from"]
        state = self._states.get(tid)
        if state is not None:
            yield self.ctx.cpu("TM", self.ctx.cpu_costs.tm_commit_write_extra)
            yield from self._finish_prepared(state, commit=True)
        # Ack even for unknown transactions: we may have committed and
        # forgotten already, and commit_req datagrams can be retried.
        self._send_datagram(coordinator, "tm.ack", {"ack": "committed"}, tid)

    def _handle_abort_req(self, message: Message):
        tid: TransactionID = message.body["tid"]
        state = self._states.get(tid)
        if state is not None:
            children: list[str] = []
            if state.has_remote_sites:
                spanning = self.node.service(CM_SERVICE)
                info = yield from self._call_port(
                    spanning, "cm.spanning_info", {"tid": tid})
                children = [c for c in info["children"]
                            if c not in (self.node.name,
                                         message.body["from"])]
            yield from self._abort_subtree(state, children)
        self._send_datagram(message.body["from"], "tm.ack",
                            {"ack": "aborted"}, tid)

    def _finish_prepared(self, state: TransactionState, commit: bool):
        """Phase two at a prepared subordinate (also used after recovery)."""
        tid = state.tid
        children: list[str] = []
        if state.has_remote_sites:
            spanning = self.node.service(CM_SERVICE)
            info = yield from self._call_port(spanning, "cm.spanning_info",
                                              {"tid": tid})
            children = [c for c in info["children"]
                        if c not in (self.node.name, state.parent_node)]
        if commit:
            # Force our COMMITTED record before acknowledging (presumed
            # abort: once we ack, the coordinator may forget the outcome).
            yield from self.rm.append_status_via_message(
                self.node, tid, "committed", servers=tuple(state.servers),
                children=tuple(children), force=True)
            state.advance(TxnPhase.COMMITTED)
            yield from self._phase_two(state, children, "commit")
        else:
            yield from self._abort_subtree(state, children)
            return
        self.rm.note_txn_done(self.node, tid)
        self._forget(tid)

    # -- phase two ----------------------------------------------------------------------

    def _phase_two(self, state: TransactionState, children: list[str],
                   outcome: str):
        """Deliver the outcome to local servers and child nodes.

        Local servers are awaited.  Remote children are retried a bounded
        number of times; any that stay silent (crashed mid-protocol) remain
        in ``state.pending_acks`` and the coordinator keeps the
        transaction's state so the child's recovery-time outcome query can
        be answered -- completion then arrives as a stray ack.
        """
        span_id = 0
        if self.ctx.tracer is not None:
            span_id = self.ctx.tracer.begin(
                "2pc.phase2", self.node.name, "TM", tid=state.tid,
                outcome=outcome)
        try:
            yield from self._phase_two_traced(state, children, outcome)
        finally:
            if span_id and self.ctx.tracer is not None:
                self.ctx.tracer.end(span_id,
                                    pending=len(state.pending_acks))

    def _phase_two_traced(self, state: TransactionState,
                          children: list[str], outcome: str):
        tid = state.tid
        state.pending_acks = set(children)
        awaited = self._live_children(children)
        collection = None
        if awaited:
            collection = self._open_collection("ack", tid, awaited)
        for child in children:
            self._send_datagram(child, f"tm.{outcome}_req", {}, tid)
        for server in list(self._server_ports.get(tid, {})):
            try:
                yield from self._call_server(tid, server, f"ds.{outcome}",
                                             {"tid": tid})
            except Exception:
                # An unreachable server lost its volatile state with its
                # process; there is nothing left to release there.
                continue
        if collection is None:
            return
        acks = yield from self._await_collection("ack", tid,
                                                 self.ack_timeout_ms)
        state.pending_acks -= set(acks or {})
        retries = 0
        while state.pending_acks and retries < self.max_ack_retries:
            retries += 1
            pending = self._live_children(sorted(state.pending_acks))
            if not pending:
                # Every silent child is a known-down peer: its recovery's
                # outcome query will complete us as a stray ack.
                break
            self.ctx.metrics.counter(
                self.node.name, "tm.commit_retransmits").inc(len(pending))
            self._open_collection("ack", tid, pending)
            for child in pending:
                self._send_datagram(child, f"tm.{outcome}_req", {}, tid)
            acks = yield from self._await_collection("ack", tid,
                                                     self.ack_timeout_ms)
            state.pending_acks -= set(acks or {})

    # -- abort ---------------------------------------------------------------------------

    def _handle_abort(self, message: Message):
        tid: TransactionID = message.body["tid"]
        state = self._states.get(tid)
        if state is None or state.phase.terminal:
            respond(message, {"aborted": True})
            return
        children: list[str] = []
        if state.has_remote_sites:
            # The spanning tree is kept per family; an aborting
            # subtransaction ships its own tid to the same children, and
            # nodes that never served it simply acknowledge.
            info = yield from self._call_port(
                self.node.service(CM_SERVICE), "cm.spanning_info",
                {"tid": tid})
            children = [c for c in info["children"] if c != self.node.name]
        yield from self._abort_subtree(state, children,
                                       reason=message.body.get("reason", ""))
        respond(message, {"aborted": True})

    def _abort_subtree(self, state: TransactionState, children: list[str],
                       reason: str = ""):
        """Undo local effects, release locks, and abort child nodes.

        Aborting a subtransaction does not abort its parent (Section 2.1.3);
        aborting a parent aborts all its live descendants.
        """
        if state.phase.terminal:
            # Already resolved (e.g. a peer-failure abort raced a
            # timeout-driven one): nothing left to undo or release.
            return
        tid = state.tid
        if self.ctx.tracer is not None:
            self.ctx.tracer.event("2pc.abort", self.node.name, "TM",
                                  tid=tid, reason=reason)
        self.ctx.metrics.counter(self.node.name, "tm.aborts").inc()
        for child_tid in sorted(state.children, key=lambda t: len(t.path),
                                reverse=True):
            child_state = self._states.get(child_tid)
            if child_state is not None:
                yield from self._abort_subtree(child_state, [])
        collection = None
        awaited = self._live_children(children)
        if awaited:
            collection = self._open_collection("ack", tid, awaited)
        for child in children:
            # A down child is still told (datagram semantics: dropped on
            # the floor) but not awaited -- presumed abort means its
            # recovery resolves the fragment without our help.
            self._send_datagram(child, "tm.abort_req", {}, tid)
        # The Recovery Manager follows the transaction's backward chain and
        # instructs servers to undo their effects (Section 3.2.2) ...
        yield from self.rm.abort_via_message(self.node, tid)
        # ... then the servers drop the transaction and release its locks.
        for server in list(self._server_ports.get(tid, {})):
            try:
                yield from self._call_server(tid, server, "ds.abort",
                                             {"tid": tid})
            except Exception:
                continue  # a dead server has no locks left to release
        if collection is not None:
            timeout_ms = self.vote_timeout_ms
            if self.peer_down_probe is not None:
                # Replicated clusters bound the client's reply latency:
                # the local locks are already released above, so a child
                # that dies after the collection opened should cost an
                # ack timeout, not a vote timeout.
                timeout_ms = min(timeout_ms, self.ack_timeout_ms)
            yield from self._await_collection("ack", tid, timeout_ms)
        if not state.phase.terminal:
            state.advance(TxnPhase.ABORTED)
        state.abort_reason = reason or state.abort_reason or "aborted"
        self.aborts += 1
        parent = self._states.get(tid.parent) if tid.parent else None
        if parent is not None:
            parent.children.discard(tid)
        self._forget(tid, keep_tombstone=True)

    def _forget(self, tid: TransactionID, keep_tombstone: bool = False) -> None:
        self._server_ports.pop(tid, None)
        if keep_tombstone:
            # Keep the aborted state so late arrivals (ops, EndTransaction)
            # get TransactionIsAborted rather than InvalidTransaction.
            return
        self._states.pop(tid, None)

    # -- recovery resolution ------------------------------------------------------------

    def restore_prepared(self, tid: TransactionID, coordinator: str,
                         servers: tuple[str, ...],
                         server_ports: dict[str, Port],
                         children: tuple[str, ...] = ()) -> None:
        """Called by the facility after crash recovery for each in-doubt
        transaction found in the log; resolution starts immediately."""
        state = TransactionState(tid, phase=TxnPhase.PREPARED)
        state.parent_node = coordinator
        state.servers = set(servers)
        state.has_remote_sites = bool(children)
        self._states[tid] = state
        self._server_ports[tid] = dict(server_ports)
        self.node.spawn(self._resolve_in_doubt(state),
                        name=f"tm:resolve:{tid}", defused=True)

    def restore_committed_unacked(self, tid: TransactionID,
                                  children: tuple[str, ...]) -> None:
        """A coordinator's commit record without an end record: phase two
        may not have completed; repeat it (idempotent at the children)."""
        state = TransactionState(tid, phase=TxnPhase.COMMITTED)
        self._states[tid] = state
        self._server_ports[tid] = {}

        def rerun():
            yield from self._phase_two(state, list(children), "commit")
            self.rm.note_txn_done(self.node, tid)
            self._forget(tid)

        self.node.spawn(rerun(), name=f"tm:reship:{tid}", defused=True)

    def _watch_prepared(self, state: TransactionState):
        """Self-inquiry for a subordinate stuck in PREPARED: after the
        inquiry delay, ask the coordinator for the outcome directly."""
        yield Timeout(self.ctx.engine, self.prepared_inquiry_ms)
        current = self._states.get(state.tid)
        if current is state and state.phase is TxnPhase.PREPARED:
            yield from self._resolve_in_doubt(state)

    def _resolve_in_doubt(self, state: TransactionState):
        """Blocking resolution: ask the coordinator until it answers.

        This is two-phase commit's blocking window -- the prepared data
        stays locked until the coordinator recovers, exactly the failure
        mode the paper acknowledges for its choice of protocol.
        """
        tid = state.tid
        while True:
            if (self._states.get(tid) is not state
                    or state.phase is not TxnPhase.PREPARED):
                return  # the outcome arrived through the normal channel
            collection = self._open_collection("outcome", tid,
                                               [state.parent_node])
            self._send_datagram(state.parent_node, "tm.outcome_query", {},
                                tid)
            replies = yield from self._await_collection(
                "outcome", tid, RESOLVE_RETRY_MS)
            if replies:
                if (self._states.get(tid) is not state
                        or state.phase is not TxnPhase.PREPARED):
                    return  # resolved through the normal channel meanwhile
                outcome = replies[state.parent_node]
                yield from self._finish_prepared(
                    state, commit=(outcome == "committed"))
                # The coordinator may still be holding the transaction open
                # waiting for our phase-two acknowledgement.
                self._send_datagram(state.parent_node, "tm.ack",
                                    {"ack": outcome}, tid)
                return

    def _handle_outcome_query(self, message: Message):
        tid: TransactionID = message.body["tid"]
        state = self._states.get(tid)
        if state is not None and state.phase is TxnPhase.COMMITTED:
            outcome = "committed"
        elif state is not None and state.phase in (TxnPhase.PREPARED,
                                                   TxnPhase.PREPARING,
                                                   TxnPhase.ACTIVE):
            return  # not decided yet; the subordinate will ask again
        else:
            outcome = "aborted"  # presumed abort: no state means no commit
        self._send_datagram(message.body["from"], "tm.outcome_reply",
                            {"outcome": outcome}, tid)
        return
        yield  # pragma: no cover

    def _handle_outcome_reply(self, message: Message):
        tid: TransactionID = message.body["tid"]
        votes = self._collections.get(("outcome", tid.toplevel))
        if votes is None:
            return
        votes.received[message.body["from"]] = message.body["outcome"]
        if not votes.done.triggered:
            votes.done.succeed()
        return
        yield  # pragma: no cover

    # -- single-server recovery support ----------------------------------------------------

    def rebind_server_port(self, server: str, port: Port) -> None:
        """A data server was re-created: point its pending transactions'
        2PC messages at the new request port."""
        for ports in self._server_ports.values():
            if server in ports:
                ports[server] = port

    def transactions_with_server(self, server: str) -> list[TransactionID]:
        """Non-terminal, non-prepared transactions this server joined.

        These lost their server-side state (locks, buffered write sets)
        when the server process died and must be aborted; prepared
        transactions instead get their locks re-acquired from the log.
        """
        return [tid for tid, state in self._states.items()
                if server in state.servers
                and not state.phase.terminal
                and state.phase is not TxnPhase.PREPARED]

    # -- introspection -------------------------------------------------------------------

    def phase_of(self, tid: TransactionID) -> TxnPhase | None:
        state = self._states.get(tid)
        return state.phase if state else None

    def active_transactions(self) -> dict[TransactionID, str]:
        return {tid: state.phase.value for tid, state in self._states.items()
                if not state.phase.terminal}
