"""Per-transaction state, as tracked by a node's Transaction Manager.

The phase machine follows the classic two-phase-commit participant states:

``ACTIVE`` -> ``PREPARING`` -> ``PREPARED`` -> ``COMMITTED``
and from any pre-commit state -> ``ABORTED``.

A PREPARED participant may neither commit nor abort unilaterally: it must
learn the outcome from its coordinator (this is two-phase commit's blocking
window, which the paper acknowledges: "nodes participating in a distributed
transaction must restrict access to some data until other nodes recover").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TransactionError
from repro.txn.ids import TransactionID


class TxnPhase(enum.Enum):
    ACTIVE = "active"
    PREPARING = "preparing"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"

    @property
    def terminal(self) -> bool:
        return self in (TxnPhase.COMMITTED, TxnPhase.ABORTED)


_ALLOWED = {
    TxnPhase.ACTIVE: {TxnPhase.PREPARING, TxnPhase.PREPARED,
                      TxnPhase.COMMITTED, TxnPhase.ABORTED},
    TxnPhase.PREPARING: {TxnPhase.PREPARED, TxnPhase.COMMITTED,
                         TxnPhase.ABORTED},
    TxnPhase.PREPARED: {TxnPhase.COMMITTED, TxnPhase.ABORTED},
    TxnPhase.COMMITTED: set(),
    TxnPhase.ABORTED: set(),
}


@dataclass
class TransactionState:
    """What one node's Transaction Manager knows about one transaction."""

    tid: TransactionID
    phase: TxnPhase = TxnPhase.ACTIVE
    #: local data servers that performed operations for this transaction
    servers: set[str] = field(default_factory=set)
    #: True once the Communication Manager reported remote involvement
    has_remote_sites: bool = False
    #: node that shipped this transaction here (empty at the root/birth node)
    parent_node: str = ""
    #: live subtransactions begun at this node
    children: set[TransactionID] = field(default_factory=set)
    #: why the transaction aborted, for diagnostics
    abort_reason: str = ""
    #: True when every local server voted read-only at prepare time
    read_only: bool = True
    #: children that have not yet acknowledged phase two; a committed
    #: coordinator keeps its state until this empties (presumed abort
    #: demands that an in-doubt child can still learn the outcome)
    pending_acks: set[str] = field(default_factory=set)
    #: True when the abort was driven by a peer-failure notification; a
    #: later prepare request for the family must then vote abort rather
    #: than be mistaken for a forgotten read-only participation
    aborted_by_failure: bool = False
    #: set mid-prepare when a peer failure demands the vote become abort
    abort_on_prepare: str = ""

    def advance(self, phase: TxnPhase) -> None:
        if phase not in _ALLOWED[self.phase]:
            raise TransactionError(
                f"transaction {self.tid}: illegal transition "
                f"{self.phase.value} -> {phase.value}")
        self.phase = phase

    @property
    def is_root(self) -> bool:
        """Is this node the commit coordinator for the transaction?"""
        return self.parent_node == ""
