"""Globally unique transaction identifiers.

A top-level identifier is ``(birth node, sequence number)``; the node name
makes identifiers unique without coordination.  Subtransactions extend
their parent's identifier with a path of child indices, so the family tree
is recoverable from the identifier alone: ``n1.7`` is the top-level parent
of ``n1.7/1`` and ``n1.7/1/2``.

``BeginTransaction`` takes the special *null* identifier to create a new
top-level transaction (Table 3-2); :data:`NULL_TID` plays that role.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class TransactionID:
    """A transaction or subtransaction identifier."""

    node: str
    seq: int
    path: tuple[int, ...] = ()
    #: identifiers key the hottest dicts in the system (lock tables, TM
    #: state, CC maps), so the field-tuple hash is computed once instead
    #: of per lookup.  Excluded from compare/repr: it is derived state.
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash",
                           hash((self.node, self.seq, self.path)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def is_toplevel(self) -> bool:
        return not self.path

    @property
    def is_null(self) -> bool:
        return self.node == "" and self.seq == 0

    @property
    def toplevel(self) -> "TransactionID":
        """The root of this transaction's family."""
        return TransactionID(self.node, self.seq)

    @property
    def parent(self) -> "TransactionID | None":
        """The immediate parent, or None for a top-level transaction."""
        if not self.path:
            return None
        return TransactionID(self.node, self.seq, self.path[:-1])

    def child(self, index: int) -> "TransactionID":
        return TransactionID(self.node, self.seq, self.path + (index,))

    def is_ancestor_of(self, other: "TransactionID") -> bool:
        """True for proper descendants of ``self`` (not for self itself)."""
        return (self.node == other.node and self.seq == other.seq
                and len(other.path) > len(self.path)
                and other.path[:len(self.path)] == self.path)

    def __str__(self) -> str:
        suffix = "".join(f"/{i}" for i in self.path)
        return f"{self.node}.{self.seq}{suffix}"


#: The null identifier passed to BeginTransaction for a new top-level
#: transaction (Table 3-2).
NULL_TID = TransactionID("", 0)


@dataclass
class TidFactory:
    """Per-node allocator of identifiers.

    ``epoch`` folds the node's restart count into the sequence space so
    identifiers allocated after a crash can never collide with pre-crash
    ones (the pre-crash counter is volatile).
    """

    node: str
    epoch: int = 0
    _seq: "itertools.count" = field(default_factory=lambda: itertools.count(1))
    _child_counters: dict = field(default_factory=dict)

    def new_toplevel(self) -> TransactionID:
        return TransactionID(self.node, (self.epoch << 32) | next(self._seq))

    def new_subtransaction(self, parent: TransactionID) -> TransactionID:
        index = self._child_counters.get(parent, 0) + 1
        self._child_counters[parent] = index
        return parent.child(index)
