"""Coalescing of two-phase-commit datagrams destined for the same node.

The paper's commit protocol pays one datagram per prepare request, vote,
commit request, and acknowledgement (Table 5-3).  Under concurrent commit
traffic many of those datagrams leave a node for the *same* peer at the
*same* simulated instant -- a coordinator fanning out to a child for
several transactions at once, a subordinate's ack leaving alongside
another transaction's vote.  The :class:`DatagramCoalescer` batches them:
every payload handed to it is queued per target, and a flush scheduled at
the end of the current instant wraps whatever accumulated for one target
into a single ``tm.batch`` datagram.  A lone payload is sent exactly as
the uncoalesced path would send it.

Acks therefore piggyback on the next outbound datagram to the coordinator
whenever one is issued in the same scheduling instant; otherwise they
travel alone, unchanged.

The coalescer is only installed for ``pipeline="grouped"`` commit
configurations -- the default paper pipeline sends every datagram
individually, keeping Tables 5-2/5-3 and all chaos seeds byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel.messages import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.node import Node

#: service name the Communication Manager routes batch payloads to
TM_SERVICE = "transaction_manager"
CM_SERVICE = "communication_manager"


class DatagramCoalescer:
    """Per-target batching of same-instant outbound 2PC datagrams."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self.ctx = node.ctx
        self._epoch = node.epoch
        self._queues: dict[str, list[Message]] = {}
        #: payloads that rode in a batch instead of travelling alone
        self.coalesced = 0
        #: batch datagrams actually sent
        self.batches = 0

    def send(self, target: str, payload: Message) -> None:
        """Queue one 2PC payload for ``target``; flushes this instant."""
        queue = self._queues.get(target)
        if queue is None:
            self._queues[target] = [payload]
            # End-of-instant flush: everything the node's processes emit
            # for this target during the current instant joins the batch.
            self.ctx.engine.schedule_now(lambda: self._flush(target))
        else:
            queue.append(payload)

    def _flush(self, target: str) -> None:
        payloads = self._queues.pop(target, [])
        if not payloads:
            return  # pragma: no cover - defensive; flush is one-shot
        if not self.node.alive or self.node.epoch != self._epoch:
            return  # the node crashed with the datagrams still queued
        if len(payloads) == 1:
            self._transmit(target, payloads[0])
            return
        self.coalesced += len(payloads)
        self.batches += 1
        self.ctx.metrics.counter(
            self.node.name, "txn.coalesced_datagrams").inc(len(payloads))
        self.ctx.metrics.counter(
            self.node.name, "txn.batch_datagrams").inc()
        first = payloads[0]
        self._transmit(target, Message(
            op="tm.batch", tid=first.tid,
            body={"service": TM_SERVICE, "from": self.node.name,
                  "tid": first.tid, "payloads": list(payloads)},
            trace_parent=first.trace_parent))

    def _transmit(self, target: str, payload: Message) -> None:
        self.node.service(CM_SERVICE).send(Message(
            op="cm.send_datagram",
            body={"target": target, "payload": payload}))
