"""Network communication.

The Communication Manager is the only process with access to the network
(Section 3.2.4).  It implements three forms of communication:

- **datagrams** for the distributed two-phase commit,
- **reliable session communication** for remote procedure calls,
- **broadcasting** for name lookup by the Name Server.

It also scans transaction identifiers in inter-node messages and constructs
the local portion of the spanning tree that the Transaction Manager uses
during two-phase commit, and it detects permanent communication failures,
aiding in the detection of remote node crashes.
"""

from repro.comm.failures import FailureDetector
from repro.comm.manager import CommunicationManager
from repro.comm.network import Network
from repro.comm.sessions import Session, SessionTable

__all__ = ["Network", "CommunicationManager", "Session", "SessionTable",
           "FailureDetector"]
