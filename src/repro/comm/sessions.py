"""Reliable sessions between Communication Managers.

Two Communication Managers cooperate to provide at-most-once, ordered
delivery of arbitrary-sized messages (Section 3.2.4).  In the simulation
the wire itself never reorders, so a session's job is *failure semantics*:
it pins the epoch of the remote node at establishment and breaks --
permanently -- when the peer crashes, restarts, or becomes unreachable.  A
broken session raises :class:`SessionBroken` on use; this is how senders
learn of remote node crashes.

Sessions are "more costly communication ... used only for the remote
procedure calls that implement operations on remote data objects"; the
commit protocol uses datagrams instead.
"""

from __future__ import annotations

from repro.errors import SessionBroken
from repro.comm.network import Network


class Session:
    """One direction-agnostic session between a local and a remote node."""

    def __init__(self, network: Network, local: str, remote: str) -> None:
        self.network = network
        self.local = local
        self.remote = remote
        # Ids come from the network, not a module global, so two cluster
        # runs in one process number their sessions identically.
        self.session_id = network.next_session_id()
        if not network.reachable(local, remote):
            raise SessionBroken(
                f"cannot establish session {local} -> {remote}: "
                "remote node is down or partitioned away")
        self.remote_epoch = network.epoch_of(remote)
        self.broken = False
        #: messages carried, for at-most-once sequence accounting
        self.sequence = 0
        network.ctx.metrics.counter(local, "sessions.established").inc()

    @property
    def usable(self) -> bool:
        return (not self.broken
                and self.network.reachable(self.local, self.remote)
                and self.network.epoch_of(self.remote) == self.remote_epoch)

    def check(self) -> None:
        """Verify the session; break it permanently if the peer is gone.

        The permanence matters: a peer that crashed and restarted has lost
        all session state, so at-most-once delivery cannot be guaranteed on
        the old session even though the node is reachable again.
        """
        if not self.usable:
            self.broken = True
            self.network.ctx.metrics.counter(
                self.local, "sessions.broken").inc()
            raise SessionBroken(
                f"session {self.local} -> {self.remote} is broken "
                f"(peer crashed or unreachable)")

    def next_sequence(self) -> int:
        self.check()
        self.sequence += 1
        return self.sequence


class SessionTable:
    """Per-node cache of sessions, re-established on demand."""

    def __init__(self, network: Network, local: str) -> None:
        self.network = network
        self.local = local
        self._sessions: dict[str, Session] = {}

    def session_to(self, remote: str) -> Session:
        """The live session to ``remote``, creating or replacing as needed."""
        session = self._sessions.get(remote)
        if session is None or not session.usable:
            session = Session(self.network, self.local, remote)
            self._sessions[remote] = session
        return session

    def break_to(self, remote: str) -> None:
        """Proactively break any session to ``remote`` (failure detected).

        The failure detector calls this the moment it declares a peer dead
        or observes it restarted, instead of letting the next use discover
        the break lazily.
        """
        session = self._sessions.get(remote)
        if session is not None and not session.broken:
            session.broken = True
            self.network.ctx.metrics.counter(
                self.local, "sessions.broken").inc()

    def active_peers(self) -> list[str]:
        return [remote for remote, session in self._sessions.items()
                if session.usable]

    def clear(self) -> None:
        """Volatile: a crash forgets every session."""
        self._sessions.clear()
