"""The simulated network fabric.

The network connects the Communication Managers of all nodes.  It resolves
node names, reports liveness (a crashed node is simply unreachable -- there
is no oracle beyond failed communication), and carries datagrams with an
optional loss rate for failure-injection tests.  Sessions are layered on
top in :mod:`repro.comm.sessions`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import CommunicationError
from repro.kernel.context import SimContext
from repro.kernel.messages import Message
from repro.kernel.node import Node

if TYPE_CHECKING:  # pragma: no cover
    from repro.comm.manager import CommunicationManager


class Network:
    """Registry of nodes and the datagram transport between them."""

    def __init__(self, ctx: SimContext, datagram_loss_rate: float = 0.0) -> None:
        if not 0.0 <= datagram_loss_rate < 1.0:
            raise CommunicationError(
                f"loss rate {datagram_loss_rate} outside [0, 1)")
        self.ctx = ctx
        self.datagram_loss_rate = datagram_loss_rate
        self._nodes: dict[str, Node] = {}
        self._managers: dict[str, "CommunicationManager"] = {}
        self.datagrams_sent = 0
        self.datagrams_lost = 0

    # -- registry ---------------------------------------------------------------

    def register(self, node: Node,
                 manager: "CommunicationManager") -> None:
        self._nodes[node.name] = node
        self._managers[node.name] = manager

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise CommunicationError(f"unknown node {name!r}") from None

    def manager(self, name: str) -> "CommunicationManager":
        try:
            return self._managers[name]
        except KeyError:
            raise CommunicationError(f"no Communication Manager registered "
                                     f"for node {name!r}") from None

    def node_names(self) -> list[str]:
        return list(self._nodes)

    def is_up(self, name: str) -> bool:
        node = self._nodes.get(name)
        return node is not None and node.alive

    def epoch_of(self, name: str) -> int:
        return self.node(name).epoch

    # -- datagram transport -----------------------------------------------------

    def deliver_datagram(self, target: str, message: Message,
                         latency_ms: float) -> None:
        """Queue a datagram for delivery to ``target``'s Communication
        Manager after ``latency_ms``.  Silently dropped if the target is
        down at delivery time or the loss roll fails -- datagram semantics.
        """
        self.datagrams_sent += 1
        if (self.datagram_loss_rate and
                self.ctx.random.random() < self.datagram_loss_rate):
            self.datagrams_lost += 1
            return

        def arrive() -> None:
            if not self.is_up(target):
                self.datagrams_lost += 1
                return
            self._managers[target].deliver_inbound_datagram(message)

        self.ctx.engine.schedule(latency_ms, arrive)

    def broadcast_datagram(self, source: str, message_factory:
                           Callable[[str], Message],
                           latency_ms: float) -> int:
        """Deliver one broadcast to every other live node's manager.

        Returns the number of nodes targeted.  ``message_factory`` builds a
        fresh message per recipient so receivers never share mutable bodies.
        """
        targets = [name for name in self._nodes
                   if name != source and self.is_up(name)]
        for name in targets:
            self.deliver_datagram(name, message_factory(name), latency_ms)
            self.datagrams_sent -= 1  # broadcast is one wire transmission
        self.datagrams_sent += 1 if targets else 0
        return len(targets)
