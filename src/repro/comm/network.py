"""The simulated network fabric.

The network connects the Communication Managers of all nodes.  It resolves
node names, reports liveness (a crashed node is simply unreachable -- there
is no oracle beyond failed communication), and carries datagrams with an
optional loss rate for failure-injection tests.  Sessions are layered on
top in :mod:`repro.comm.sessions`.

Fault injection (driven by :mod:`repro.chaos`):

- **Partitions** split the nodes into groups; a datagram whose source and
  target fall in different groups is silently discarded (counted in
  ``datagrams_blocked``) and sessions across the cut break.  ``heal()``
  rejoins the network.
- **Per-link faults** attach a loss / duplication / reordering probability
  to one directed link for a bounded window of simulated time.  All rolls
  come from the cluster's seeded RNG, so a run is exactly reproducible.
- An optional **trace hook** observes every send, arrival, and drop with
  its simulated timestamp; the chaos harness uses it for the determinism
  regression suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import CommunicationError
from repro.kernel.context import SimContext
from repro.kernel.messages import Message
from repro.kernel.node import Node

if TYPE_CHECKING:  # pragma: no cover
    from repro.comm.manager import CommunicationManager


@dataclass
class LinkFault:
    """Failure behaviour of one directed link for a bounded time window."""

    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    #: extra latency (ms) given to a reordered datagram so later traffic
    #: overtakes it
    reorder_delay_ms: float = 50.0
    #: simulated time after which the fault stops applying (None = forever)
    until: float | None = None

    def active(self, now: float) -> bool:
        return self.until is None or now <= self.until


class Network:
    """Registry of nodes and the datagram transport between them."""

    def __init__(self, ctx: SimContext, datagram_loss_rate: float = 0.0) -> None:
        if not 0.0 <= datagram_loss_rate < 1.0:
            raise CommunicationError(
                f"loss rate {datagram_loss_rate} outside [0, 1)")
        self.ctx = ctx
        self.datagram_loss_rate = datagram_loss_rate
        self._nodes: dict[str, Node] = {}
        self._managers: dict[str, "CommunicationManager"] = {}
        self.datagrams_sent = 0
        self.datagrams_lost = 0
        #: datagrams that reached the target node while it was down -- the
        #: wire worked, the endpoint did not.  Distinct from loss so failure
        #: tests can tell injected drops from crash-window drops.
        self.datagrams_undeliverable = 0
        #: datagrams discarded because a partition separated the endpoints
        self.datagrams_blocked = 0
        self.datagrams_duplicated = 0
        self.datagrams_reordered = 0
        #: partition id per node; None means the network is whole
        self._partition: dict[str, int] | None = None
        self._link_faults: dict[tuple[str, str], LinkFault] = {}
        #: each called as hook(time_ms, event, source, target, op); events
        #: are "send", "recv", "lost", "blocked", "undeliverable", "dup",
        #: "reorder".  A list so the chaos controller and a tracer can
        #: observe the same run without clobbering each other.
        self.trace_hooks: list[Callable[[float, str, str, str, str], None]] \
            = []
        #: per-(node, event) Counter objects, resolved once -- the metrics
        #: registry returns stable objects, so caching skips a dict lookup
        #: plus an f-string per datagram on the hot path
        self._net_counters: dict[tuple[str, str], object] = {}
        #: session identifiers, scoped to this network so two cluster runs
        #: in one process produce identical ids (trace reproducibility)
        self._session_seq = 0

    def next_session_id(self) -> int:
        self._session_seq += 1
        return self._session_seq

    # -- registry ---------------------------------------------------------------

    def register(self, node: Node,
                 manager: "CommunicationManager") -> None:
        self._nodes[node.name] = node
        self._managers[node.name] = manager

    def deregister(self, name: str) -> None:
        """Remove a retired node from the fabric.

        Peers' failure detectors enumerate :meth:`node_names`, so a
        deregistered node stops being probed (and so never becomes a
        permanent suspect); datagrams addressed to it count as
        undeliverable like any unknown endpoint.
        """
        self._nodes.pop(name, None)
        self._managers.pop(name, None)

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise CommunicationError(f"unknown node {name!r}") from None

    def manager(self, name: str) -> "CommunicationManager":
        try:
            return self._managers[name]
        except KeyError:
            raise CommunicationError(f"no Communication Manager registered "
                                     f"for node {name!r}") from None

    def node_names(self) -> list[str]:
        return list(self._nodes)

    def is_up(self, name: str) -> bool:
        node = self._nodes.get(name)
        return node is not None and node.alive

    def epoch_of(self, name: str) -> int:
        return self.node(name).epoch

    # -- partitions -------------------------------------------------------------

    def partition(self, groups: Sequence[Sequence[str]]) -> None:
        """Split the network: nodes in different groups cannot communicate.

        Nodes not named in any group each land in their own singleton
        partition.  A new partition replaces any existing one.
        """
        mapping: dict[str, int] = {}
        for group_id, group in enumerate(groups):
            for name in group:
                if name not in self._nodes:
                    raise CommunicationError(
                        f"cannot partition unknown node {name!r}")
                if name in mapping:
                    raise CommunicationError(
                        f"node {name!r} appears in two partition groups")
                mapping[name] = group_id
        next_id = len(groups)
        for name in self._nodes:
            if name not in mapping:
                mapping[name] = next_id
                next_id += 1
        self._partition = mapping

    def heal(self) -> None:
        """Remove any partition: every node can reach every other again."""
        self._partition = None

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def reachable(self, source: str, target: str) -> bool:
        """Can a message from ``source`` currently reach ``target``?

        False when the target is down or a partition separates the two.
        An unknown/empty source is treated as unpartitioned (used by
        infrastructure messages that predate fault injection).
        """
        if not self.is_up(target):
            return False
        return not self._partition_blocks(source, target)

    def _partition_blocks(self, source: str, target: str) -> bool:
        """Does the active partition separate ``source`` from ``target``?"""
        if self._partition is None or not source:
            return False
        source_group = self._partition.get(source)
        target_group = self._partition.get(target)
        if source_group is None or target_group is None:
            return False
        return source_group != target_group

    # -- per-link faults ---------------------------------------------------------

    def set_link_fault(self, source: str, target: str,
                       loss: float = 0.0, duplicate: float = 0.0,
                       reorder: float = 0.0,
                       reorder_delay_ms: float = 50.0,
                       until: float | None = None,
                       both_ways: bool = True) -> None:
        """Attach loss/duplication/reordering to a directed link.

        With ``both_ways`` (the default) the reverse direction gets the
        same fault -- the usual model for a flaky physical segment.
        """
        for rate, label in ((loss, "loss"), (duplicate, "duplicate"),
                            (reorder, "reorder")):
            if not 0.0 <= rate <= 1.0:
                raise CommunicationError(
                    f"link {label} rate {rate} outside [0, 1]")
        fault = LinkFault(loss=loss, duplicate=duplicate, reorder=reorder,
                          reorder_delay_ms=reorder_delay_ms, until=until)
        self._link_faults[(source, target)] = fault
        if both_ways:
            self._link_faults[(target, source)] = LinkFault(
                loss=loss, duplicate=duplicate, reorder=reorder,
                reorder_delay_ms=reorder_delay_ms, until=until)

    def clear_link_fault(self, source: str, target: str,
                         both_ways: bool = True) -> None:
        self._link_faults.pop((source, target), None)
        if both_ways:
            self._link_faults.pop((target, source), None)

    def clear_all_link_faults(self) -> None:
        self._link_faults.clear()

    def _link_fault(self, source: str, target: str) -> LinkFault | None:
        fault = self._link_faults.get((source, target))
        if fault is None:
            return None
        if not fault.active(self.ctx.now):
            del self._link_faults[(source, target)]
            return None
        return fault

    # -- tracing -----------------------------------------------------------------

    def add_trace_hook(
            self, hook: Callable[[float, str, str, str, str], None]) -> None:
        """Subscribe to network events; hooks fire in subscription order."""
        self.trace_hooks.append(hook)

    def remove_trace_hook(
            self, hook: Callable[[float, str, str, str, str], None]) -> None:
        if hook in self.trace_hooks:
            self.trace_hooks.remove(hook)

    def _trace(self, event: str, source: str, target: str, op: str) -> None:
        node = target if event in ("recv", "undeliverable") else \
            (source or target)
        if node:
            key = (node, event)
            counter = self._net_counters.get(key)
            if counter is None:
                counter = self._net_counters[key] = \
                    self.ctx.metrics.counter(node, "net." + event)
            counter.inc()
        for hook in self.trace_hooks:
            hook(self.ctx.now, event, source, target, op)

    # -- datagram transport -----------------------------------------------------

    def deliver_datagram(self, target: str, message: Message,
                         latency_ms: float, source: str = "",
                         daemon: bool = False) -> None:
        """Queue a datagram for delivery to ``target``'s Communication
        Manager after ``latency_ms``.  Silently dropped when a partition
        blocks the link, the loss roll fails, or the target is down at
        delivery time -- datagram semantics.  Each category has its own
        counter so failure tests can tell the drop modes apart.

        ``daemon`` marks background housekeeping traffic (failure-detector
        probes): its in-flight delivery never keeps the engine from
        quiescing.
        """
        source = source or message.sender_node or ""
        self.datagrams_sent += 1
        self._trace("send", source, target, message.op)
        if self._partition_blocks(source, target):
            self.datagrams_blocked += 1
            self._trace("blocked", source, target, message.op)
            return
        if daemon:
            # Background housekeeping traffic (heartbeat probes) is exempt
            # from the *injected* datagram faults: it consumes no seeded
            # rolls (so enabling detection never shifts the RNG stream of a
            # fault plan) and cannot be randomly lost -- only partitions
            # and crashed endpoints silence it, which are exactly the
            # failures detection must catch.
            self.ctx.engine.schedule(latency_ms, self._arrive, daemon=True,
                                     args=(target, message, source))
            return
        if (self.datagram_loss_rate and
                self.ctx.random.random() < self.datagram_loss_rate):
            self.datagrams_lost += 1
            self._trace("lost", source, target, message.op)
            return

        copies = 1
        fault = self._link_fault(source, target) if source else None
        if fault is not None:
            if fault.loss and self.ctx.random.random() < fault.loss:
                self.datagrams_lost += 1
                self._trace("lost", source, target, message.op)
                return
            if fault.duplicate and self.ctx.random.random() < fault.duplicate:
                copies = 2
                self.datagrams_duplicated += 1
                self._trace("dup", source, target, message.op)
            if fault.reorder and self.ctx.random.random() < fault.reorder:
                # Delay this datagram so traffic sent later overtakes it.
                latency_ms += fault.reorder_delay_ms
                self.datagrams_reordered += 1
                self._trace("reorder", source, target, message.op)

        args = (target, message, source)
        for copy in range(copies):
            # A duplicate trails the original slightly, as a retransmitted
            # or doubly-routed packet would.
            self.ctx.engine.schedule(latency_ms * (1 + copy), self._arrive,
                                     args=args)

    def _arrive(self, target: str, message: Message, source: str) -> None:
        """Datagram arrival: bound-method dispatch, no per-send closure."""
        if not self.is_up(target):
            self.datagrams_undeliverable += 1
            self._trace("undeliverable", source, target, message.op)
            return
        self._trace("recv", source, target, message.op)
        self._managers[target].deliver_inbound_datagram(message)

    def broadcast_datagram(self, source: str, message_factory:
                           Callable[[str], Message],
                           latency_ms: float) -> int:
        """Deliver one broadcast to every other live node's manager.

        Returns the number of nodes targeted.  ``message_factory`` builds a
        fresh message per recipient so receivers never share mutable bodies.
        """
        targets = [name for name in self._nodes
                   if name != source and self.is_up(name)]
        for name in targets:
            self.deliver_datagram(name, message_factory(name), latency_ms,
                                  source=source)
            self.datagrams_sent -= 1  # broadcast is one wire transmission
        self.datagrams_sent += 1 if targets else 0
        return len(targets)
