"""Proactive failure detection over the simulated network.

TABS Section 3.2 makes the Communication Manager responsible not just for
intersite sessions but for *reporting node failures* so the Transaction
Manager can promptly abort transactions that span a failed site.  Before
this module, sessions broke only lazily on next use and a spanning
transaction stalled until its vote/ack timeouts expired.

:class:`FailureDetector` closes that gap with a heartbeat/probe loop per
node:

- every ``probe_interval_ms`` it sends an ``fd.ping`` datagram to every
  other known node; live peers answer ``fd.pong``.  Both carry the
  sender's incarnation epoch.
- a peer unheard for ``suspicion_timeout_ms`` is *suspected*: the detector
  tells the Communication Manager (:meth:`CommunicationManager.peer_failed`),
  which breaks the session and uses its spanning records to notify the
  local Transaction Manager per affected transaction family.
- a pong carrying a *higher* epoch means the peer crashed and restarted --
  authoritative crash evidence even if the crash window was shorter than
  the suspicion timeout (:meth:`CommunicationManager.peer_restarted`).
- a pong from a suspected peer with the *same* epoch means the suspicion
  was false (a partition healed, or loss ate the probes): the detector
  counts a false suspicion and re-arms notifications
  (:meth:`CommunicationManager.peer_recovered`).  False suspicions are
  safe -- they can only cause aborts, never wrong commits.

Determinism and cost-model fidelity: the probe loop is a *daemon* --
its ticks and datagrams never keep the engine from quiescing -- and probe
traffic is deliberately **uncharged** (no primitive recorded, no CPU
charged, no ports involved), so the paper's Table 5-1..5-5 accounting is
untouched by heartbeats.  All scheduling is on the seeded engine, so the
same ``(seed, plan)`` yields the same detections at the same instants.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.kernel.costs import Primitive
from repro.kernel.messages import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.comm.manager import CommunicationManager

#: service name routed by the Communication Manager's inbound dispatch
SERVICE = "failure_detector"

DEFAULT_PROBE_INTERVAL_MS = 250.0
DEFAULT_SUSPICION_TIMEOUT_MS = 1500.0


class PeerHealth:
    """What one detector believes about one peer."""

    __slots__ = ("last_heard", "epoch", "suspected")

    def __init__(self, last_heard: float) -> None:
        self.last_heard = last_heard
        #: incarnation epoch learned from the peer's own probes (None until
        #: first heard -- there is no liveness oracle)
        self.epoch: int | None = None
        self.suspected = False


class FailureDetector:
    """Per-node heartbeat prober and suspicion timer."""

    def __init__(self, manager: "CommunicationManager",
                 probe_interval_ms: float = DEFAULT_PROBE_INTERVAL_MS,
                 suspicion_timeout_ms: float = DEFAULT_SUSPICION_TIMEOUT_MS,
                 observers: list[Callable[[float, str, str, str], None]]
                 | None = None) -> None:
        self.cm = manager
        self.node = manager.node
        self.ctx = manager.ctx
        self.network = manager.network
        self.probe_interval_ms = probe_interval_ms
        self.suspicion_timeout_ms = suspicion_timeout_ms
        #: called as observer(time_ms, local_node, event, peer); events are
        #: "suspect", "restart-observed", "recovered"
        self.observers = observers if observers is not None else []
        self.peers: dict[str, PeerHealth] = {}
        self.failures_detected = 0
        self.false_suspicions = 0
        self._stopped = False
        self._schedule_tick()

    # -- lifecycle ----------------------------------------------------------

    def stop(self) -> None:
        self._stopped = True

    @property
    def _stale(self) -> bool:
        """True once this detector no longer speaks for its node.

        After a crash+rebuild the node registers a fresh Communication
        Manager (with a fresh detector); the old detector's pending tick
        must then fall silent instead of double-probing.
        """
        if self._stopped or not self.node.alive:
            return True
        try:
            return self.network.manager(self.node.name) is not self.cm
        except Exception:  # pragma: no cover - node vanished from registry
            return True

    # -- the probe loop -----------------------------------------------------

    def _schedule_tick(self) -> None:
        self.ctx.engine.schedule(self.probe_interval_ms, self._tick,
                                 daemon=True)

    def _tick(self) -> None:
        if self._stale:
            return
        now = self.ctx.now
        names = self.network.node_names()
        # Forget peers that left the fabric (retired nodes deregister):
        # keeping their PeerHealth around would report them as suspects
        # forever, and pings to them would count as undeliverable noise.
        for peer in [peer for peer in self.peers if peer not in names]:
            del self.peers[peer]
        for peer in names:
            if peer == self.node.name:
                continue
            health = self.peers.get(peer)
            if health is None:
                # Grace: a freshly-learned peer gets a full timeout before
                # it can be suspected.
                health = self.peers[peer] = PeerHealth(last_heard=now)
            if (not health.suspected
                    and now - health.last_heard > self.suspicion_timeout_ms):
                self._suspect(peer, health)
            self._probe(peer, "ping")
        self._schedule_tick()

    def _probe(self, peer: str, kind: str) -> None:
        # Half the datagram time is wire latency (Table 5-3 accounting);
        # count=False keeps heartbeats out of the paper's primitive tables.
        latency = self.ctx.delay_of(Primitive.DATAGRAM, count=False) / 2
        message = Message(op=f"fd.{kind}",
                          body={"service": SERVICE, "kind": kind,
                                "origin": self.node.name,
                                "epoch": self.node.epoch},
                          sender_node=self.node.name)
        self.network.deliver_datagram(peer, message, latency,
                                      source=self.node.name, daemon=True)

    # -- inbound probes (dispatched synchronously by the CM) ----------------

    def on_datagram(self, message: Message) -> None:
        if self._stale:
            return
        origin = message.body.get("origin")
        epoch = message.body.get("epoch")
        if not origin or origin == self.node.name or epoch is None:
            return
        self._observe(origin, epoch)
        if message.body.get("kind") == "ping":
            self._probe(origin, "pong")

    # -- belief updates -----------------------------------------------------

    def _suspect(self, peer: str, health: PeerHealth) -> None:
        health.suspected = True
        self.failures_detected += 1
        self.ctx.meter.bump("failures_detected")
        self._notify("suspect", peer)
        self.cm.peer_failed(peer)

    def _observe(self, peer: str, epoch: int) -> None:
        now = self.ctx.now
        health = self.peers.get(peer)
        if health is None:
            health = self.peers[peer] = PeerHealth(last_heard=now)
        if health.epoch is not None and epoch < health.epoch:
            return  # straggler from a dead incarnation
        restarted = health.epoch is not None and epoch > health.epoch
        health.epoch = epoch
        health.last_heard = now
        if restarted:
            # Authoritative crash evidence, even when the outage was shorter
            # than the suspicion timeout.
            health.suspected = False
            self._notify("restart-observed", peer)
            self.cm.peer_restarted(peer)
        elif health.suspected:
            health.suspected = False
            self.false_suspicions += 1
            self.ctx.meter.bump("false_suspicions")
            self._notify("recovered", peer)
            self.cm.peer_recovered(peer)

    def _notify(self, event: str, peer: str) -> None:
        for observer in self.observers:
            observer(self.ctx.now, self.node.name, event, peer)

    # -- diagnostics --------------------------------------------------------

    def suspects(self) -> list[str]:
        return sorted(peer for peer, health in self.peers.items()
                      if health.suspected)
