"""The Communication Manager process.

One runs on every node; it is the only process with network access.  Local
clients reach it through its request port:

=======================  ====================================================
request ``op``           effect
=======================  ====================================================
``cm.send_datagram``     transmit ``body["payload"]`` to ``body["target"]``
``cm.spanning_info``     reply (pointer message) with the commit spanning
                         tree fragment for ``body["tid"]``
``cm.broadcast``         broadcast ``body["payload"]`` to all other nodes
``cm.ack_remote``        Transaction Manager's ack of a remote-transaction
                         notice (bookkeeping only)
=======================  ====================================================

Inbound datagrams are forwarded to the local service named in the payload
(``transaction_manager``, ``name_server``, ...) as small local messages.

The spanning-tree duty (Section 3.2.4): the Communication Manager scans the
transaction identifier of every inter-node message.  It records the node's
parent (the first remote node to invoke an operation here on behalf of the
transaction), whether the transaction was initiated remotely, and the list
of the node's children; and it tells the local Transaction Manager -- once
per transaction -- that remote sites are involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.network import Network
from repro.comm.sessions import SessionTable
from repro.kernel.costs import Primitive
from repro.kernel.messages import Message, MessageKind
from repro.kernel.node import Node
from repro.sim import Timeout
from repro.txn.ids import TransactionID

SERVICE = "communication_manager"


@dataclass
class SpanningRecord:
    """This node's fragment of one transaction's commit spanning tree."""

    parent: str = ""
    children: set[str] = field(default_factory=set)
    #: epoch of each child when first contacted -- "a small amount of
    #: additional information that is used for detecting some types of node
    #: crashes" (Section 3.2.4)
    child_epochs: dict[str, int] = field(default_factory=dict)
    #: notices already sent to the local Transaction Manager
    tm_told_arrival: bool = False
    tm_told_remote_sites: bool = False
    #: peers whose failure has already been reported to the TM for this
    #: transaction (re-armed if a suspicion turns out to be false)
    failure_told: set[str] = field(default_factory=set)


class CommunicationManager:
    """Datagrams, sessions, broadcast, and spanning-tree recording."""

    def __init__(self, node: Node, network: Network) -> None:
        self.node = node
        self.ctx = node.ctx
        self.network = network
        self.port = node.create_port("cm")
        node.register_service(SERVICE, self.port)
        network.register(node, self)
        self.sessions = SessionTable(network, node.name)
        self._trees: dict[TransactionID, SpanningRecord] = {}
        #: attached by the facility layer when failure detection is enabled
        self.failure_detector = None
        node.spawn(self._loop(), name="communication-manager", defused=True)

    # -- request loop -------------------------------------------------------

    def _loop(self):
        while True:
            message = yield self.port.receive()
            handler = getattr(self, "_handle_" + message.op.split(".")[-1],
                              None)
            if handler is None:
                continue  # unknown requests are dropped, like bad datagrams
            self.node.spawn(handler(message),
                            name=f"cm:{message.op}", defused=True)

    def _handle_send_datagram(self, message: Message):
        yield self.ctx.cpu("CM", self.ctx.cpu_costs.cm_datagram)
        target = message.body["target"]
        payload: Message = message.body["payload"]
        payload.sender_node = self.node.name
        # The sender is busy for half the datagram time; the other half is
        # wire latency that overlaps with the sender's next work.  This is
        # exactly the paper's one-half-datagram accounting (Table 5-3).
        time_ms = self.ctx.delay_of(Primitive.DATAGRAM)
        yield Timeout(self.ctx.engine, time_ms / 2)
        self.network.deliver_datagram(target, payload, time_ms / 2)

    def _handle_spanning_info(self, message: Message):
        yield self.ctx.cpu("CM", self.ctx.cpu_costs.cm_datagram)
        record = self._trees.get(self._key(message.body["tid"]),
                                 SpanningRecord())
        message.reply_to.send(Message(
            op="cm.spanning_info_reply",
            body={"parent": record.parent,
                  "children": sorted(record.children),
                  "child_epochs": dict(record.child_epochs)},
            kind=MessageKind.POINTER))

    def _handle_broadcast(self, message: Message):
        yield self.ctx.cpu("CM", self.ctx.cpu_costs.cm_datagram)
        payload: Message = message.body["payload"]
        time_ms = self.ctx.delay_of(Primitive.DATAGRAM)
        yield Timeout(self.ctx.engine, time_ms / 2)
        self.network.broadcast_datagram(
            self.node.name,
            lambda _target: Message(op=payload.op, body=dict(payload.body),
                                    reply_to=payload.reply_to,
                                    tid=payload.tid,
                                    sender_node=self.node.name),
            time_ms / 2)

    def _handle_ack_remote(self, message: Message):
        return  # pure bookkeeping: the notice/ack pair is now complete
        yield  # pragma: no cover

    # -- inbound datagrams -----------------------------------------------------

    def deliver_inbound_datagram(self, message: Message) -> None:
        """Called by the network when a datagram arrives for this node."""
        if not self.node.alive:  # pragma: no cover - network already checks
            return
        if message.body.get("service") == "failure_detector":
            # Probes are handled synchronously and uncharged: no spawned
            # process, no ports, no CPU -- heartbeats must neither perturb
            # the cost model nor keep the engine from quiescing.
            if self.failure_detector is not None:
                self.failure_detector.on_datagram(message)
            return
        self.node.spawn(self._forward_inbound(message),
                        name="cm:inbound", defused=True)

    def _forward_inbound(self, message: Message):
        yield self.ctx.cpu("CM", self.ctx.cpu_costs.cm_datagram)
        service = message.body.get("service", "transaction_manager")
        try:
            port = self.node.service(service)
        except Exception:
            return  # target service not up: datagram semantics, drop it
        port.send(message)  # small local message, charged

    # -- spanning-tree recording (called from the RPC session path) -----------

    def _key(self, tid: TransactionID) -> TransactionID:
        return tid.toplevel

    def record_outbound(self, tid: TransactionID | None, target: str) -> None:
        """An inter-node message for ``tid`` is about to leave this node."""
        if tid is None:
            return
        record = self._trees.setdefault(self._key(tid), SpanningRecord())
        if target != record.parent and target not in record.children:
            record.children.add(target)
            record.child_epochs[target] = (
                self.network.epoch_of(target)
                if self.network.is_up(target) else -1)
        # The transaction now has sites below this node: the local
        # Transaction Manager must know, whether we are its birth node or
        # an interior node of the spanning tree.
        if not record.tm_told_remote_sites:
            record.tm_told_remote_sites = True
            tm_port = self._tm_port()
            if tm_port is not None:
                tm_port.send(Message(op="tm.remote_sites", tid=tid,
                                     body={"tid": tid}))

    def record_inbound(self, tid: TransactionID | None, source: str) -> None:
        """An inter-node message for ``tid`` just arrived from ``source``."""
        if tid is None:
            return
        key = self._key(tid)
        is_new = key not in self._trees
        record = self._trees.setdefault(key, SpanningRecord())
        if is_new and tid.toplevel.node != self.node.name:
            # First node to ship us the transaction becomes our parent.
            record.parent = source
        if record.parent and not record.tm_told_arrival:
            # A remote-born transaction: the TM must learn of it (and acks,
            # creating its local state for the eventual prepare).
            record.tm_told_arrival = True
            tm_port = self._tm_port()
            if tm_port is not None:
                tm_port.send(Message(
                    op="tm.remote_arrived", tid=tid,
                    body={"tid": tid, "parent_node": record.parent,
                          "reply_service": SERVICE}))

    def _tm_port(self):
        try:
            return self.node.service("transaction_manager")
        except Exception:  # pragma: no cover - TM always up in practice
            return None

    # -- failure notifications (called by the failure detector) ----------------

    def peer_failed(self, peer: str) -> None:
        """A peer is suspected dead: break its session, tell the TM.

        Section 3.2: the Communication Manager reports node failures so the
        Transaction Manager can promptly abort the transactions spanning the
        failed site instead of stalling until vote/ack timeouts.
        """
        self.sessions.break_to(peer)
        self._notify_tm_peer_failed(peer, "failed")

    def peer_restarted(self, peer: str) -> None:
        """A peer restarted (epoch bump): old incarnation's work is gone."""
        self.sessions.break_to(peer)
        self._notify_tm_peer_failed(peer, "restarted")

    def peer_recovered(self, peer: str) -> None:
        """A suspicion proved false: re-arm future failure notifications."""
        for record in self._trees.values():
            record.failure_told.discard(peer)

    def _notify_tm_peer_failed(self, peer: str, event: str) -> None:
        tm_port = self._tm_port()
        if tm_port is None:  # pragma: no cover - TM always up in practice
            return
        for key, record in self._trees.items():
            if peer != record.parent and peer not in record.children:
                continue
            if peer in record.failure_told:
                continue  # this family was already told about this peer
            record.failure_told.add(peer)
            tm_port.send(Message(
                op="tm.peer_failed", tid=key,
                body={"tid": key, "peer": peer, "event": event,
                      "parent": record.parent,
                      "children": sorted(record.children)}))

    def spanning_record(self, tid: TransactionID) -> SpanningRecord:
        """Direct (uncharged) read for recovery and tests."""
        return self._trees.get(self._key(tid), SpanningRecord())
