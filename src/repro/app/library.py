"""The transaction management library (Table 3-2).

=====================  =======================================================
Table 3-2 routine      method
=====================  =======================================================
``BeginTransaction``   :meth:`ApplicationLibrary.begin_transaction`
``EndTransaction``     :meth:`end_transaction`
``AbortTransaction``   :meth:`abort_transaction`
``TransactionIsAborted``  the :class:`repro.errors.TransactionAborted`
                       exception, re-raised out of any call that touches an
                       aborted transaction
=====================  =======================================================

The library also flips the cost meter between the pre-commit and commit
phases when ``measured`` is set, which is how the benchmark harness
regenerates the paper's Table 5-2 / Table 5-3 split.
"""

from __future__ import annotations

from typing import Callable

from repro.comm.network import Network
from repro.errors import LockTimeout, TransactionAborted
from repro.kernel.costs import Phase
from repro.kernel.messages import Message
from repro.kernel.node import Node
from repro.kernel.ports import Port
from repro.nameserver.library import NameServerLibrary
from repro.rpc import stubs
from repro.rpc.stubs import ServiceRef
from repro.txn.ids import NULL_TID, TransactionID
from repro.txn.manager import SERVICE as TM_SERVICE


class ApplicationLibrary:
    """Transaction control and operation invocation for one application."""

    def __init__(self, node: Node, network: Network,
                 measured: bool = False) -> None:
        self.node = node
        self.ctx = node.ctx
        self.network = network
        self.names = NameServerLibrary(node)
        #: when True, begin/end flip the cost meter's phase markers
        self.measured = measured

    # -- Table 3-2 --------------------------------------------------------------

    def begin_transaction(self, parent: TransactionID = NULL_TID):
        """Start a transaction; a null parent makes it top-level (generator).

        Returns the new :class:`TransactionID`.
        """
        if self.measured:
            self.ctx.meter.phase = Phase.PRE_COMMIT
        yield self.ctx.cpu("APP", self.ctx.cpu_costs.app_txn_overhead)
        body = yield from self._tm_request("tm.begin", {"parent": parent})
        tid = body["tid"]
        if self.ctx.tracer is not None and parent.is_null:
            # The transaction family's root span: every span this family
            # opens anywhere in the cluster descends from it.
            self.ctx.tracer.begin_root(tid, self.node.name)
        return tid

    def end_transaction(self, tid: TransactionID, extra: dict | None = None):
        """Attempt to commit (generator).  Returns True iff committed.

        ``extra`` merges additional fields into the ``tm.end`` request
        body -- the replication router ships the transaction's replica
        footprint this way for commit-time validation.
        """
        if self.measured:
            self.ctx.meter.phase = Phase.COMMIT
        request = {"tid": tid}
        if extra:
            request.update(extra)
        try:
            body = yield from self._tm_request("tm.end", request)
        finally:
            if self.measured:
                self.ctx.meter.phase = Phase.PRE_COMMIT
        committed = body["committed"]
        if self.ctx.tracer is not None and tid.is_toplevel:
            self.ctx.tracer.end(self.ctx.tracer.family_root(tid),
                                committed=committed)
        return committed

    def abort_transaction(self, tid: TransactionID, reason: str = ""):
        """Force the transaction to abort (generator)."""
        yield from self._tm_request("tm.abort", {"tid": tid,
                                                 "reason": reason})
        if self.ctx.tracer is not None and tid.is_toplevel:
            self.ctx.tracer.end(self.ctx.tracer.family_root(tid),
                                committed=False, aborted=True)

    def _tm_request(self, op: str, body: dict):
        reply_port = Port(self.ctx, node=self.node, name=f"app:{op}")
        self.node.service(TM_SERVICE).send(Message(op=op, body=body,
                                                   reply_to=reply_port))
        response = yield reply_port.receive()
        if "error" in response.body:
            raise response.body["error"]
        return response.body

    # -- operations on objects ---------------------------------------------------

    def call(self, ref: ServiceRef, op: str, body: dict | None = None,
             tid: TransactionID | None = None,
             timeout_ms: float | None = None):
        """Invoke an operation on a data server within ``tid`` (generator).

        ``timeout_ms`` overrides the RPC layer's default response bound
        for remote targets (background maintenance like replica catch-up
        uses a short bound so a peer dying mid-call fails the step fast).
        """
        if timeout_ms is None:
            result = yield from stubs.call(self.network, self.node, ref, op,
                                           body, tid)
        else:
            result = yield from stubs.call(self.network, self.node, ref, op,
                                           body, tid, timeout_ms=timeout_ms)
        return result

    def lookup(self, name: str, node_name: str = "", desired: int = 1):
        """Name Server lookup (generator returning ServiceRef list)."""
        refs = yield from self.names.lookup(name, node_name=node_name,
                                            desired=desired)
        return refs

    def lookup_one(self, name: str, node_name: str = ""):
        ref = yield from self.names.lookup_one(name, node_name=node_name)
        return ref

    # -- conveniences -----------------------------------------------------------------

    def run_transaction(self, body_fn: Callable, retries: int = 0,
                        backoff_ms: float = 200.0):
        """Begin, run ``body_fn(tid)`` (a generator), and commit.

        Aborts on exception and re-raises.  With ``retries`` > 0, a
        transaction that aborts (a deadlock time-out, say) is retried
        after a randomized backoff -- without the jitter, deterministic
        contenders would re-create the same deadlock forever.
        """
        from repro.sim import Timeout

        attempt = 0
        while True:
            tid = yield from self.begin_transaction()
            try:
                result = yield from body_fn(tid)
            except Exception as error:
                yield from self.abort_transaction(tid, reason=repr(error))
                retryable = isinstance(error, (TransactionAborted,
                                               LockTimeout))
                if retryable and attempt < retries:
                    attempt += 1
                    yield Timeout(self.ctx.engine,
                                  self.ctx.random.uniform(
                                      0.0, backoff_ms * attempt))
                    continue
                raise
            committed = yield from self.end_transaction(tid)
            if committed:
                return result
            if attempt >= retries:
                raise TransactionAborted(tid, "commit failed")
            attempt += 1
