"""The transaction management library for applications (Table 3-2).

``BeginTransaction`` / ``EndTransaction`` / ``AbortTransaction`` plus the
``TransactionIsAborted`` exception, and the RPC entry point applications
use to call operations on data servers.
"""

from repro.app.library import ApplicationLibrary

__all__ = ["ApplicationLibrary"]
