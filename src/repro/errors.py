"""Exception hierarchy for the TABS reproduction.

Every error raised by the library derives from :class:`TabsError` so callers
can catch library failures without catching programming errors.  The leaf
classes mirror the failure modes discussed in the paper: lock time-outs
(Section 2.1.3 -- "TABS ... relies on time-outs"), transaction aborts
(Table 3-2's ``TransactionIsAborted`` exception), node crashes, and
communication failures detected by the Communication Manager.
"""

from __future__ import annotations


class TabsError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(TabsError):
    """The discrete-event simulation was driven incorrectly."""


class Interrupt(TabsError):
    """Raised inside a process that another process interrupted.

    ``cause`` carries the value passed to :meth:`Process.interrupt`.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(TabsError):
    """A simulated process was killed (e.g. its node crashed)."""


class KernelError(TabsError):
    """Misuse of the simulated Accent kernel."""


class NodeDown(KernelError):
    """An operation referenced a node that has crashed."""


class InvalidPort(KernelError):
    """A message was sent to a dead or unknown port."""


class PageFault(KernelError):
    """Internal signal: a referenced page is not resident."""


class PageCorruption(KernelError):
    """A disk page failed its payload-checksum verification on read.

    Raised by :meth:`repro.kernel.disk.Disk.read_page` when the stored
    per-page checksum does not match the page contents -- bit rot, a torn
    write, a lost write, or a misdirected write left the sector
    inconsistent.  Carries the page identity so media repair can target it.
    """

    def __init__(self, segment_id: str, page: int, reason: str = ""):
        super().__init__(segment_id, page, reason)
        self.segment_id = segment_id
        self.page = page
        self.reason = reason

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"page ({self.segment_id!r}, {self.page}) failed checksum"
                f"{': ' + self.reason if self.reason else ''}")


class CommunicationError(TabsError):
    """The Communication Manager detected a permanent failure."""


class SessionBroken(CommunicationError):
    """A session peer crashed or became unreachable."""


class LookupFailed(TabsError):
    """The Name Server could not resolve a name anywhere on the network."""


class TransactionError(TabsError):
    """Base class for transaction-management errors."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (Table 3-2's ``TransactionIsAborted``).

    Raised in an application or data-server coroutine when it touches a
    transaction that some other party has aborted, or when its own operation
    caused the abort (e.g. a lock time-out).
    """

    def __init__(self, tid: object, reason: str = ""):
        super().__init__(tid, reason)
        self.tid = tid
        self.reason = reason

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"transaction {self.tid} aborted: {self.reason or 'unknown reason'}"


class LockTimeout(TransactionError):
    """A lock request waited longer than the user-set time-out."""


class InvalidTransaction(TransactionError):
    """An unknown or already-terminated transaction id was supplied."""


class WriteAheadLogError(TabsError):
    """The write-ahead log was driven incorrectly."""


class LogFull(WriteAheadLogError):
    """The non-volatile log ran out of space and reclamation failed."""


class WalCodecError(WriteAheadLogError):
    """A log record could not be encoded or decoded (corrupt/truncated)."""


class LogMediaCorruption(WriteAheadLogError):
    """A durable log record is unreadable on *both* mirrored log disks.

    The duplexed log repairs a single-copy checksum failure from the good
    copy; both copies failing on a record below the durable tail means real
    log loss, which no amount of salvage can hide.
    """

    def __init__(self, lsn: int, reason: str = ""):
        super().__init__(lsn, reason)
        self.lsn = lsn
        self.reason = reason

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"log record lsn={self.lsn} unreadable on both log disks"
                f"{': ' + self.reason if self.reason else ''}")


class RecoveryError(TabsError):
    """Crash recovery encountered an inconsistency."""


class ServerError(TabsError):
    """A data server rejected or failed an operation."""


class QuorumUnavailable(TabsError):
    """Weighted voting could not assemble a read or write quorum."""


class ReplicaUnavailable(TabsError):
    """Available-copies replication could not serve the request.

    Raised when every replica of a key-space is unavailable (down,
    unreachable, or still catching up after recovery), or when a single
    replica refuses a read because it has not yet copied current
    versions from a live peer (the post-recovery read barrier).
    """
