"""Gray's DebitCredit banking workload over the TABS facility.

The schema is the TPC-B / *Thousands of DebitCredit Transactions-Per-
Second in Low-Cost Systems* bank: every **branch** has a balance row,
``tellers_per_branch`` teller rows, an account partition of
``accounts_per_branch`` logical accounts, and a history file.  One
DebitCredit transaction moves a signed amount through all four tiers::

    update account  (the customer's row; usually the home branch's)
    update teller   (the teller the customer walked up to)
    update branch   (the HOT row: every local transaction writes it)
    append history  (one row per transaction; rewards group commit)

Branches are packed ``branches_per_node`` to a cluster node (``bank0``,
``bank1``, ...), so a transaction whose account lives at a branch on
another node -- up to ``1 - locality`` of the traffic -- becomes a
cross-node two-phase commit.  The branch balance row is the canonical
hot spot: under strict two-phase locking it is held from the branch
update until commit completes, so commit-path latency (log forces, 2PC
datagrams) translates directly into lost throughput.  Within a branch
that serializes commits outright; across co-hosted branches the commits
are independent but share one serial log device.  That combination is
exactly the regime where the ``grouped`` commit pipeline earns its
keep: one physical force completes every co-hosted branch's commit
queued in the window.

Money conservation is the workload's master invariant: branches,
tellers, and accounts are three redundant ledgers of the same flows, so
after a drain ``sum(branches) == sum(tellers) == sum(accounts) ==
sum(history amounts)`` whatever committed, aborted, or died mid-2PC --
and the history row count equals the number of committed transactions.
:class:`DebitCreditWorkload` drives seeded traffic (optionally under a
chaos controller) and audits all of it.

Accounts scale to millions per branch: cells live in a *sparse*
recoverable segment -- pages materialize only when first written, and
the simulated disk stores only written sectors -- so segment size costs
address space, not memory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ServerError
from repro.kernel.disk import PAGE_SIZE
from repro.locking.modes import READ, WRITE
from repro.recovery.audit import (
    AuditReport,
    AuditViolation,
    audit_atomicity,
    audit_client_commits,
    audit_committed_values,
    audit_drainage,
    audit_storage_integrity,
)
from repro.replication.audit import audit_replica_convergence
from repro.replication.placement import PlacementMap
from repro.replication.router import ReplicatedApp
from repro.replication.server import (
    ReplicatedServerMixin,
    pack_cell,
    unpack_cell,
)
from repro.servers.base import BaseDataServer
from repro.txn.ids import TransactionID

#: cells are one word, as in the integer array server
WORD_SIZE = 4


def pages_for(rows: int) -> int:
    """Segment pages needed to address ``rows`` one-word cells."""
    return max(1, -(-rows * WORD_SIZE // PAGE_SIZE))


class RowOutOfRange(ServerError):
    """A row index outside the server's configured scale."""


class BalanceServer(BaseDataServer):
    """A recoverable array of balance rows with read-modify-write ops.

    The DebitCredit tiers (branch, teller, account) differ only in scale
    and in which rows are hot; the operations are shared.  Unlike the
    integer array's GetCell/SetCell, the update is a single
    ``add_to_balance`` operation -- one RPC locks, reads, adjusts, and
    logs the row, which is both how the original workload is written and
    what keeps the per-transaction message count at one per tier.
    """

    TYPE_NAME = "balance_server"

    def __init__(self, tabs_node, name: str, rows: int) -> None:
        super().__init__(tabs_node, name)
        self.rows = rows
        self.SEGMENT_PAGES = pages_for(rows)

    def _row_oid(self, row: int):
        if not 1 <= row <= self.rows:
            raise RowOutOfRange(
                f"{self.name}: row {row} outside 1..{self.rows}")
        va = self.base_va + (row - 1) * WORD_SIZE
        return self.library.create_object_id(va, WORD_SIZE)

    def op_get_balance(self, body: dict, tid: TransactionID):
        oid = self._row_oid(body["row"])
        yield from self.library.lock_object(tid, oid, READ)
        value = yield from self.library.read_object(oid)
        return {"balance": int(value) if value is not None else 0}

    def op_add_to_balance(self, body: dict, tid: TransactionID):
        """Lock, read, add ``amount``, log -- the DebitCredit update."""
        oid = self._row_oid(body["row"])
        amount = int(body["amount"])
        lib = self.library
        yield from lib.lock_object(tid, oid, WRITE)
        yield from lib.pin_and_buffer(tid, oid)
        old = yield from lib.read_object(oid)
        balance = (int(old) if old is not None else 0) + amount
        yield from lib.write_object(oid, balance)
        yield from lib.log_and_unpin(tid, oid)
        self.node.ctx.metrics.counter(self.node.name,
                                      f"{self.TYPE_NAME}.updates").inc()
        return {"balance": balance}


class BranchServer(BalanceServer):
    """One row: the branch balance, the workload's hot spot."""

    TYPE_NAME = "branch_server"


class TellerServer(BalanceServer):
    """The branch's teller balances (row = teller number)."""

    TYPE_NAME = "teller_server"


class AccountServer(BalanceServer):
    """The branch's account partition -- sparse, possibly millions."""

    TYPE_NAME = "account_server"


class HistoryServer(BaseDataServer):
    """The history file, laid out as one append strand per teller.

    A global append pointer would be a *second* hot row, which Gray's
    paper avoids by partitioning the history file; here each teller owns
    a strand (its transactions already serialize on the teller balance
    row, so the strand's cursor cell adds no new contention).  Cell
    layout: cells ``1..strands`` are the per-strand cursors, then strand
    ``s`` (0-based) stores row ``k`` at cell
    ``strands + s * slots + k + 1``.  An aborted transaction's cursor
    bump and row image both roll back through value logging, so the row
    count is exactly the committed transaction count.
    """

    TYPE_NAME = "history_server"

    def __init__(self, tabs_node, name: str, strands: int,
                 slots_per_strand: int) -> None:
        super().__init__(tabs_node, name)
        self.strands = strands
        self.slots = slots_per_strand
        self.SEGMENT_PAGES = pages_for(strands * (1 + slots_per_strand))

    def _cell_oid(self, cell: int):
        va = self.base_va + (cell - 1) * WORD_SIZE
        return self.library.create_object_id(va, WORD_SIZE)

    def _check_strand(self, strand: int) -> None:
        if not 0 <= strand < self.strands:
            raise RowOutOfRange(
                f"{self.name}: strand {strand} outside 0..{self.strands - 1}")

    def op_append(self, body: dict, tid: TransactionID):
        """Append one history row under ``tid`` (rolls back on abort)."""
        strand = int(body["strand"])
        self._check_strand(strand)
        lib = self.library
        cursor_oid = self._cell_oid(1 + strand)
        yield from lib.lock_object(tid, cursor_oid, WRITE)
        yield from lib.pin_and_buffer(tid, cursor_oid)
        raw = yield from lib.read_object(cursor_oid)
        count = int(raw) if raw is not None else 0
        if count >= self.slots:
            raise ServerError(f"{self.name}: strand {strand} full "
                              f"({self.slots} rows)")
        row = (int(body["amount"]), int(body["branch"]),
               int(body["teller"]), int(body["account"]))
        row_oid = self._cell_oid(self.strands + strand * self.slots
                                 + count + 1)
        yield from lib.lock_object(tid, row_oid, WRITE)
        yield from lib.pin_and_buffer(tid, row_oid)
        yield from lib.write_object(row_oid, row)
        yield from lib.log_and_unpin(tid, row_oid)
        yield from lib.write_object(cursor_oid, count + 1)
        yield from lib.log_and_unpin(tid, cursor_oid)
        self.node.ctx.metrics.counter(self.node.name,
                                      "history_server.appends").inc()
        return {"slot": count}

    def op_strand_count(self, body: dict, tid: TransactionID):
        strand = int(body["strand"])
        self._check_strand(strand)
        oid = self._cell_oid(1 + strand)
        yield from self.library.lock_object(tid, oid, READ)
        raw = yield from self.library.read_object(oid)
        return {"count": int(raw) if raw is not None else 0}

    def op_read_row(self, body: dict, tid: TransactionID):
        strand, slot = int(body["strand"]), int(body["slot"])
        self._check_strand(strand)
        if not 0 <= slot < self.slots:
            raise RowOutOfRange(f"{self.name}: slot {slot} outside "
                                f"0..{self.slots - 1}")
        oid = self._cell_oid(self.strands + strand * self.slots + slot + 1)
        yield from self.library.lock_object(tid, oid, READ)
        row = yield from self.library.read_object(oid)
        return {"row": list(row) if row is not None else None}


# -- replicated servers --------------------------------------------------------
#
# Under available-copies replication the read-modify-write moves to the
# client: ``add_to_balance`` computes a different result on a stale copy,
# so the replicated tiers expose a for-update read (write-locks the row
# on *one* replica, via the router's first-available routing) and an
# absolute ``put`` that fans out the computed value to every available
# copy.  Cells become versioned tuples so a recovering replica's
# catch-up can merge without regressing fresher local writes.


class ReplicatedBalanceServer(ReplicatedServerMixin, BalanceServer):
    """A balance tier whose rows are replicated versioned cells."""

    GATED_READS = ("get_balance", "get_balance_for_update")

    def for_update_oid(self, op: str, body: dict):
        if op == "get_balance_for_update":
            return self._row_oid(body["row"])
        return None

    def _read_balance(self, body: dict, tid: TransactionID, mode):
        oid = self._row_oid(body["row"])
        yield from self.library.lock_object(tid, oid, mode)
        raw = yield from self.library.read_object(oid)
        _, value = unpack_cell(raw)
        return {"balance": int(value) if value is not None else 0}

    def op_get_balance(self, body: dict, tid: TransactionID):
        result = yield from self._read_balance(body, tid, READ)
        return result

    def op_get_balance_for_update(self, body: dict, tid: TransactionID):
        """The read half of the RMW: write-locks the row here, so
        same-row contenders serialize at this replica."""
        result = yield from self._read_balance(body, tid, WRITE)
        return result

    def op_put_balance(self, body: dict, tid: TransactionID):
        """Store an absolute balance (the client computed the sum)."""
        oid = self._row_oid(body["row"])
        balance = int(body["balance"])
        lib = self.library
        yield from lib.lock_object(tid, oid, WRITE)
        yield from lib.pin_and_buffer(tid, oid)
        yield from lib.write_object(oid, pack_cell(self.node.ctx.now,
                                                   balance))
        yield from lib.log_and_unpin(tid, oid)
        self.node.ctx.metrics.counter(self.node.name,
                                      f"{self.TYPE_NAME}.updates").inc()
        return {"balance": balance}


class ReplicatedBranchServer(ReplicatedBalanceServer):
    TYPE_NAME = "branch_server"


class ReplicatedTellerServer(ReplicatedBalanceServer):
    TYPE_NAME = "teller_server"


class ReplicatedAccountServer(ReplicatedBalanceServer):
    TYPE_NAME = "account_server"


class ReplicatedHistoryServer(ReplicatedServerMixin, HistoryServer):
    """History strands as versioned cells, with the append split into
    cursor-read / row-put / cursor-put so it can fan out to replicas."""

    GATED_READS = ("strand_count", "read_row", "strand_count_for_update")

    def for_update_oid(self, op: str, body: dict):
        if op == "strand_count_for_update":
            return self._cell_oid(1 + int(body["strand"]))
        return None

    def _read_count(self, strand: int, tid: TransactionID, mode):
        self._check_strand(strand)
        oid = self._cell_oid(1 + strand)
        yield from self.library.lock_object(tid, oid, mode)
        raw = yield from self.library.read_object(oid)
        _, value = unpack_cell(raw)
        return {"count": int(value) if value is not None else 0}

    def op_strand_count(self, body: dict, tid: TransactionID):
        result = yield from self._read_count(int(body["strand"]), tid, READ)
        return result

    def op_strand_count_for_update(self, body: dict, tid: TransactionID):
        """Write-locks the strand cursor: appends to one strand
        serialize at this replica."""
        result = yield from self._read_count(int(body["strand"]), tid,
                                             WRITE)
        return result

    def op_read_row(self, body: dict, tid: TransactionID):
        strand, slot = int(body["strand"]), int(body["slot"])
        self._check_strand(strand)
        if not 0 <= slot < self.slots:
            raise RowOutOfRange(f"{self.name}: slot {slot} outside "
                                f"0..{self.slots - 1}")
        oid = self._cell_oid(self.strands + strand * self.slots + slot + 1)
        yield from self.library.lock_object(tid, oid, READ)
        raw = yield from self.library.read_object(oid)
        _, row = unpack_cell(raw)
        return {"row": list(row) if row is not None else None}

    def _put_cell(self, cell: int, value: object, tid: TransactionID):
        oid = self._cell_oid(cell)
        lib = self.library
        yield from lib.lock_object(tid, oid, WRITE)
        yield from lib.pin_and_buffer(tid, oid)
        yield from lib.write_object(oid, pack_cell(self.node.ctx.now,
                                                   value))
        yield from lib.log_and_unpin(tid, oid)

    def op_put_row(self, body: dict, tid: TransactionID):
        strand, slot = int(body["strand"]), int(body["slot"])
        self._check_strand(strand)
        if not 0 <= slot < self.slots:
            raise ServerError(f"{self.name}: strand {strand} full "
                              f"({self.slots} rows)")
        row = (int(body["amount"]), int(body["branch"]),
               int(body["teller"]), int(body["account"]))
        yield from self._put_cell(self.strands + strand * self.slots
                                  + slot + 1, row, tid)
        self.node.ctx.metrics.counter(self.node.name,
                                      "history_server.appends").inc()
        return {"slot": slot}

    def op_put_strand_count(self, body: dict, tid: TransactionID):
        strand = int(body["strand"])
        self._check_strand(strand)
        yield from self._put_cell(1 + strand, int(body["count"]), tid)
        return {"count": int(body["count"])}


# -- topology ------------------------------------------------------------------


@dataclass(frozen=True)
class DebitCreditTopology:
    """Where everything lives: branches packed onto ``bank{n}`` nodes.

    Branch ``b`` (its balance row, tellers, account partition, and
    history strands) is hosted by node ``bank{b // branches_per_node}``.
    With the default of one branch per node the hot row serializes the
    node's whole commit stream; co-hosting branches gives each node's
    log device independent, concurrently committing streams.
    """

    branches: int
    branches_per_node: int = 1

    @property
    def nodes(self) -> int:
        return -(-self.branches // self.branches_per_node)

    def node_name(self, branch: int) -> str:
        return f"bank{branch // self.branches_per_node}"

    def branches_on(self, node: str) -> list[int]:
        return [b for b in range(self.branches)
                if self.node_name(b) == node]

    def client_home(self, client: int) -> int:
        """Home branch for closed-loop client ``client``.

        Branches are dealt node-first (branch 0 of node 0, branch 0 of
        node 1, ..., then the second branch of each node) so that any
        client count spreads evenly over nodes before it doubles up on
        branches -- naive ``client % branches`` would pile the first
        ``branches_per_node`` clients onto one node.
        """
        dealt = [branch
                 for offset in range(self.branches_per_node)
                 for branch in range(offset, self.branches,
                                     self.branches_per_node)]
        return dealt[client % self.branches]

    @property
    def node_names(self) -> list[str]:
        return [f"bank{group}" for group in range(self.nodes)]

    def branch_server(self, branch: int) -> str:
        return f"branch{branch}"

    def teller_server(self, branch: int) -> str:
        return f"tellers{branch}"

    def account_server(self, branch: int) -> str:
        return f"accounts{branch}"

    def history_server(self, branch: int) -> str:
        return f"history{branch}"


def build_debitcredit(cluster) -> DebitCreditTopology:
    """Lay the DebitCredit schema over a *fresh* cluster and start it.

    ``branches_per_node`` branches per node; each branch contributes its
    balance row, teller array, (sparse) account partition, and
    per-teller history strands.  Reads the scale from
    ``cluster.config.workload``; with ``config.replication.enabled`` the
    schema is built replicated instead (see
    :func:`build_replicated_debitcredit`).
    """
    if cluster.config.replication.enabled:
        return build_replicated_debitcredit(cluster)
    workload = cluster.config.workload
    topology = DebitCreditTopology(
        branches=workload.branches,
        branches_per_node=workload.branches_per_node)
    for node in topology.node_names:
        cluster.add_node(node)
    for branch in range(workload.branches):
        node = topology.node_name(branch)
        cluster.add_server(node, BranchServer.factory(
            topology.branch_server(branch), rows=1))
        cluster.add_server(node, TellerServer.factory(
            topology.teller_server(branch),
            rows=workload.tellers_per_branch))
        cluster.add_server(node, AccountServer.factory(
            topology.account_server(branch),
            rows=workload.accounts_per_branch))
        cluster.add_server(node, HistoryServer.factory(
            topology.history_server(branch),
            strands=workload.tellers_per_branch,
            slots_per_strand=workload.history_slots_per_teller))
    cluster.start()
    return topology


def build_replicated_debitcredit(cluster) -> DebitCreditTopology:
    """The available-copies variant: every branch's four key-spaces are
    placed on ``replication_factor`` nodes by ring placement, anchored
    at the branch's home node.  The same server name recurs on each
    replica node (segment ids ``{node}:{name}`` stay unique), which is
    what lets the Name Server scope lookups per replica.
    """
    workload = cluster.config.workload
    replication = cluster.config.replication
    topology = DebitCreditTopology(
        branches=workload.branches,
        branches_per_node=workload.branches_per_node)
    for node in topology.node_names:
        cluster.add_node(node)
    keyspaces: list[str] = []
    anchors: dict[str, int] = {}
    factories: dict[str, object] = {}
    for branch in range(workload.branches):
        anchor = branch // workload.branches_per_node
        for name, factory in (
                (topology.branch_server(branch),
                 ReplicatedBranchServer.factory(
                     topology.branch_server(branch), rows=1)),
                (topology.teller_server(branch),
                 ReplicatedTellerServer.factory(
                     topology.teller_server(branch),
                     rows=workload.tellers_per_branch)),
                (topology.account_server(branch),
                 ReplicatedAccountServer.factory(
                     topology.account_server(branch),
                     rows=workload.accounts_per_branch)),
                (topology.history_server(branch),
                 ReplicatedHistoryServer.factory(
                     topology.history_server(branch),
                     strands=workload.tellers_per_branch,
                     slots_per_strand=workload
                     .history_slots_per_teller))):
            keyspaces.append(name)
            anchors[name] = anchor
            factories[name] = factory
    placement = PlacementMap.ring(keyspaces, topology.node_names,
                                  replication.replication_factor, anchors)
    cluster.set_placement(placement)
    for name in keyspaces:
        for node in placement.replicas(name):
            cluster.add_server(node, factories[name])
    cluster.start()
    return topology


# -- the transaction -----------------------------------------------------------


@dataclass(frozen=True)
class TxnSpec:
    """One DebitCredit transaction, fully decided before it runs."""

    home_branch: int
    teller: int          # 1..tellers_per_branch, in the home branch
    account_branch: int  # == home_branch for `locality` of the traffic
    account: int         # 1..accounts_per_branch, in account_branch
    amount: int          # signed, never zero

    @property
    def remote(self) -> bool:
        return self.account_branch != self.home_branch


def draw_spec(rng: random.Random, workload, home_branch: int) -> TxnSpec:
    """Draw one transaction: 90/10 branch locality, signed amount."""
    if (workload.branches > 1
            and rng.random() >= workload.locality):
        others = [b for b in range(workload.branches) if b != home_branch]
        account_branch = rng.choice(others)
    else:
        account_branch = home_branch
    magnitude = rng.randint(1, workload.max_delta)
    return TxnSpec(
        home_branch=home_branch,
        teller=rng.randint(1, workload.tellers_per_branch),
        account_branch=account_branch,
        account=rng.randint(1, workload.accounts_per_branch),
        amount=magnitude if rng.random() < 0.5 else -magnitude)


def debitcredit_txn(app, topology: DebitCreditTopology, spec: TxnSpec,
                    tid: TransactionID):
    """The transaction body: account, teller, branch (hot row), history.

    The hot branch row is updated *last*, Gray's standard trick: the
    exclusive lock on the row every sibling wants is held only across
    the final update and commit, not the whole transaction.  The
    ordering (accounts < tellers < branches < history) is also a global
    lock order, so the workload is deadlock-free by construction.
    """
    account_ref = yield from app.lookup_one(
        topology.account_server(spec.account_branch),
        node_name=topology.node_name(spec.account_branch))
    yield from app.call(account_ref, "add_to_balance",
                        {"row": spec.account, "amount": spec.amount}, tid)
    teller_ref = yield from app.lookup_one(
        topology.teller_server(spec.home_branch),
        node_name=topology.node_name(spec.home_branch))
    yield from app.call(teller_ref, "add_to_balance",
                        {"row": spec.teller, "amount": spec.amount}, tid)
    branch_ref = yield from app.lookup_one(
        topology.branch_server(spec.home_branch),
        node_name=topology.node_name(spec.home_branch))
    yield from app.call(branch_ref, "add_to_balance",
                        {"row": 1, "amount": spec.amount}, tid)
    history_ref = yield from app.lookup_one(
        topology.history_server(spec.home_branch),
        node_name=topology.node_name(spec.home_branch))
    yield from app.call(history_ref, "append",
                        {"strand": spec.teller - 1, "amount": spec.amount,
                         "branch": spec.home_branch, "teller": spec.teller,
                         "account": spec.account}, tid)


def _replicated_rmw(rapp: ReplicatedApp, keyspace: str, row: int,
                    amount: int, tid: TransactionID):
    """One replicated tier update: for-update read at the first
    available copy, absolute put to all available copies."""
    reply = yield from rapp.read(keyspace, "get_balance_for_update",
                                 {"row": row}, tid, for_update=True)
    yield from rapp.write_all(keyspace, "put_balance",
                              {"row": row,
                               "balance": reply["balance"] + amount}, tid)


def replicated_debitcredit_txn(rapp: ReplicatedApp,
                               topology: DebitCreditTopology,
                               spec: TxnSpec, tid: TransactionID):
    """The transaction body over replicated tiers.

    Same shape and global lock order as :func:`debitcredit_txn`
    (accounts < tellers < branches < history, hot branch row last), but
    each update is a client-side read-modify-write: the for-update read
    locks the row at one replica (serializing same-row contenders
    there), the computed absolute value fans out to every available
    copy.  If any written copy fails before commit, commit-time
    validation aborts the transaction.
    """
    yield from _replicated_rmw(
        rapp, topology.account_server(spec.account_branch), spec.account,
        spec.amount, tid)
    yield from _replicated_rmw(
        rapp, topology.teller_server(spec.home_branch), spec.teller,
        spec.amount, tid)
    yield from _replicated_rmw(
        rapp, topology.branch_server(spec.home_branch), 1, spec.amount, tid)
    history = topology.history_server(spec.home_branch)
    strand = spec.teller - 1
    reply = yield from rapp.read(history, "strand_count_for_update",
                                 {"strand": strand}, tid, for_update=True)
    slot = reply["count"]
    yield from rapp.write_all(history, "put_row",
                              {"strand": strand, "slot": slot,
                               "amount": spec.amount,
                               "branch": spec.home_branch,
                               "teller": spec.teller,
                               "account": spec.account}, tid)
    yield from rapp.write_all(history, "put_strand_count",
                              {"strand": strand, "count": slot + 1}, tid)


# -- the seeded workload driver ------------------------------------------------


@dataclass
class DebitCreditRecord:
    """One scheduled transaction's fate, as the client saw it."""

    index: int
    spec: TxnSpec
    outcome: str = "unknown"  # committed | aborted | failed | unknown | skipped
    tid: object = None
    error: str = ""


@dataclass
class DebitCreditStats:
    records: list[DebitCreditRecord] = field(default_factory=list)

    def outcomes(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.outcome] = counts.get(record.outcome, 0) + 1
        return counts

    def committed(self) -> list[DebitCreditRecord]:
        return [r for r in self.records if r.outcome == "committed"]

    def unknown(self) -> list[DebitCreditRecord]:
        return [r for r in self.records if r.outcome == "unknown"]


class DebitCreditWorkload:
    """Seeded DebitCredit traffic plus the conservation audits.

    Mirrors :class:`~repro.chaos.workload.ChaosWorkload`: every random
    decision is drawn up front from one seeded RNG, transactions are
    spawned as processes owned by their home-branch node (a node crash
    kills its in-flight clients, whose outcomes become ``unknown``), and
    :meth:`check_invariants` audits the durable state afterwards.  The
    ``controller`` is optional -- fault-free runs (the property suite)
    audit the same invariants without one.
    """

    def __init__(self, cluster, topology: DebitCreditTopology,
                 controller=None, seed: int = 0) -> None:
        self.cluster = cluster
        self.topology = topology
        self.controller = controller
        self.workload = cluster.config.workload
        #: route through the available-copies protocol and audit replica
        #: convergence when the cluster was built replicated
        self.replicated = cluster.config.replication.enabled
        self.rng = random.Random(seed)
        self.stats = DebitCreditStats()
        #: set once every node has been crashed and recovered, which
        #: rebuilds and flushes the disk image -- the point after which
        #: the disk-versus-log audits are meaningful
        self._disk_checkable = False
        #: durable terminal statuses, immune to log truncation; kept by
        #: the controller when one is attached, by our own log observers
        #: otherwise (checkpoints may reclaim COMMITTED records the
        #: audits still need to see)
        if controller is None:
            self.status_history: dict[str, dict] = {}
            for name, tabs_node in cluster.nodes.items():
                self._watch_node(name, tabs_node)
            # Nodes that join the running cluster later (online
            # reconfiguration) need the same observer or their terminal
            # statuses would be invisible to the audits.
            cluster.node_join_hooks.append(
                lambda tabs_node: self._watch_node(tabs_node.name,
                                                   tabs_node))
        else:
            self.status_history = controller.status_history

    def _watch_node(self, name: str, tabs_node) -> None:
        self.status_history[name] = {}
        tabs_node.log_store.observers.append(
            lambda record, node=name: self._observe(node, record))

    def _observe(self, node: str, record) -> None:
        from repro.wal.records import TransactionStatusRecord, TxnStatus

        if (isinstance(record, TransactionStatusRecord)
                and record.status in (TxnStatus.COMMITTED,
                                      TxnStatus.ABORTED)):
            self.status_history[node].setdefault(
                record.tid, set()).add(record.status.value)

    @property
    def engine(self):
        return self.cluster.engine

    # -- traffic -------------------------------------------------------------

    def schedule_traffic(self, txns: int = 20, first_at_ms: float = 5.0,
                         spacing_ms: float = 120.0) -> None:
        """Schedule ``txns`` DebitCredit transactions at jittered instants."""
        at_ms = first_at_ms
        for index in range(txns):
            home = self.rng.randrange(self.workload.branches)
            spec = draw_spec(self.rng, self.workload, home)
            record = DebitCreditRecord(index, spec)
            self.stats.records.append(record)
            self.engine.schedule(at_ms,
                                 lambda r=record: self._spawn(r))
            at_ms += self.rng.uniform(0.3, 1.0) * spacing_ms

    def _spawn(self, record: DebitCreditRecord) -> None:
        node = self.cluster.node(
            self.topology.node_name(record.spec.home_branch)).node
        if not node.alive:
            record.outcome = "skipped"
            self._trace(record)
            return
        node.spawn(self._transaction(record),
                   name=f"debitcredit-{record.index}", defused=True)

    def _trace(self, record: DebitCreditRecord) -> None:
        if self.controller is not None:
            spec = record.spec
            self.controller.record(
                "txn", record.index, "debitcredit", record.outcome,
                spec.home_branch, spec.teller, spec.account_branch,
                spec.account, spec.amount)

    def _transaction(self, record: DebitCreditRecord):
        spec = record.spec
        home = self.topology.node_name(spec.home_branch)
        if self.replicated:
            app = ReplicatedApp(self.cluster, home)
            body_fn = replicated_debitcredit_txn
        else:
            app = self.cluster.application(home)
            body_fn = debitcredit_txn
        try:
            tid = yield from app.begin_transaction()
            record.tid = tid
            yield from body_fn(app, self.topology, spec, tid)
            committed = yield from app.end_transaction(tid)
            record.outcome = "committed" if committed else "aborted"
        except Exception as error:  # noqa: BLE001 - faults hit anywhere
            record.error = repr(error)
            record.outcome = "unknown"
            yield from self._try_abort(app, record)
        self._trace(record)

    def _try_abort(self, app, record: DebitCreditRecord):
        if record.tid is None:
            record.outcome = "failed"  # never began: definitely no effects
            return
        try:
            yield from app.abort_transaction(record.tid, reason=record.error)
            record.outcome = "aborted"
        except Exception:  # noqa: BLE001 - node/TM may be gone
            pass

    # -- driving -------------------------------------------------------------

    def run(self, until_ms: float) -> None:
        self.engine.run(until=self.engine.now + until_ms)

    def drain(self) -> None:
        """Fault-free drain: run the simulation to quiescence."""
        self.cluster.settle()

    def crash_and_recover_all(self) -> None:
        """Controller-free finale: power-cycle every node, twice.

        The first round turns straggling resolution into durable log
        state; the second rebuilds the disk image from those logs, after
        which the disk-versus-log audits apply (and recovery idempotency
        got exercised for free).
        """
        for _ in range(2):
            for name in sorted(self.cluster.nodes):
                if not self.cluster.node(name).retired:
                    self.cluster.crash_node(name)
            for name in sorted(self.cluster.nodes):
                if not self.cluster.node(name).retired:
                    self.cluster.restart_node(name)
            self.cluster.settle()
        self._disk_checkable = True

    def finale(self, quiesce_ms: float = 900_000.0) -> bool:
        """Repair, quiesce, then crash/recover everything twice (see
        :meth:`ChaosWorkload.finale`); needs a controller."""
        self.controller.repair_all()
        quiet = self.controller.quiesce(max_ms=quiesce_ms)
        for _ in range(2):
            for tabs_node in self.cluster.nodes.values():
                if not tabs_node.retired:
                    tabs_node.crash()
            self.controller.repair_all()
            quiet = self.controller.quiesce(max_ms=quiesce_ms) and quiet
        self._disk_checkable = True
        return quiet

    # -- audits --------------------------------------------------------------

    def _read_only(self, node_name: str, body_fn):
        return self.cluster.run_transaction(node_name, body_fn)

    def _audit_home(self, branch: int) -> str:
        """The node to run a branch's audit reads from: its home node,
        unless retirement removed it -- replicated reads route by
        placement, so any live node can front them."""
        node = self.topology.node_name(branch)
        tabs_node = self.cluster.nodes.get(node)
        if tabs_node is not None and not tabs_node.retired:
            return node
        return min(name for name, candidate in self.cluster.nodes.items()
                   if not candidate.retired)

    def _tier_sums(self) -> dict[str, int]:
        """Per-tier totals, reading only rows the traffic could touch."""
        if self.replicated:
            return self._tier_sums_replicated()
        touched_accounts: dict[int, set[int]] = {}
        for record in self.stats.records:
            touched_accounts.setdefault(
                record.spec.account_branch, set()).add(record.spec.account)
        sums = {"branches": 0, "tellers": 0, "accounts": 0, "history": 0,
                "history_rows": 0}
        for branch in range(self.workload.branches):
            node = self.topology.node_name(branch)

            def read_branch(tid, branch=branch, node=node):
                app = self.cluster.application(node)
                branch_ref = yield from app.lookup_one(
                    self.topology.branch_server(branch), node_name=node)
                reply = yield from app.call(branch_ref, "get_balance",
                                            {"row": 1}, tid)
                totals = [reply["balance"], 0, 0, 0, 0]
                teller_ref = yield from app.lookup_one(
                    self.topology.teller_server(branch), node_name=node)
                for row in range(1, self.workload.tellers_per_branch + 1):
                    reply = yield from app.call(teller_ref, "get_balance",
                                                {"row": row}, tid)
                    totals[1] += reply["balance"]
                account_ref = yield from app.lookup_one(
                    self.topology.account_server(branch), node_name=node)
                for row in sorted(touched_accounts.get(branch, ())):
                    reply = yield from app.call(account_ref, "get_balance",
                                                {"row": row}, tid)
                    totals[2] += reply["balance"]
                history_ref = yield from app.lookup_one(
                    self.topology.history_server(branch), node_name=node)
                for strand in range(self.workload.tellers_per_branch):
                    reply = yield from app.call(history_ref, "strand_count",
                                                {"strand": strand}, tid)
                    count = reply["count"]
                    totals[4] += count
                    for slot in range(count):
                        reply = yield from app.call(
                            history_ref, "read_row",
                            {"strand": strand, "slot": slot}, tid)
                        totals[3] += reply["row"][0]
                return totals

            branch_total, tellers, accounts, history, rows = \
                self._read_only(node, read_branch)
            sums["branches"] += branch_total
            sums["tellers"] += tellers
            sums["accounts"] += accounts
            sums["history"] += history
            sums["history_rows"] += rows
        return sums

    def _tier_sums_replicated(self) -> dict[str, int]:
        """The replicated audit read: any available copy of each tier."""
        touched_accounts: dict[int, set[int]] = {}
        for record in self.stats.records:
            touched_accounts.setdefault(
                record.spec.account_branch, set()).add(record.spec.account)
        sums = {"branches": 0, "tellers": 0, "accounts": 0, "history": 0,
                "history_rows": 0}
        for branch in range(self.workload.branches):
            node = self._audit_home(branch)

            def read_branch(tid, branch=branch, node=node):
                rapp = ReplicatedApp(self.cluster, node)
                reply = yield from rapp.read(
                    self.topology.branch_server(branch), "get_balance",
                    {"row": 1}, tid)
                totals = [reply["balance"], 0, 0, 0, 0]
                tellers = self.topology.teller_server(branch)
                for row in range(1, self.workload.tellers_per_branch + 1):
                    reply = yield from rapp.read(tellers, "get_balance",
                                                 {"row": row}, tid)
                    totals[1] += reply["balance"]
                accounts = self.topology.account_server(branch)
                for row in sorted(touched_accounts.get(branch, ())):
                    reply = yield from rapp.read(accounts, "get_balance",
                                                 {"row": row}, tid)
                    totals[2] += reply["balance"]
                history = self.topology.history_server(branch)
                for strand in range(self.workload.tellers_per_branch):
                    reply = yield from rapp.read(history, "strand_count",
                                                 {"strand": strand}, tid)
                    count = reply["count"]
                    totals[4] += count
                    for slot in range(count):
                        reply = yield from rapp.read(
                            history, "read_row",
                            {"strand": strand, "slot": slot}, tid)
                        totals[3] += reply["row"][0]
                return totals

            branch_total, tellers, accounts, history, rows = \
                self._read_only(node, read_branch)
            sums["branches"] += branch_total
            sums["tellers"] += tellers
            sums["accounts"] += accounts
            sums["history"] += history
            sums["history_rows"] += rows
        return sums

    def check_conservation(self) -> list[AuditViolation]:
        """The master invariant: three ledgers plus the history agree.

        Branch, teller, and account tiers each record every committed
        flow once, so their totals must coincide with each other and
        with the sum of the history rows; and the history row count must
        match the committed transaction count (bounded by client-side
        ``unknown`` outcomes, which may have committed either way).
        """
        sums = self._tier_sums()
        violations = []
        totals = {sums["branches"], sums["tellers"], sums["accounts"],
                  sums["history"]}
        if len(totals) != 1:
            violations.append(AuditViolation(
                "conservation",
                detail=f"tier totals diverge: branches={sums['branches']} "
                       f"tellers={sums['tellers']} "
                       f"accounts={sums['accounts']} "
                       f"history={sums['history']}"))
        committed = len(self.stats.committed())
        unknown = len(self.stats.unknown())
        if not committed <= sums["history_rows"] <= committed + unknown:
            violations.append(AuditViolation(
                "history-count",
                detail=f"{sums['history_rows']} history rows for "
                       f"{committed} committed (+{unknown} unknown) txns"))
        committed_total = sum(r.spec.amount for r in self.stats.committed())
        if unknown == 0 and sums["history"] != committed_total:
            violations.append(AuditViolation(
                "history-amounts",
                detail=f"history sums to {sums['history']}, committed "
                       f"amounts sum to {committed_total}"))
        return violations

    def check_invariants(self, quiet: bool = True) -> AuditReport:
        """Conservation plus the standard durable-state audits."""
        history = self.status_history
        report = audit_atomicity(self.cluster, history=history)
        if not quiet:
            report.violations.append(AuditViolation(
                "no-quiescence",
                detail="simulation still busy after repair deadline"))
        report.extend(audit_client_commits(
            self.cluster,
            [r.tid for r in self.stats.committed() if r.tid is not None],
            history=history))
        if self._disk_checkable:
            # Before a crash-all/recover-all, committed values may still
            # (legitimately) live only in volatile page frames.  Retired
            # nodes are excluded: their shards migrated away, so their
            # disks legitimately froze at the pre-migration state.
            for tabs_node in self.cluster.nodes.values():
                if tabs_node.retired:
                    continue
                report.extend(audit_committed_values(tabs_node))
                report.extend(audit_storage_integrity(tabs_node))
            if self.replicated:
                # Single-copy serializability at the cell level: every
                # replica of every key-space agrees on every value.
                report.extend(audit_replica_convergence(self.cluster))
        report.extend(self.check_conservation())
        self.cluster.settle()
        report.extend(audit_drainage(self.cluster))
        return report
