"""``repro.workloads``: application schemas layered on the facility.

A *workload* is a complete banking-style schema -- data servers, node
topology, a seeded load generator, and the invariant audits that make its
results credible -- selected by :class:`~repro.core.config.WorkloadConfig`
and built over a :class:`~repro.core.cluster.TabsCluster` via
:meth:`~repro.core.cluster.TabsCluster.build_workload`.

The first (and canonical) workload is Gray's DebitCredit / TPC-B banking
benchmark (:mod:`repro.workloads.debitcredit`): the "heavy traffic"
stressor whose hot branch row punishes two-phase locking and whose
history append rewards group commit.
"""

from repro.workloads.debitcredit import (
    AccountServer,
    BranchServer,
    DebitCreditTopology,
    DebitCreditWorkload,
    HistoryServer,
    ReplicatedAccountServer,
    ReplicatedBranchServer,
    ReplicatedHistoryServer,
    ReplicatedTellerServer,
    TellerServer,
    TxnSpec,
    build_debitcredit,
    build_replicated_debitcredit,
    debitcredit_txn,
    draw_spec,
    replicated_debitcredit_txn,
)

#: schema name -> builder(cluster) -> topology
_BUILDERS = {
    "debitcredit": build_debitcredit,
}


def build_workload(cluster):
    """Build the workload selected by ``cluster.config.workload``."""
    schema = cluster.config.workload.schema
    return _BUILDERS[schema](cluster)


__all__ = [
    "AccountServer",
    "BranchServer",
    "DebitCreditTopology",
    "DebitCreditWorkload",
    "HistoryServer",
    "ReplicatedAccountServer",
    "ReplicatedBranchServer",
    "ReplicatedHistoryServer",
    "ReplicatedTellerServer",
    "TellerServer",
    "TxnSpec",
    "build_debitcredit",
    "build_replicated_debitcredit",
    "build_workload",
    "debitcredit_txn",
    "draw_spec",
    "replicated_debitcredit_txn",
]
