"""Lock modes and compatibility protocols.

The server library supports the standard shared/exclusive (read/write)
protocol out of the box, and data servers may define *type-specific* lock
modes with their own compatibility relation to get more concurrency
(Section 2.1.3; Korth; Schwarz & Spector).  A compatibility relation answers
one question: may a lock in ``requested`` mode be granted while another
transaction holds a lock in ``held`` mode?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TabsError


@dataclass(frozen=True)
class LockMode:
    """A named lock mode (e.g. READ, WRITE, ENQUEUE)."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


READ = LockMode("READ")
WRITE = LockMode("WRITE")


class CompatibilityMatrix:
    """A compatibility relation over a fixed set of lock modes.

    ``compatible[(held, requested)]`` need not be symmetric, though the
    standard protocols are.  Unlisted pairs are incompatible, which is the
    safe default for type-specific protocols.
    """

    def __init__(self, name: str, modes: tuple[LockMode, ...],
                 compatible_pairs: frozenset[tuple[LockMode, LockMode]]):
        self.name = name
        self.modes = modes
        self._compatible = set(compatible_pairs)
        for held, requested in compatible_pairs:
            if held not in modes or requested not in modes:
                raise TabsError(
                    f"protocol {name!r}: pair ({held}, {requested}) uses "
                    "an undeclared mode")

    def check_mode(self, mode: LockMode) -> None:
        if mode not in self.modes:
            raise TabsError(
                f"mode {mode!r} is not part of protocol {self.name!r}")

    def compatible(self, held: LockMode, requested: LockMode) -> bool:
        """May ``requested`` be granted to one transaction while another
        holds ``held``?  (Locks held by the *same* transaction are always
        mutually compatible; the lock manager handles that case.)"""
        return (held, requested) in self._compatible

    def covers(self, held: LockMode, requested: LockMode) -> bool:
        """Does holding ``held`` already grant the rights of ``requested``?

        Used for lock conversion: a transaction holding WRITE need not
        acquire READ.  A mode covers another when everything incompatible
        with the weaker mode is also incompatible with the stronger one.
        """
        if held == requested:
            return True
        # held is at least as restrictive as requested when every mode that
        # may run beside held may also run beside requested.
        return all(self.compatible(other, requested)
                   for other in self.modes if self.compatible(other, held))


def _symmetric(*pairs: tuple[LockMode, LockMode]) -> frozenset:
    closure = set()
    for a, b in pairs:
        closure.add((a, b))
        closure.add((b, a))
    return frozenset(closure)


#: The standard shared/exclusive protocol: readers share, writers exclude.
READ_WRITE_PROTOCOL = CompatibilityMatrix(
    "read/write", (READ, WRITE), _symmetric((READ, READ)))


def make_protocol(name: str, mode_names: tuple[str, ...],
                  compatible_pairs: tuple[tuple[str, str], ...],
                  symmetric: bool = True) -> CompatibilityMatrix:
    """Build a type-specific protocol from mode names.

    Example -- a directory protocol where inserts of *different* keys
    commute is expressed at the key level instead, but a weak-queue protocol
    where ENQUEUE operations commute with each other looks like::

        make_protocol("weak-queue", ("ENQUEUE", "DEQUEUE", "READ"),
                      (("ENQUEUE", "ENQUEUE"),))
    """
    modes = {n: LockMode(n) for n in mode_names}
    for a, b in compatible_pairs:
        if a not in modes or b not in modes:
            raise TabsError(
                f"protocol {name!r}: pair ({a!r}, {b!r}) uses an undeclared "
                "mode")
    pairs = [(modes[a], modes[b]) for a, b in compatible_pairs]
    closure = _symmetric(*pairs) if symmetric else frozenset(pairs)
    return CompatibilityMatrix(name, tuple(modes.values()), closure)
