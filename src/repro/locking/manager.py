"""The lock manager.

Each data server owns one lock manager ("servers implement locking
locally", Section 2.1.3).  Requests that cannot be granted wait in a FIFO
queue per lock; a user-set time-out bounds the wait and resolves deadlock,
exactly as in TABS.  All unlocking is done in bulk at commit or abort time
by the server library (Section 3.1.1: "All unlocking is done automatically
by the server library at commit or abort time").
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Hashable, Iterator

from repro.errors import LockTimeout, TabsError, TransactionAborted
from repro.kernel.context import SimContext
from repro.locking.modes import CompatibilityMatrix, LockMode, READ_WRITE_PROTOCOL
from repro.sim import AnyOf, Event, Timeout

#: Default lock wait bound, milliseconds.  "Time-outs ... are explicitly set
#: by system users"; benchmarks never wait, so the default only matters for
#: genuinely conflicting workloads.
DEFAULT_LOCK_TIMEOUT_MS = 10_000.0


@dataclass
class _Waiter:
    tid: Hashable
    mode: LockMode
    event: Event


@dataclass
class _LockEntry:
    #: granted modes: tid -> multiset of modes (a tid may hold READ twice)
    holders: dict[Hashable, list[LockMode]] = field(default_factory=dict)
    queue: collections.deque = field(default_factory=collections.deque)


class LockManager:
    """Per-server lock table with FIFO waiting and time-outs."""

    def __init__(self, ctx: SimContext,
                 protocol: CompatibilityMatrix = READ_WRITE_PROTOCOL,
                 default_timeout_ms: float = DEFAULT_LOCK_TIMEOUT_MS,
                 node_name: str = "") -> None:
        self.ctx = ctx
        self.protocol = protocol
        self.default_timeout_ms = default_timeout_ms
        #: which node's metrics/trace track lock activity lands on
        self.node_name = node_name
        self._locks: dict[Hashable, _LockEntry] = {}
        self.timeouts = 0
        self.waits = 0
        # Registered so a profiler can snapshot cluster-wide wait-for
        # graphs; managers of crashed nodes stay listed (their cleared
        # tables contribute no edges).
        ctx.lock_managers.append(self)

    # -- queries ---------------------------------------------------------------

    def is_locked(self, key: Hashable) -> bool:
        """Table 3-1's ``IsObjectLocked``: is any lock set on ``key``?"""
        entry = self._locks.get(key)
        return bool(entry and entry.holders)

    def holds(self, tid: Hashable, key: Hashable,
              mode: LockMode | None = None) -> bool:
        entry = self._locks.get(key)
        if not entry or tid not in entry.holders:
            return False
        if mode is None:
            return True
        return any(self.protocol.covers(held, mode)
                   for held in entry.holders[tid])

    def held_keys(self, tid: Hashable) -> list[Hashable]:
        return [key for key, entry in self._locks.items()
                if tid in entry.holders]

    def exclusive_holder(self, key: Hashable,
                         against: LockMode) -> Hashable | None:
        """The transaction holding ``key`` in a mode incompatible with
        ``against``, or None if ``against`` could be granted outright."""
        entry = self._locks.get(key)
        if not entry:
            return None
        for tid, modes in entry.holders.items():
            if any(not self.protocol.compatible(held, against)
                   for held in modes):
                return tid
        return None

    def wait_graph(self) -> list[dict]:
        """Every queued request as a wait-for edge (profiler snapshot).

        Deterministic: lock keys iterate in insertion order and holders
        render sorted.
        """
        edges: list[dict] = []
        for key, entry in self._locks.items():
            for waiter in entry.queue:
                edges.append({
                    "node": self.node_name,
                    "key": str(key),
                    "waiter": str(waiter.tid),
                    "mode": waiter.mode.name,
                    "holders": sorted(str(holder)
                                      for holder in entry.holders),
                })
        return edges

    def waiting_for(self, tid: Hashable) -> set[Hashable]:
        """Transactions that ``tid`` is currently queued behind (for the
        optional deadlock detector)."""
        blockers: set[Hashable] = set()
        for entry in self._locks.values():
            for waiter in entry.queue:
                if waiter.tid == tid:
                    blockers.update(h for h in entry.holders if h != tid)
        return blockers

    # -- acquisition -------------------------------------------------------------

    def _grantable(self, entry: _LockEntry, tid: Hashable,
                   mode: LockMode) -> bool:
        return all(
            holder == tid or
            all(self.protocol.compatible(held, mode)
                for held in held_modes)
            for holder, held_modes in entry.holders.items())

    def _grant(self, entry: _LockEntry, tid: Hashable, mode: LockMode) -> None:
        entry.holders.setdefault(tid, []).append(mode)

    def try_lock(self, tid: Hashable, key: Hashable, mode: LockMode) -> bool:
        """``ConditionallyLockObject``: acquire or return False immediately."""
        self.protocol.check_mode(mode)
        entry = self._locks.setdefault(key, _LockEntry())
        if self.holds(tid, key, mode):
            return True  # already covered (e.g. WRITE held, READ requested)
        # FIFO fairness: do not jump a non-empty queue unless already holding.
        if entry.queue and tid not in entry.holders:
            return False
        if self._grantable(entry, tid, mode):
            self._grant(entry, tid, mode)
            return True
        return False

    def lock(self, tid: Hashable, key: Hashable, mode: LockMode,
             timeout_ms: float | None = None,
             priority: bool = False) -> Iterator:
        """``LockObject``: acquire, waiting if necessary (generator).

        Raises :class:`LockTimeout` when the wait exceeds the time-out --
        the caller (server library) then aborts the transaction, which is
        how TABS breaks deadlocks.

        ``priority`` queues the request at the *head* of the wait queue
        instead of the tail: it waits only for the current holders, not
        the whole convoy.  Reserved for work that restores redundancy
        (replica catch-up) -- a recovering copy's read barrier stays up
        until the merge finishes, so making it wait its turn behind a
        hot-cell convoy trades one transaction's latency for a whole
        copy's availability.
        """
        if self.try_lock(tid, key, mode):
            if self.ctx.tracer is not None:
                # Zero-duration span: granted without waiting, but still a
                # node in the transaction's span tree.
                acquired = self.ctx.tracer.begin(
                    "lock.acquire", self.node_name, "LOCK", tid=tid,
                    key=str(key), mode=mode.name)
                self.ctx.tracer.end(acquired)
            return
        self.waits += 1
        metrics = self.ctx.metrics
        metrics.counter(self.node_name, "lock.waits").inc()
        depth = metrics.gauge(self.node_name, "lock.wait_depth")
        depth.inc()
        started = self.ctx.now
        span_id = 0
        if self.ctx.tracer is not None:
            span_id = self.ctx.tracer.begin(
                "lock.wait", self.node_name, "LOCK", tid=tid,
                key=str(key), mode=mode.name)
        entry = self._locks[key]
        waiter = _Waiter(tid, mode, Event(self.ctx.engine,
                                          name=f"lock:{key}"))
        if priority:
            entry.queue.appendleft(waiter)
        else:
            entry.queue.append(waiter)
        deadline = Timeout(
            self.ctx.engine,
            self.default_timeout_ms if timeout_ms is None else timeout_ms)
        outcome = "granted"
        try:
            which, _value = yield AnyOf(self.ctx.engine,
                                        [waiter.event, deadline])
            if which == 1 and not waiter.event.triggered:
                entry.queue.remove(waiter)
                self.timeouts += 1
                metrics.counter(self.node_name, "lock.timeouts").inc()
                outcome = "timeout"
                raise LockTimeout(
                    f"transaction {tid} timed out waiting for {mode} on "
                    f"{key!r} (holders: {list(entry.holders)})")
            # Granted -- but ``release_all`` may have revoked the grant
            # between ``_wake`` succeeding the event and this coroutine
            # resuming (the transaction finished while it was queued,
            # and a concurrent release let it reach the head first).
            # Proceeding would read or write with no lock held.
            current = self._locks.get(key)
            if current is None or tid not in current.holders:
                outcome = "revoked"
                raise TransactionAborted(
                    tid, f"lock on {key!r} revoked: transaction finished "
                    f"while the request was queued")
        finally:
            depth.dec()
            metrics.histogram(self.node_name, "lock.wait_ms").observe(
                self.ctx.now - started)
            if self.ctx.profiler is not None:
                # Simulated ms, not wall -- the heatmap ranks keys by how
                # much workload time they serialized, deterministically.
                self.ctx.profiler.record_lock_wait(
                    self.node_name, key, self.ctx.now - started)
            if span_id and self.ctx.tracer is not None:
                self.ctx.tracer.end(span_id, outcome=outcome)

    # -- release ---------------------------------------------------------------

    def release_all(self, tid: Hashable) -> list[Hashable]:
        """Drop every lock held by ``tid`` (commit/abort); wake waiters.

        Requests ``tid`` still has *queued* are cancelled: the
        transaction is finished, so granting one later (after its bulk
        unlock already ran) would leave a lock nothing will ever
        release.  The waiting ``lock`` call raises
        :class:`TransactionAborted` instead.

        Returns the keys that were released.
        """
        released = []
        for key, entry in list(self._locks.items()):
            if entry.holders.pop(tid, None) is not None:
                released.append(key)
            for waiter in [w for w in entry.queue if w.tid == tid]:
                entry.queue.remove(waiter)
                if not waiter.event.triggered:
                    waiter.event.fail(TransactionAborted(
                        tid, f"lock request on {key!r} cancelled: "
                        f"transaction finished while queued"))
            self._wake(entry)
            if not entry.holders and not entry.queue:
                del self._locks[key]
        return released

    def release(self, tid: Hashable, key: Hashable) -> None:
        """Early release of one lock (used by non-serializable servers)."""
        entry = self._locks.get(key)
        if not entry or tid not in entry.holders:
            raise TabsError(f"{tid} does not hold a lock on {key!r}")
        del entry.holders[tid]
        self._wake(entry)
        if not entry.holders and not entry.queue:
            del self._locks[key]

    def transfer(self, from_tid: Hashable, to_tid: Hashable) -> None:
        """Move every lock held by ``from_tid`` to ``to_tid``.

        Used when a subtransaction commits: its parent inherits the locks,
        which remain held until the top-level transaction finishes.
        """
        for entry in self._locks.values():
            modes = entry.holders.pop(from_tid, None)
            if modes is not None:
                entry.holders.setdefault(to_tid, []).extend(modes)

    def _wake(self, entry: _LockEntry) -> None:
        """Grant from the head of the queue while compatible (FIFO)."""
        while entry.queue:
            waiter = entry.queue[0]
            if waiter.event.triggered:
                entry.queue.popleft()  # stale: its transaction timed out
                continue
            if not self._grantable(entry, waiter.tid, waiter.mode):
                break
            entry.queue.popleft()
            self._grant(entry, waiter.tid, waiter.mode)
            waiter.event.succeed()

    # -- crash ------------------------------------------------------------------

    def clear(self) -> None:
        """Volatile state: a node crash empties the lock table."""
        self._locks.clear()
