"""Optional wait-for-graph deadlock detection.

TABS itself resolves deadlock with time-outs, but the paper cites systems
that "implement local and distributed deadlock detectors that identify and
break cycles of waiting transactions" (Obermarck 82; R*).  This detector is
that extension: it assembles a wait-for graph from one or more lock
managers and reports cycles so a caller can abort a victim instead of
waiting out the time-out.

Disabled by default; the ablation benchmark compares time-out-based and
detector-based resolution.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.locking.manager import LockManager


class DeadlockDetector:
    """Cycle detection over the union of several lock managers' wait graphs.

    Covering several managers on one node gives local detection; covering
    managers across nodes gives (centralised) distributed detection, the
    simplest of the schemes Obermarck surveys.
    """

    def __init__(self, managers: Iterable[LockManager] = ()) -> None:
        self._managers: list[LockManager] = list(managers)
        self.detections = 0

    def attach(self, manager: LockManager) -> None:
        self._managers.append(manager)

    def wait_for_graph(self) -> dict[Hashable, set[Hashable]]:
        """Edges ``waiter -> holders`` across all attached managers."""
        graph: dict[Hashable, set[Hashable]] = {}
        for manager in self._managers:
            waiters = {waiter.tid
                       for entry in manager._locks.values()
                       for waiter in entry.queue}
            for tid in waiters:
                graph.setdefault(tid, set()).update(manager.waiting_for(tid))
        return graph

    def find_cycle(self) -> list[Hashable] | None:
        """One cycle of waiting transactions, or None.

        Iterative DFS with colouring; deterministic given dict ordering.
        """
        graph = self.wait_for_graph()
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {tid: WHITE for tid in graph}
        parent: dict[Hashable, Hashable] = {}

        for root in graph:
            if colour.get(root, BLACK) != WHITE:
                continue
            stack = [(root, iter(sorted(graph.get(root, ()), key=repr)))]
            colour[root] = GREY
            while stack:
                tid, children = stack[-1]
                advanced = False
                for child in children:
                    if colour.get(child, BLACK) == GREY:
                        # Found a back edge: unwind the cycle.
                        cycle = [child, tid]
                        walker = tid
                        while walker != child:
                            walker = parent[walker]
                            cycle.append(walker)
                        self.detections += 1
                        return list(reversed(cycle[1:]))
                    if colour.get(child, BLACK) == WHITE:
                        colour[child] = GREY
                        parent[child] = tid
                        stack.append(
                            (child, iter(sorted(graph.get(child, ()),
                                                key=repr))))
                        advanced = True
                        break
                if not advanced:
                    colour[tid] = BLACK
                    stack.pop()
        return None

    def choose_victim(self) -> Hashable | None:
        """The transaction to abort to break the first detected cycle.

        Picks the youngest member by repr ordering -- deterministic and, for
        the monotonically numbered TABS transaction identifiers, equivalent
        to aborting the transaction that has done the least work.
        """
        cycle = self.find_cycle()
        if not cycle:
            return None
        return max(cycle, key=repr)
