"""Transaction synchronization by locking.

TABS synchronizes transactions with locks (Section 2.1.3): a transaction
must obtain a lock on all or part of an object before accessing it, and a
lock is granted unless another transaction holds an incompatible one.
Servers implement locking *locally*, so they can tailor the mechanism --
type-specific lock modes and compatibility relations give increased
concurrency (Schwarz & Spector).

Deadlock is resolved by time-outs, as in TABS ("TABS, like many other
systems, currently relies on time-outs").  A wait-for-graph deadlock
detector is also provided as the extension the paper cites from other
systems (Obermarck; R*), disabled by default.

- :mod:`repro.locking.modes` -- lock modes and compatibility protocols,
- :mod:`repro.locking.manager` -- the lock manager,
- :mod:`repro.locking.deadlock` -- the optional cycle detector.
"""

from repro.locking.deadlock import DeadlockDetector
from repro.locking.manager import LockManager
from repro.locking.modes import (
    READ,
    WRITE,
    CompatibilityMatrix,
    LockMode,
    READ_WRITE_PROTOCOL,
)

__all__ = [
    "LockManager", "LockMode", "CompatibilityMatrix", "READ", "WRITE",
    "READ_WRITE_PROTOCOL", "DeadlockDetector",
]
