"""The Recovery Manager process, its client stubs, and the pager client.

Local request port (``recovery_manager`` service):

=======================  =====================================================
``rm.attach``            a data server registers (name, segment, port); reply
``rm.spool``             a value/operation log record from a data server
                         (large message); reply carries the assigned LSN
``rm.prepare_record``    a data server's prepare-time write-set record
                         (large message, fire-and-forget)
``rm.first_modified``    kernel: a recoverable page was newly modified
``rm.write_permission``  kernel: may this page go to disk?  forces the log
                         through the page's LSN, replies with the sequence
                         number to stamp
``rm.page_written``      kernel: the page reached its segment
``rm.append_status``     Transaction Manager status record (optionally
                         forced; forced appends get a reply)
``rm.txn_done``          unforced completion record (read-only commit /
                         coordinator end record)
``rm.merge_chain``       subtransaction commit: fold child chain into parent
``rm.abort``             undo a transaction's effects via its backward
                         chain; reply when every server applied its undos
``rm.checkpoint``        write a checkpoint record; reply
=======================  =====================================================

:class:`RecoveryManagerClient` wraps these exchanges for the Transaction
Manager and the server library, so message counts land exactly where the
paper's Tables 5-2/5-3 put them.  :class:`RmPagerClient` is the kernel side
of the three-message write-ahead-log conversation of Section 3.2.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import RecoveryError
from repro.kernel.messages import Message, MessageKind
from repro.kernel.node import Node
from repro.kernel.ports import Port
from repro.kernel.vm import PagerClient
from repro.rpc.stubs import respond
from repro.txn.ids import TransactionID
from repro.wal.log import WriteAheadLog
from repro.wal.records import (
    LogRecord,
    OperationRecord,
    PageDirtyRecord,
    ServerPrepareRecord,
    TransactionStatusRecord,
    TxnStatus,
    ValueUpdateRecord,
)
from repro.wal.store import LogStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import CommitConfig

SERVICE = "recovery_manager"

#: Start reclamation when the store has fewer free slots than this.
RECLAIM_THRESHOLD_RECORDS = 64


@dataclass
class ServerAttachment:
    name: str
    segment_id: str
    port: Port


class RecoveryManager:
    """One per node; owns the node's common write-ahead log."""

    def __init__(self, node: Node, store: LogStore | None = None,
                 buffer_capacity: int = 512,
                 commit: "CommitConfig | None" = None) -> None:
        self.node = node
        self.ctx = node.ctx
        self.wal = WriteAheadLog(node.ctx, store=store,
                                 buffer_capacity=buffer_capacity,
                                 node_name=node.name, commit=commit)
        self.wal.on_buffer_full = self._on_buffer_full
        # Log-media events (duplex repairs, salvage truncations) land on
        # this node's metrics; rebinding on every rebuild keeps the
        # surviving store pointed at the current node identity.
        self.wal.store.media_observer = self._media_event
        self.port = node.create_port("rm")
        node.register_service(SERVICE, self.port)
        #: per-transaction backward chain head (newest record's LSN)
        self._chains: dict[TransactionID, int] = {}
        self._first_lsn: dict[TransactionID, int] = {}
        #: dirty recoverable pages and their recovery LSNs
        self._page_rec_lsn: dict[tuple[str, int], int] = {}
        self._servers: dict[str, ServerAttachment] = {}
        #: transactions this RM has abort-processed; a record spooled for
        #: one of them arrived *after* the undo walk (a zombie operation
        #: racing its own abort) and is undone inline at ingestion.
        #: Entries age out after two checkpoints (see take_checkpoint) --
        #: a zombie resolves within a few message hops, so nothing for
        #: the tid can still be in flight a whole checkpoint interval on.
        self._aborted_tids: set[TransactionID] = set()
        self._aborted_tids_prior: set[TransactionID] = set()
        #: per aborted transaction, the committed value the undo walk
        #: restored for each object; a zombie record for an object the
        #: walk already undid must restore *this*, not its own old
        #: value -- for a second write cycle that old value is the
        #: transaction's first, equally-aborted write
        self._undone_values: dict[TransactionID, dict] = {}
        #: log position the off-line archive is current to; records above
        #: it are never reclaimed (media recovery needs them).  None until
        #: the first archive dump.
        self.media_retention_lsn: int | None = None
        self.checkpoints_taken = 0
        self.reclamations = 0
        node.spawn(self._loop(), name="recovery-manager", defused=True)

    # -- plumbing ---------------------------------------------------------------

    def _media_event(self, kind: str, count: int = 1) -> None:
        self.ctx.metrics.counter(self.node.name, kind).inc(count)

    def _loop(self):
        while True:
            message = yield self.port.receive()
            handler = getattr(self, "_handle_" + message.op.split(".")[-1],
                              None)
            if handler is None:
                continue
            self.node.spawn(handler(message), name=f"rm:{message.op}",
                            defused=True)

    def _append_chained(self, record: LogRecord) -> int:
        """Append with the per-transaction backward chain maintained."""
        tid = record.tid
        if tid is not None:
            record.prev_lsn = self._chains.get(tid, 0)
        lsn = self.wal.append(record)
        if tid is not None:
            self._chains[tid] = lsn
            self._first_lsn.setdefault(tid, lsn)
        return lsn

    # -- attachment ---------------------------------------------------------------

    def _handle_attach(self, message: Message):
        body = message.body
        self._servers[body["server"]] = ServerAttachment(
            body["server"], body["segment_id"], body["port"])
        respond(message, {"ok": True})
        return
        yield  # pragma: no cover

    def attachment(self, server: str) -> ServerAttachment:
        try:
            return self._servers[server]
        except KeyError:
            raise RecoveryError(
                f"server {server!r} never attached to the Recovery Manager "
                f"on {self.node.name!r}") from None

    # -- spooling -------------------------------------------------------------------

    def _handle_spool(self, message: Message):
        record: LogRecord = message.body["record"]
        span_id = 0
        if self.ctx.tracer is not None:
            span_id = self.ctx.tracer.begin(
                "rm.spool", self.node.name, "RM", tid=record.tid,
                parent_id=message.trace_parent,
                record=type(record).__name__)
        # Spooling runs on the shared CPU while the data server waits for
        # the ack, so it is squarely on the transaction's critical path
        # (10 ms per record in the Section 5.2 accounting).
        yield self.ctx.cpu("RM", self.ctx.cpu_costs.rm_spool_record)
        lsn = self._append_chained(record)
        for oid in _oids_of(record):
            for page in oid.pages():
                self._page_rec_lsn.setdefault((oid.segment_id, page), lsn)
        if record.tid in self._aborted_tids:
            # A zombie write racing its own abort: the undo walk already
            # ran, so neutralize the record now -- restore the old value
            # and log the compensation -- *before* acking the spool, so
            # the data server's write cycle cannot complete (and its
            # locks cannot be released) around a value the abort missed.
            yield from self._instruct_undo(record, zombie=True)
        respond(message, {"lsn": lsn})
        if span_id and self.ctx.tracer is not None:
            self.ctx.tracer.end(span_id, lsn=lsn)
        self._maybe_reclaim()

    def _handle_prepare_record(self, message: Message):
        self._append_chained(message.body["record"])
        return
        yield  # pragma: no cover

    # -- kernel conversation (write-ahead-log gating) ----------------------------------

    def _handle_first_modified(self, message: Message):
        key = (message.body["segment_id"], message.body["page"])
        lsn = self.wal.append(PageDirtyRecord(
            segment_id=key[0], page=key[1]))
        self._page_rec_lsn.setdefault(key, lsn)
        return
        yield  # pragma: no cover

    def _handle_write_permission(self, message: Message):
        page_lsn = message.body["page_lsn"]
        yield from self.wal.force(up_to_lsn=page_lsn)
        respond(message, {"sequence_number": page_lsn})
        self._maybe_reclaim()

    def _handle_page_written(self, message: Message):
        key = (message.body["segment_id"], message.body["page"])
        self._page_rec_lsn.pop(key, None)
        return
        yield  # pragma: no cover

    # -- transaction management records ----------------------------------------------

    def _handle_append_status(self, message: Message):
        body = message.body
        record = TransactionStatusRecord(
            tid=body["tid"], status=TxnStatus(body["status"]),
            servers=tuple(body.get("servers", ())),
            coordinator=body.get("coordinator", ""),
            children=tuple(body.get("children", ())),
            merged_into=body.get("merged_into"))
        self._append_chained(record)
        if body.get("force"):
            span_id = 0
            if self.ctx.tracer is not None:
                span_id = self.ctx.tracer.begin(
                    "rm.force_status", self.node.name, "RM",
                    tid=body["tid"], status=body["status"])
            # Commit-record processing: the 8 ms extra overlaps the stable
            # write (the paper itself notes this double-counting), while the
            # 5 ms per-transaction bookkeeping is recorded alongside.
            self.ctx.meter.record_cpu(
                "RM", self.ctx.cpu_costs.rm_commit_write_extra)
            self.ctx.meter.record_cpu("RM", self.ctx.cpu_costs.rm_read_txn)
            yield from self.wal.force()
            if span_id and self.ctx.tracer is not None:
                self.ctx.tracer.end(span_id)
            respond(message, {"ok": True})
            self._maybe_reclaim()
        if record.status in (TxnStatus.COMMITTED, TxnStatus.ABORTED):
            self._retire(body["tid"])

    def _handle_txn_done(self, message: Message):
        # One-way message: the CPU is recorded here, while the serialization
        # delay it imposes on the shared CPU is modelled at the Transaction
        # Manager's reply point (single-CPU Perq approximation).
        self.ctx.meter.record_cpu("RM", self.ctx.cpu_costs.rm_read_txn)
        tid = message.body["tid"]
        self._append_chained(TransactionStatusRecord(
            tid=tid, status=TxnStatus.ENDED))
        self._retire(tid)
        return
        yield  # pragma: no cover

    def _handle_merge_chain(self, message: Message):
        child: TransactionID = message.body["child"]
        parent: TransactionID = message.body["parent"]
        self._append_chained(TransactionStatusRecord(
            tid=child, status=TxnStatus.MERGED, merged_into=parent))
        # Splice the child's chain onto the parent's: the parent's next
        # record will point at the child's newest, whose oldest points back
        # into the parent's existing chain.
        child_head = self._chains.pop(child, 0)
        if child_head:
            parent_head = self._chains.get(parent, 0)
            oldest = child_head
            while True:
                record = self.wal.record_at(oldest)
                if record.prev_lsn == 0 or record.tid != child:
                    break
                oldest = record.prev_lsn
            self.wal.record_at(oldest).prev_lsn = parent_head
            self._chains[parent] = child_head
            self._first_lsn.setdefault(
                parent, self._first_lsn.get(child, child_head))
        self._first_lsn.pop(child, None)
        respond(message, {"ok": True})
        return
        yield  # pragma: no cover

    def _retire(self, tid: TransactionID) -> None:
        self._chains.pop(tid, None)
        self._first_lsn.pop(tid, None)

    # -- abort processing ---------------------------------------------------------------

    def _handle_abort(self, message: Message):
        tid: TransactionID = message.body["tid"]
        self._aborted_tids.add(tid)
        lsn = self._chains.get(tid, 0)
        while lsn:
            record = self.wal.record_at(lsn)
            yield from self._instruct_undo(record)
            lsn = record.prev_lsn
        self._append_chained(TransactionStatusRecord(
            tid=tid, status=TxnStatus.ABORTED))
        self._retire(tid)
        respond(message, {"ok": True})

    def _instruct_undo(self, record: LogRecord, zombie: bool = False):
        """Send one undo instruction to the owning server and await its ack.

        ``zombie`` marks a record spooled *after* the abort's undo walk.
        The walk runs newest-to-oldest, so each step restores its own
        record's old value and the object ends at the oldest (committed)
        one; a zombie arrives with the walk already done, so if the walk
        undid this object the committed value it restored wins over the
        record's own old value (which, for a second write cycle, is the
        transaction's first -- aborted -- write).
        """
        restore_value = None
        if isinstance(record, ValueUpdateRecord):
            if record.compensates_lsn:
                return  # a compensation record is never itself undone
            undone = self._undone_values.setdefault(record.tid, {})
            if zombie and record.oid in undone:
                restore_value = undone[record.oid]
            else:
                restore_value = record.old_value
                undone[record.oid] = restore_value
            op, body = "ds.undo_value", {"oid": record.oid,
                                         "value": restore_value}
            server = record.server
        elif isinstance(record, OperationRecord):
            if record.compensates_lsn:
                return  # a compensation record is never itself undone
            op, body = "ds.undo_operation", {
                "operation": record.undo_operation,
                "args": record.undo_args}
            server = record.server
        else:
            return  # status / page-dirty records carry no effects
        attachment = self._servers.get(server)
        if attachment is None:
            return  # pragma: no cover - server withdrew; nothing to undo
        reply_port = Port(self.ctx, node=self.node, name="rm-undo-reply")
        attachment.port.send(Message(op=op, body=body, reply_to=reply_port))
        response = yield reply_port.receive()
        if isinstance(record, ValueUpdateRecord):
            # The undo write bypasses the write-ahead gate, so log the
            # compensation: without it, a checkpoint taken before this
            # abort lets recovery's backward scan stop at the checkpoint
            # bound and resurrect the flushed pre-abort value from disk.
            clr = ValueUpdateRecord(
                tid=record.tid, server=record.server, oid=record.oid,
                old_value=record.new_value, new_value=restore_value,
                compensates_lsn=record.lsn)
            self._append_chained(clr)
            # Pin the page's recovery LSN back to the original update:
            # until the undone page reaches non-volatile storage, log
            # reclamation must keep every record (update, compensation,
            # ABORTED) a post-crash unwind could need.
            if record.oid:
                for page in record.oid.pages():
                    key = (record.oid.segment_id, page)
                    if self._page_rec_lsn.get(key, record.lsn + 1) \
                            > record.lsn:
                        self._page_rec_lsn[key] = record.lsn
        if isinstance(record, OperationRecord):
            # Log the compensation so recovery never undoes this twice.
            clr = OperationRecord(
                tid=record.tid, server=record.server,
                operation=record.undo_operation,
                redo_args=record.undo_args, oids=record.oids,
                compensates_lsn=record.lsn)
            clr_lsn = self._append_chained(clr)
            for oid in record.oids:
                for page in oid.pages():
                    self._page_rec_lsn.setdefault(
                        (oid.segment_id, page), clr_lsn)
        del response

    # -- checkpoints and reclamation -------------------------------------------------------

    def _handle_checkpoint(self, message: Message):
        yield from self.take_checkpoint(
            message.body.get("active_transactions", {}))
        respond(message, {"ok": True})

    def take_checkpoint(self, active_transactions: dict,
                        flush: bool = False):
        """Write and force a checkpoint record (generator).

        With ``flush``, dirty recoverable pages are forced to their
        segments first ("Some systems also force certain pages to
        non-volatile storage", Section 2.1.3) -- this shortens the log
        prefix recovery must read, at the price of the page writes.
        """
        from repro.wal.records import CheckpointRecord

        if flush:
            yield from self.node.vm.flush_all()
        # Intersect with the pages the kernel still holds dirty: the
        # page-written notices travel as messages and may not have been
        # processed yet, and a clean page must not pin the log.
        dirty_now = set(self.node.vm.dirty_pages())
        record = CheckpointRecord(
            dirty_pages={key: lsn for key, lsn in self._page_rec_lsn.items()
                         if key in dirty_now},
            active_transactions={tid: phase for tid, phase
                                 in active_transactions.items()},
            attached_servers={name: att.segment_id
                              for name, att in self._servers.items()})
        self.wal.append(record)
        yield from self.wal.force()
        self.checkpoints_taken += 1
        # Age out abort tombstones: a tid that has already survived one
        # full checkpoint interval can have no zombie record still in
        # flight (a zombie is one operation racing its own abort --
        # bounded by a few message hops), so dropping it here keeps the
        # set from growing without bound over a long run.
        stale = self._aborted_tids_prior & self._aborted_tids
        self._aborted_tids -= stale
        for tid in stale:
            self._undone_values.pop(tid, None)
        self._aborted_tids_prior = set(self._aborted_tids)
        return record

    def truncation_bound(self) -> int:
        """The LSN below which no record can matter for crash recovery.

        When an archive dump exists, records newer than the dump are also
        retained: media recovery rolls the archive forward through them.
        """
        dirty_now = set(self.node.vm.dirty_pages())
        bounds = [self.wal.flushed_lsn + 1]
        bounds.extend(lsn for key, lsn in self._page_rec_lsn.items()
                      if key in dirty_now)
        bounds.extend(self._first_lsn.values())
        if self.media_retention_lsn is not None:
            bounds.append(self.media_retention_lsn)
        return min(bounds)

    def _on_buffer_full(self) -> None:
        self.node.spawn(self._drain_buffer(), name="rm:drain", defused=True)

    def _drain_buffer(self):
        yield from self.wal.force()
        self._maybe_reclaim()

    def _maybe_reclaim(self) -> None:
        if self.wal.store.free_records >= RECLAIM_THRESHOLD_RECORDS:
            return
        if getattr(self, "_reclaiming", False):
            return
        self._reclaiming = True
        self.node.spawn(self._reclaim(), name="rm:reclaim", defused=True)

    def _reclaim(self):
        """Log reclamation (Section 3.2.2): force dirty pages back to their
        segments so their recovery LSNs stop pinning old log, truncate,
        and checkpoint.

        Truncation happens *before* the checkpoint record is appended --
        when reclamation fires the store is nearly full, and the checkpoint
        itself needs room.
        """
        try:
            self.reclamations += 1
            yield from self.node.vm.flush_all()
            self.wal.store.truncate_before(self.truncation_bound())
            yield from self.take_checkpoint({})
            self.wal.store.truncate_before(self.truncation_bound())
        finally:
            self._reclaiming = False

    # -- crash support ------------------------------------------------------------------

    def crash(self) -> None:
        """Volatile state gone; the durable store survives in the caller."""
        self.wal.crash()


def _oids_of(record: LogRecord):
    if isinstance(record, ValueUpdateRecord) and record.oid is not None:
        return [record.oid]
    if isinstance(record, OperationRecord):
        return list(record.oids)
    return []


class RmPagerClient(PagerClient):
    """The kernel's three-message WAL conversation, over real messages."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self.ctx = node.ctx

    def _rm_port(self) -> Port:
        return self.node.service(SERVICE)

    @property
    def _charged(self) -> bool:
        # With the Recovery Manager merged into the kernel, the pager
        # conversation costs nothing (Section 5.3).
        return not self.ctx.merged_architecture

    def first_modified(self, segment_id: str, page: int):
        self._rm_port().send(Message(
            op="rm.first_modified",
            body={"segment_id": segment_id, "page": page}),
            charged=self._charged)
        return
        yield  # pragma: no cover

    def write_permission(self, segment_id: str, page: int, page_lsn: int):
        reply_port = Port(self.ctx, node=self.node, name="pager-reply")
        self._rm_port().send(Message(
            op="rm.write_permission",
            body={"segment_id": segment_id, "page": page,
                  "page_lsn": page_lsn},
            reply_to=reply_port,
            free_reply=not self._charged),
            charged=self._charged)
        response = yield reply_port.receive()
        return response.body["sequence_number"]

    def page_written(self, segment_id: str, page: int):
        self._rm_port().send(Message(
            op="rm.page_written",
            body={"segment_id": segment_id, "page": page}),
            charged=self._charged)
        return
        yield  # pragma: no cover


class RecoveryManagerClient:
    """Message-level stubs for the Transaction Manager and server library."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self.ctx = node.ctx

    def _port(self) -> Port:
        return self.node.service(SERVICE)

    def spool(self, record: LogRecord):
        """Send one recovery record; returns its LSN (generator).

        Charged as a large local message when the record's payload is large
        (old/new page values), per the paper's message classification.
        """
        reply_port = Port(self.ctx, node=self.node, name="spool-reply")
        # Old-value/new-value pairs average ~1100 bytes in the paper's
        # measurements, so spools are always charged as large messages.
        self._port().send(Message(op="rm.spool", body={"record": record},
                                  reply_to=reply_port,
                                  kind=MessageKind.LARGE))
        response = yield reply_port.receive()
        return response.body["lsn"]

    def send_prepare_record(self, tid: TransactionID, server: str,
                            oids: tuple) -> None:
        # In the improved architecture, "one prepare message sent from a
        # data server to the modified kernel performs the function of two
        # messages": the write set piggybacks on the vote, so this separate
        # large message is not charged.
        self._port().send(Message(
            op="rm.prepare_record",
            body={"record": ServerPrepareRecord(tid=tid, server=server,
                                                oids=tuple(oids))},
            kind=MessageKind.LARGE),
            charged=not self.ctx.merged_architecture)

    @property
    def _tm_charged(self) -> bool:
        # Transaction Manager <-> Recovery Manager messages vanish when
        # both are merged into the kernel (Section 5.3).
        return not self.ctx.merged_architecture

    def append_status_via_message(self, node: Node, tid: TransactionID,
                                  status: str, servers: tuple = (),
                                  children: tuple = (),
                                  coordinator: str = "",
                                  force: bool = False,
                                  merged_into: TransactionID | None = None):
        body = {"tid": tid, "status": status, "servers": servers,
                "children": children, "coordinator": coordinator,
                "force": force, "merged_into": merged_into}
        if not force:
            self._port().send(Message(op="rm.append_status", body=body),
                              charged=self._tm_charged)
            return
        reply_port = Port(self.ctx, node=node, name="status-reply")
        self._port().send(Message(op="rm.append_status", body=body,
                                  reply_to=reply_port,
                                  free_reply=not self._tm_charged),
                          charged=self._tm_charged)
        yield reply_port.receive()

    def note_txn_done(self, node: Node, tid: TransactionID) -> None:
        del node
        self._port().send(Message(op="rm.txn_done", body={"tid": tid}),
                          charged=self._tm_charged)

    def merge_chain_via_message(self, node: Node, child: TransactionID,
                                parent: TransactionID):
        reply_port = Port(self.ctx, node=node, name="merge-reply")
        self._port().send(Message(op="rm.merge_chain",
                                  body={"child": child, "parent": parent},
                                  reply_to=reply_port,
                                  free_reply=not self._tm_charged),
                          charged=self._tm_charged)
        yield reply_port.receive()

    def abort_via_message(self, node: Node, tid: TransactionID):
        reply_port = Port(self.ctx, node=node, name="abort-reply")
        self._port().send(Message(op="rm.abort", body={"tid": tid},
                                  reply_to=reply_port,
                                  free_reply=not self._tm_charged),
                          charged=self._tm_charged)
        yield reply_port.receive()

    def attach(self, server: str, segment_id: str, port: Port):
        reply_port = Port(self.ctx, node=self.node, name="attach-reply")
        self._port().send(Message(
            op="rm.attach", body={"server": server, "segment_id": segment_id,
                                  "port": port},
            reply_to=reply_port))
        yield reply_port.receive()

    def checkpoint(self, active_transactions: dict | None = None):
        reply_port = Port(self.ctx, node=self.node, name="ckpt-reply")
        self._port().send(Message(
            op="rm.checkpoint",
            body={"active_transactions": active_transactions or {}},
            reply_to=reply_port))
        yield reply_port.receive()
