"""Self-healing node recovery.

Before this module, a crashed node came back only because some external
driver (the chaos controller, a test) explicitly ran
``TabsNode.restart_generator()`` to rebuild the system processes and drive
:func:`repro.recovery.driver.recover_node`.  The
:class:`RecoverySupervisor` moves that responsibility into the facility
itself: it hooks ``Node.on_restart`` and, the instant the kernel node
powers back up, spawns the full recovery sequence (rebuild the four system
processes, re-create the data servers from their factories, run analysis /
value / operation passes, restore in-doubt transactions, reach a clean
point) as a background process on the engine.

External callers -- the chaos controller's restart action,
``TabsCluster.restart_node`` -- become thin wrappers: they power the node
on and wait for the supervisor's recovery process to finish.  A bare
``node.restart()`` with no driver at all now yields a fully recovered
node, which is what "unattended self-healing" means.

The supervisor is also the facility's *media repairer*: it installs
itself as the virtual-memory layer's ``media_repairer`` hook, so a data
server tripping :class:`~repro.errors.PageCorruption` on a page fault
gets the page repaired in place (archived base + log roll-forward, see
:func:`repro.recovery.driver.repair_page`) and its read retried --
graceful degradation instead of a crashed node.  Repairs of the same
page are deduplicated across concurrent readers, and a page that
single-page repair cannot reconstruct (operation-logged history)
escalates to a controlled crash + self-healing restart, whose recovery
scrub handles it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim import Process, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.facility import TabsNode


class RecoverySupervisor:
    """Drives crash recovery automatically whenever its node restarts."""

    def __init__(self, tabs_node: "TabsNode") -> None:
        self.tabs_node = tabs_node
        self.ctx = tabs_node.ctx
        #: recoveries this supervisor has initiated
        self.self_recoveries = 0
        #: live single-page media repairs completed
        self.page_repairs = 0
        #: repairs that had to escalate to a full node restart
        self.repair_escalations = 0
        #: the in-flight (or most recent) recovery process; it is an Event,
        #: so callers may yield it to await completion and read the
        #: RecoveryReport it returns
        self.recovery_process: Process | None = None
        #: pages with a repair in flight (dedupes concurrent readers)
        self._repairing: set = set()
        #: last outcome per repaired page ("repaired"/"escalate"/...)
        self.repair_outcomes: dict = {}
        tabs_node.node.on_restart.append(self._on_restart)
        self._install_repairer()

    def _install_repairer(self) -> None:
        # The VirtualMemory is rebuilt on every restart; re-point its
        # media_repairer at us each time the node comes up.
        self.tabs_node.node.vm.media_repairer = self.repair_generator

    def _on_restart(self, node) -> None:
        # on_restart callbacks must not raise; Process creation only
        # registers the generator with the engine.
        self.self_recoveries += 1
        self.ctx.meter.bump("self_recoveries")
        self._install_repairer()
        process = Process(self.ctx.engine,
                          self.tabs_node.recovery_generator(),
                          name=f"recovery-supervisor:{node.name}")
        process.defused = True
        self.recovery_process = process

    # -- live media repair -------------------------------------------------------

    def repair_generator(self, segment_id: str, page: int):
        """Repair one corrupt page in place (generator; returns bool).

        Invoked by :meth:`VirtualMemory.ensure_resident` when a page read
        trips :class:`PageCorruption`.  Returns True when the page was
        repaired (the caller retries the read), False when the read must
        fail.  Concurrent readers of the same page wait for the first
        repair instead of duplicating it.
        """
        from repro.recovery.driver import repair_page

        key = (segment_id, page)
        if key in self._repairing:
            # Another coroutine is repairing this page; wait it out.
            while key in self._repairing:
                yield Timeout(self.ctx.engine, 0.1,
                              name=f"media-repair-wait:{segment_id}:{page}")
            return self.repair_outcomes.get(key) == "repaired"
        self._repairing.add(key)
        node = self.tabs_node.node
        span_id = 0
        if self.ctx.tracer is not None:
            span_id = self.ctx.tracer.begin(
                "media.page_repair", node.name, "RECOVERY",
                segment=segment_id, page=page)
        status = "failed"
        try:
            status = yield from repair_page(
                self.tabs_node.rm, self.tabs_node.archive, node.disk,
                segment_id, page)
        finally:
            self._repairing.discard(key)
            self.repair_outcomes[key] = status
            if span_id and self.ctx.tracer is not None:
                self.ctx.tracer.end(span_id, status=status)
        if status == "repaired":
            self.page_repairs += 1
            self.ctx.metrics.counter(node.name, "media.page_repairs").inc()
            return True
        if status == "escalate":
            # Operation-logged history: only full recovery's scrub +
            # three-pass replay can rebuild the page.  Schedule a
            # controlled crash/restart (we may be running *inside* a
            # process this crash would kill) and fail the current read.
            self.repair_escalations += 1
            self.ctx.metrics.counter(node.name,
                                     "media.repair_escalations").inc()
            self.ctx.engine.schedule(0.0, self._escalate)
        else:
            self.ctx.metrics.counter(node.name,
                                     "media.repair_failures").inc()
        return False

    def _escalate(self) -> None:
        if self.tabs_node.node.alive:
            self.tabs_node.crash()
            self.tabs_node.node.restart()
