"""Self-healing node recovery.

Before this module, a crashed node came back only because some external
driver (the chaos controller, a test) explicitly ran
``TabsNode.restart_generator()`` to rebuild the system processes and drive
:func:`repro.recovery.driver.recover_node`.  The
:class:`RecoverySupervisor` moves that responsibility into the facility
itself: it hooks ``Node.on_restart`` and, the instant the kernel node
powers back up, spawns the full recovery sequence (rebuild the four system
processes, re-create the data servers from their factories, run analysis /
value / operation passes, restore in-doubt transactions, reach a clean
point) as a background process on the engine.

External callers -- the chaos controller's restart action,
``TabsCluster.restart_node`` -- become thin wrappers: they power the node
on and wait for the supervisor's recovery process to finish.  A bare
``node.restart()`` with no driver at all now yields a fully recovered
node, which is what "unattended self-healing" means.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.facility import TabsNode


class RecoverySupervisor:
    """Drives crash recovery automatically whenever its node restarts."""

    def __init__(self, tabs_node: "TabsNode") -> None:
        self.tabs_node = tabs_node
        self.ctx = tabs_node.ctx
        #: recoveries this supervisor has initiated
        self.self_recoveries = 0
        #: the in-flight (or most recent) recovery process; it is an Event,
        #: so callers may yield it to await completion and read the
        #: RecoveryReport it returns
        self.recovery_process: Process | None = None
        tabs_node.node.on_restart.append(self._on_restart)

    def _on_restart(self, node) -> None:
        # on_restart callbacks must not raise; Process creation only
        # registers the generator with the engine.
        self.self_recoveries += 1
        self.ctx.meter.bump("self_recoveries")
        process = Process(self.ctx.engine,
                          self.tabs_node.recovery_generator(),
                          name=f"recovery-supervisor:{node.name}")
        process.defused = True
        self.recovery_process = process
