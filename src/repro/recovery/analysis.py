"""Crash-recovery analysis: one forward read of the durable log.

Produces a :class:`RecoveryPlan`: the durable records, the most recent
checkpoint, every transaction's resolved outcome (following subtransaction
merge records), the set of in-doubt (prepared) transactions with their
coordinators, and committed coordinator transactions whose phase two may
not have completed (no end record).

Outcome resolution implements the paper's rule that recovered segments
"reflect only the operations of committed and prepared transactions": a
transaction with no terminal status record and no merge into a surviving
parent was active at the crash and is a *loser*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.txn.ids import TransactionID
from repro.wal.records import (
    CheckpointRecord,
    LogRecord,
    TransactionStatusRecord,
    TxnStatus,
)


class Outcome(enum.Enum):
    COMMITTED = "committed"
    ABORTED = "aborted"
    #: in doubt: redo its effects, re-acquire its locks, and resolve with
    #: the coordinator
    PREPARED = "prepared"
    #: active at the crash: undo its effects
    LOSER = "loser"

    @property
    def winner(self) -> bool:
        """Winners' effects must survive recovery."""
        return self in (Outcome.COMMITTED, Outcome.PREPARED)


@dataclass
class RecoveryPlan:
    records: list[LogRecord] = field(default_factory=list)
    checkpoint: CheckpointRecord | None = None
    #: latest explicit terminal/prepared status per transaction
    statuses: dict[TransactionID, TxnStatus] = field(default_factory=dict)
    #: subtransaction -> parent it merged into
    merges: dict[TransactionID, TransactionID] = field(default_factory=dict)
    #: in-doubt transactions: tid -> the PREPARED status record
    prepared: dict[TransactionID, TransactionStatusRecord] = field(
        default_factory=dict)
    #: committed coordinator transactions lacking an end record
    committed_unacked: dict[TransactionID, TransactionStatusRecord] = field(
        default_factory=dict)
    #: transactions with an ABORTED record (undo may be incomplete)
    aborted: set[TransactionID] = field(default_factory=set)

    def resolve(self, tid: TransactionID) -> Outcome:
        """The recovery outcome for ``tid``, following merges upward."""
        seen: set[TransactionID] = set()
        current = tid
        while True:
            if current in seen:  # pragma: no cover - defensive
                return Outcome.LOSER
            seen.add(current)
            status = self.statuses.get(current)
            if status is TxnStatus.COMMITTED:
                return Outcome.COMMITTED
            if status is TxnStatus.ABORTED:
                return Outcome.ABORTED
            if current in self.merges:
                current = self.merges[current]
                continue
            if status is TxnStatus.PREPARED:
                return Outcome.PREPARED
            return Outcome.LOSER

    def scan_bound(self) -> int:
        """The LSN at which backward scans may stop.

        Records older than the bound are fully reflected in non-volatile
        storage for every object not touched since, so the value-logging
        pass never needs them.  Without a checkpoint the bound is the log's
        beginning.
        """
        if self.checkpoint is None:
            return 0
        bounds = [self.checkpoint.lsn]
        bounds.extend(self.checkpoint.dirty_pages.values())
        # Transactions in flight at checkpoint time may have stolen pages
        # whose uncommitted values reached disk (and left the dirty-page
        # map) before the checkpoint was cut; the backward pass must reach
        # their oldest records to unwind those values if they lose.
        active = set(self.checkpoint.active_transactions)
        for record in self.records:
            if record.lsn >= self.checkpoint.lsn or not active:
                break
            tid = record.tid
            seen: set = set()
            while tid is not None and tid not in seen:
                if tid in active:
                    bounds.append(record.lsn)
                    break
                seen.add(tid)
                tid = self.merges.get(tid)
        return min(bounds)


#: statuses that override an earlier PREPARED
_TERMINAL = (TxnStatus.COMMITTED, TxnStatus.ABORTED)


def analyze(records: list[LogRecord]) -> RecoveryPlan:
    """Build the recovery plan from the durable log (forward order)."""
    plan = RecoveryPlan(records=list(records))
    ended: set[TransactionID] = set()
    for record in records:
        if isinstance(record, CheckpointRecord):
            plan.checkpoint = record
            continue
        if not isinstance(record, TransactionStatusRecord):
            continue
        tid = record.tid
        if record.status is TxnStatus.MERGED:
            plan.merges[tid] = record.merged_into
            plan.statuses.pop(tid, None)  # a merge supersedes PREPARED
            continue
        if record.status in _TERMINAL:
            plan.statuses[tid] = record.status
            plan.prepared.pop(tid, None)
            if record.status is TxnStatus.COMMITTED:
                plan.committed_unacked[tid] = record
            else:
                plan.aborted.add(tid)
                plan.committed_unacked.pop(tid, None)
        elif record.status is TxnStatus.PREPARED:
            if plan.statuses.get(tid) not in _TERMINAL:
                plan.statuses[tid] = TxnStatus.PREPARED
                plan.prepared[tid] = record
        elif record.status is TxnStatus.ENDED:
            ended.add(tid)
    for tid in ended:
        plan.committed_unacked.pop(tid, None)
    # Committed leaf participants (no children) have no phase two to redrive.
    plan.committed_unacked = {
        tid: record for tid, record in plan.committed_unacked.items()
        if record.children}
    return plan
