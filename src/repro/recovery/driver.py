"""Node crash-recovery orchestration.

After a crash, the facility restarts the node's TABS processes, the data
servers re-map their segments and re-attach, and then this driver runs:

1. **Analysis** over the durable log.
2. **Value pass** (backward) restoring value-logged objects.
3. **Operation passes** (redo history, undo losers) for operation-logged
   objects -- both algorithms co-exist over the common log.
4. **In-doubt restoration**: re-acquire write locks for prepared
   transactions, rebuild their undo chains in the Recovery Manager, and
   hand them to the Transaction Manager for coordinator resolution.
   Coordinator-side committed-but-unacknowledged transactions get their
   phase two re-driven.
5. **Clean point**: flush every recovered page, checkpoint, truncate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.recovery.analysis import RecoveryPlan, analyze
from repro.recovery.manager import RecoveryManager
from repro.recovery.operation_recovery import run_operation_passes
from repro.recovery.value_recovery import run_value_pass
from repro.txn.ids import TransactionID
from repro.txn.manager import TransactionManager
from repro.wal.records import (
    OperationRecord,
    ServerPrepareRecord,
    ValueUpdateRecord,
)


@dataclass
class RecoveryReport:
    """What crash recovery did, for logging and tests."""

    values_restored: int = 0
    operations_redone: int = 0
    operations_undone: int = 0
    prepared_restored: list[TransactionID] = field(default_factory=list)
    phase_two_redriven: list[TransactionID] = field(default_factory=list)
    log_records_scanned: int = 0


def _prepared_root(plan: RecoveryPlan, tid: TransactionID):
    """The prepared transaction a record's tid resolves into, or None."""
    current = tid
    seen = set()
    while current is not None and current not in seen:
        seen.add(current)
        if current in plan.prepared:
            return current
        current = plan.merges.get(current)
    return None


def recover_node(rm: RecoveryManager, tm: TransactionManager,
                 server_libraries: dict, media_bound: int | None = None):
    """Run full crash recovery for one node (generator).

    ``server_libraries`` maps server name to its
    :class:`~repro.server.library.DataServerLibrary` (already attached).
    ``media_bound`` (media recovery) forces the value pass to replay from
    the archive position instead of the checkpoint bound.
    Returns a :class:`RecoveryReport`.
    """
    node = rm.node
    ctx = node.ctx
    span_id = 0
    if ctx.tracer is not None:
        span_id = ctx.tracer.begin("recovery.replay", node.name, "RECOVERY",
                                   epoch=node.epoch)
    report = RecoveryReport()
    records = rm.wal.read_forward(rm.wal.store.truncated_before)
    plan = analyze(records)
    report.log_records_scanned = len(records)

    # -- restore object state ------------------------------------------------
    decided = yield from run_value_pass(node.vm, plan,
                                        bound=media_bound)
    report.values_restored = len(decided)
    appliers = {name: library.recovery_applier
                for name, library in server_libraries.items()}
    redone, undone = yield from run_operation_passes(
        node.vm, node.disk, plan, appliers)
    report.operations_redone = redone
    report.operations_undone = undone

    # -- in-doubt transactions -------------------------------------------------
    # Collect each prepared family's write sets (per server) and record
    # chain so locks can be re-acquired and a later abort can still undo.
    write_sets: dict[TransactionID, dict[str, set]] = {}
    chains: dict[TransactionID, list[int]] = {}
    for record in records:
        if isinstance(record, ServerPrepareRecord):
            root = _prepared_root(plan, record.tid)
            if root is not None:
                write_sets.setdefault(root, {}).setdefault(
                    record.server, set()).update(record.oids)
        elif isinstance(record, (ValueUpdateRecord, OperationRecord)):
            root = _prepared_root(plan, record.tid)
            if root is None:
                continue
            oids = ([record.oid] if isinstance(record, ValueUpdateRecord)
                    else list(record.oids))
            write_sets.setdefault(root, {}).setdefault(
                record.server, set()).update(o for o in oids if o)
            chains.setdefault(root, []).append(record.lsn)

    for tid, status_record in plan.prepared.items():
        # Rebuild the Recovery Manager's backward chain (prev_lsn relink).
        lsns = chains.get(tid, [])
        previous = 0
        for lsn in lsns:
            chained = rm.wal.record_at(lsn)
            chained.prev_lsn = previous
            chained.tid = tid  # the family resolves into this root
            previous = lsn
        if previous:
            rm._chains[tid] = previous
            rm._first_lsn[tid] = lsns[0]
        # Re-acquire write locks so the in-doubt data stays restricted
        # (two-phase commit's blocking window).
        server_ports = {}
        for server in status_record.servers:
            library = server_libraries.get(server)
            if library is None:
                continue
            library.relock_prepared(
                tid, tuple(sorted(write_sets.get(tid, {}).get(server, ()))))
            server_ports[server] = library.port
        tm.restore_prepared(tid, status_record.coordinator,
                            status_record.servers, server_ports,
                            children=status_record.children)
        report.prepared_restored.append(tid)

    for tid, status_record in plan.committed_unacked.items():
        tm.restore_committed_unacked(tid, status_record.children)
        report.phase_two_redriven.append(tid)

    # -- clean point --------------------------------------------------------------
    yield from node.vm.flush_all()
    yield from rm.take_checkpoint(tm.active_transactions())
    rm.wal.store.truncate_before(rm.truncation_bound())
    ctx.metrics.counter(node.name, "recovery.replays").inc()
    ctx.metrics.histogram(node.name, "recovery.records_scanned").observe(
        report.log_records_scanned)
    if span_id and ctx.tracer is not None:
        ctx.tracer.end(
            span_id,
            records_scanned=report.log_records_scanned,
            values_restored=report.values_restored,
            operations_redone=report.operations_redone,
            operations_undone=report.operations_undone,
            prepared_restored=len(report.prepared_restored),
            phase_two_redriven=len(report.phase_two_redriven))
    return report
