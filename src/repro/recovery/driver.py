"""Node crash-recovery orchestration.

After a crash, the facility restarts the node's TABS processes, the data
servers re-map their segments and re-attach, and then this driver runs:

0. **Log salvage**: the duplexed log verifies both media copies, repairs
   single-copy damage, and truncates the tail at the first record
   unreadable on both copies (a torn force) -- before any record is
   trusted.  Then a **media scrub** checks every attached page's payload
   checksum and restores corrupt pages from the archive so replay reads
   clean bases.
1. **Analysis** over the durable log.
2. **Value pass** (backward) restoring value-logged objects.
3. **Operation passes** (redo history, undo losers) for operation-logged
   objects -- both algorithms co-exist over the common log.
4. **In-doubt restoration**: re-acquire write locks for prepared
   transactions, rebuild their undo chains in the Recovery Manager, and
   hand them to the Transaction Manager for coordinator resolution.
   Coordinator-side committed-but-unacknowledged transactions get their
   phase two re-driven.
5. **Clean point**: flush every recovered page, checkpoint, truncate.

:func:`repair_page` is the *live* half of media recovery: single-page
repair (archived base image + log roll-forward) for a running node that
trips :class:`~repro.errors.PageCorruption`, driven by the
:class:`~repro.recovery.supervisor.RecoverySupervisor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.recovery.analysis import RecoveryPlan, analyze
from repro.recovery.manager import RecoveryManager
from repro.recovery.operation_recovery import run_operation_passes
from repro.recovery.value_recovery import run_value_pass
from repro.txn.ids import TransactionID
from repro.txn.manager import TransactionManager
from repro.wal.records import (
    OperationRecord,
    ServerPrepareRecord,
    ValueUpdateRecord,
)


@dataclass
class RecoveryReport:
    """What crash recovery did, for logging and tests."""

    values_restored: int = 0
    operations_redone: int = 0
    operations_undone: int = 0
    prepared_restored: list[TransactionID] = field(default_factory=list)
    phase_two_redriven: list[TransactionID] = field(default_factory=list)
    log_records_scanned: int = 0
    #: single-copy log-media failures repaired from the mirror
    log_duplex_repairs: int = 0
    #: durable records dropped by the salvage tail truncation
    log_records_salvaged: int = 0
    #: corrupt data pages restored from the archive by the media scrub
    pages_scrubbed: int = 0


def _prepared_root(plan: RecoveryPlan, tid: TransactionID):
    """The prepared transaction a record's tid resolves into, or None."""
    current = tid
    seen = set()
    while current is not None and current not in seen:
        seen.add(current)
        if current in plan.prepared:
            return current
        current = plan.merges.get(current)
    return None


def scrub_media(node, archive, segment_ids: list[str]) -> list[tuple]:
    """Restore every corrupt page of the named segments from the archive.

    Cost-free, like :meth:`Archive.restore` (the scrub's page reads are
    folded into recovery's replay I/O).  A corrupt page outside archive
    coverage is wiped to an empty base -- exact only when the log still
    reaches back to LSN 1, which the caller's replay bound accounts for.
    Returns the ``(segment_id, page)`` keys scrubbed.
    """
    scrubbed = []
    for segment_id in segment_ids:
        for page in node.disk.corrupt_pages(segment_id):
            if archive is not None and not archive.empty:
                archive.restore_page(node.disk, segment_id, page)
            else:
                node.disk.restore_segment(segment_id, {page: {}}, {page: 0})
            scrubbed.append((segment_id, page))
    return scrubbed


def recover_node(rm: RecoveryManager, tm: TransactionManager,
                 server_libraries: dict, media_bound: int | None = None,
                 archive=None, segment_ids: list[str] | None = None):
    """Run full crash recovery for one node (generator).

    ``server_libraries`` maps server name to its
    :class:`~repro.server.library.DataServerLibrary` (already attached).
    ``media_bound`` (media recovery) forces the value pass to replay from
    the archive position instead of the checkpoint bound.  ``archive`` and
    ``segment_ids`` enable the storage-integrity front end: log salvage
    plus a page-checksum scrub that restores corrupt pages from the
    archive before replay trusts the disk image.
    Returns a :class:`RecoveryReport`.
    """
    node = rm.node
    ctx = node.ctx
    span_id = 0
    if ctx.tracer is not None:
        span_id = ctx.tracer.begin("recovery.replay", node.name, "RECOVERY",
                                   epoch=node.epoch)
    report = RecoveryReport()

    # -- storage integrity: salvage the log, scrub the data pages -------------
    salvage = rm.wal.store.salvage()
    report.log_duplex_repairs = salvage.repairs
    report.log_records_salvaged = salvage.dropped_records
    scrubbed = scrub_media(node, archive, segment_ids or [])
    report.pages_scrubbed = len(scrubbed)
    if scrubbed:
        for _ in scrubbed:
            ctx.metrics.counter(node.name, "disk.corruption_detected").inc()
            ctx.metrics.counter(node.name, "media.page_repairs").inc()
        # The scrubbed bases are archive images (or empty): replay must
        # roll forward over the whole retained log, not just past the
        # archive position -- the dump's flush steals uncommitted dirty
        # pages into the archive, and the undo records of those in-flight
        # transactions sit *below* ``archive_lsn``.  Retention pins every
        # unresolved transaction's first record, so ``truncated_before``
        # always reaches back far enough.
        scrub_bound = rm.wal.store.truncated_before
        media_bound = (scrub_bound if media_bound is None
                       else min(media_bound, scrub_bound))

    records = rm.wal.read_forward(rm.wal.store.truncated_before)
    plan = analyze(records)
    report.log_records_scanned = len(records)

    # -- restore object state ------------------------------------------------
    decided = yield from run_value_pass(node.vm, plan,
                                        bound=media_bound)
    report.values_restored = len(decided)
    appliers = {name: library.recovery_applier
                for name, library in server_libraries.items()}
    redone, undone = yield from run_operation_passes(
        node.vm, node.disk, plan, appliers)
    report.operations_redone = redone
    report.operations_undone = undone

    # -- in-doubt transactions -------------------------------------------------
    # Collect each prepared family's write sets (per server) and record
    # chain so locks can be re-acquired and a later abort can still undo.
    write_sets: dict[TransactionID, dict[str, set]] = {}
    chains: dict[TransactionID, list[int]] = {}
    for record in records:
        if isinstance(record, ServerPrepareRecord):
            root = _prepared_root(plan, record.tid)
            if root is not None:
                write_sets.setdefault(root, {}).setdefault(
                    record.server, set()).update(record.oids)
        elif isinstance(record, (ValueUpdateRecord, OperationRecord)):
            root = _prepared_root(plan, record.tid)
            if root is None:
                continue
            oids = ([record.oid] if isinstance(record, ValueUpdateRecord)
                    else list(record.oids))
            write_sets.setdefault(root, {}).setdefault(
                record.server, set()).update(o for o in oids if o)
            chains.setdefault(root, []).append(record.lsn)

    for tid, status_record in plan.prepared.items():
        # Rebuild the Recovery Manager's backward chain (prev_lsn relink).
        lsns = chains.get(tid, [])
        previous = 0
        for lsn in lsns:
            chained = rm.wal.record_at(lsn)
            chained.prev_lsn = previous
            chained.tid = tid  # the family resolves into this root
            previous = lsn
        if previous:
            rm._chains[tid] = previous
            rm._first_lsn[tid] = lsns[0]
        # Re-acquire write locks so the in-doubt data stays restricted
        # (two-phase commit's blocking window).
        server_ports = {}
        for server in status_record.servers:
            library = server_libraries.get(server)
            if library is None:
                continue
            library.relock_prepared(
                tid, tuple(sorted(write_sets.get(tid, {}).get(server, ()))))
            server_ports[server] = library.port
        tm.restore_prepared(tid, status_record.coordinator,
                            status_record.servers, server_ports,
                            children=status_record.children)
        report.prepared_restored.append(tid)

    for tid, status_record in plan.committed_unacked.items():
        tm.restore_committed_unacked(tid, status_record.children)
        report.phase_two_redriven.append(tid)

    # -- clean point --------------------------------------------------------------
    yield from node.vm.flush_all()
    yield from rm.take_checkpoint(tm.active_transactions())
    rm.wal.store.truncate_before(rm.truncation_bound())
    ctx.metrics.counter(node.name, "recovery.replays").inc()
    ctx.metrics.histogram(node.name, "recovery.records_scanned").observe(
        report.log_records_scanned)
    if span_id and ctx.tracer is not None:
        ctx.tracer.end(
            span_id,
            records_scanned=report.log_records_scanned,
            values_restored=report.values_restored,
            operations_redone=report.operations_redone,
            operations_undone=report.operations_undone,
            prepared_restored=len(report.prepared_restored),
            phase_two_redriven=len(report.phase_two_redriven),
            log_duplex_repairs=report.log_duplex_repairs,
            log_records_salvaged=report.log_records_salvaged,
            pages_scrubbed=report.pages_scrubbed)
    return report


# -- single-page media repair (live) --------------------------------------------


def repair_page(rm: RecoveryManager, archive, disk, segment_id: str,
                page: int):
    """Repair one corrupt page on a *running* node (generator).

    Restores the archived base image and rolls it forward from
    ``archive_lsn`` using the durable log, mirroring the value pass's
    latest-wins semantics page-locally; the repaired image (with a fresh
    checksum) is written back through one charged page write.  Returns:

    - ``"repaired"`` -- the page verifies again;
    - ``"escalate"`` -- an operation-logged record touches the page in the
      roll-forward window; single-page value replay cannot reconstruct it,
      so the caller must fall back to full node recovery (whose scrub +
      three-pass algorithm handles operation logging);
    - ``"unrepairable"`` -- the log no longer reaches back to the base
      image's position (no archive and a truncated log).
    """
    from repro.recovery.analysis import analyze

    store = rm.wal.store
    base_data: dict[int, object] = {}
    base_header = 0
    if archive is not None and not archive.empty and \
            archive.covers(segment_id):
        base_data, base_header = archive.page_image(segment_id, page)
    elif store.truncated_before > 1:
        # No archived base and the log no longer reaches LSN 1: an empty
        # base plus a partial roll-forward would fabricate history.
        return "unrepairable"
    # Roll forward over the whole retained log, not just past the archive
    # position: the archived base may hold uncommitted values stolen by
    # the dump's flush, whose undo records sit below ``archive_lsn``
    # (retention pins every unresolved transaction's first record).
    records = store.read_forward(store.truncated_before)
    plan = analyze(records)

    image = dict(base_data)
    header = base_header
    decided: dict = {}
    # Backward latest-wins over the roll-forward window, page-locally --
    # the same decision procedure as the value pass (committed/prepared
    # redo wins; losers unwind to their oldest old value; compensation
    # records replay and keep unwinding beneath).
    for record in reversed(records):
        if isinstance(record, OperationRecord):
            if any(oid is not None and oid.segment_id == segment_id
                   and page in oid.pages() for oid in record.oids):
                return "escalate"
            continue
        if (not isinstance(record, ValueUpdateRecord)
                or record.oid is None
                or record.oid.segment_id != segment_id
                or page not in record.oid.pages()):
            continue
        oid = record.oid
        header = max(header, record.lsn)
        if decided.get(oid) == "winner":
            continue
        if record.compensates_lsn:
            image[oid.offset] = record.new_value
            decided[oid] = "loser"
            continue
        outcome = plan.resolve(record.tid)
        if outcome.winner:
            image[oid.offset] = record.new_value
            decided[oid] = "winner"
        else:
            image[oid.offset] = record.old_value
            decided[oid] = "loser"
    yield from disk.write_page(segment_id, page, image,
                               sequence_number=header)
    return "repaired"
