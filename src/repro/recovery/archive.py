"""Off-line archive dumps and media recovery.

The paper's storage model (Section 2.1.3): "To reduce the cost of
recovering from disk failures, systems infrequently dump the contents of
non-volatile storage into an off-line archive."  TABS itself skipped this
("we do not consider disk failures in this work") and its Conclusions list
media recovery as needed work; this module supplies it.

An :class:`Archive` holds page images of every attached segment as of the
dump, plus the log position (``archive_lsn``) up to which the dump is
complete.  Media recovery after a disk failure restores the archived
pages, then replays the log *from the archive position* -- not from the
last checkpoint, whose bound assumes the non-volatile image survived.
Log reclamation respects the archive: records newer than ``archive_lsn``
must be retained or the archive could never be rolled forward.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RecoveryError
from repro.kernel.disk import Disk


@dataclass
class Archive:
    """One node's off-line archive (survives both crashes and disk loss)."""

    #: segment -> {page: data}
    pages: dict[str, dict[int, dict]] = field(default_factory=dict)
    #: segment -> {page: sector-header sequence number}
    headers: dict[str, dict[int, int]] = field(default_factory=dict)
    #: log records at or below this LSN are fully reflected in the dump
    archive_lsn: int = 0
    dumps_taken: int = 0

    @property
    def empty(self) -> bool:
        return self.dumps_taken == 0

    def dump(self, disk: Disk, segment_ids: list[str],
             flushed_lsn: int) -> None:
        """Copy the named segments' non-volatile images into the archive.

        Caller must have forced dirty pages to disk first, so the dump at
        ``flushed_lsn`` is transaction-consistent with the log.
        """
        for segment_id in segment_ids:
            self.pages[segment_id] = disk.pages_of_segment(segment_id)
            self.headers[segment_id] = disk.headers_of_segment(segment_id)
        self.archive_lsn = flushed_lsn
        self.dumps_taken += 1

    def restore(self, disk: Disk, segment_ids: list[str]) -> None:
        """Write archived images back onto a (new) disk."""
        if self.empty:
            raise RecoveryError(
                "media recovery impossible: no archive dump was ever taken")
        for segment_id in segment_ids:
            if segment_id not in self.pages:
                raise RecoveryError(
                    f"segment {segment_id!r} is not in the archive")
            disk.restore_segment(segment_id, self.pages[segment_id],
                                 self.headers.get(segment_id, {}))

    # -- single-page media repair -----------------------------------------------

    def covers(self, segment_id: str) -> bool:
        """Is the segment in the archive at all?"""
        return segment_id in self.pages

    def has_page(self, segment_id: str, page: int) -> bool:
        return page in self.pages.get(segment_id, {})

    def page_image(self, segment_id: str,
                   page: int) -> tuple[dict[int, object], int]:
        """One archived page's (data, header) -- the base image that
        single-page repair rolls forward from ``archive_lsn``.

        A page absent from an archived segment was first written *after*
        the dump; its base image is empty and its whole history lies in
        records above ``archive_lsn``, so the empty base is exact.
        """
        data = dict(self.pages.get(segment_id, {}).get(page, {}))
        header = self.headers.get(segment_id, {}).get(page, 0)
        return data, header

    def restore_page(self, disk: Disk, segment_id: str, page: int) -> None:
        """Install one archived page image (cost-free, like
        :meth:`restore`; crash-recovery scrubs use it before replay)."""
        data, header = self.page_image(segment_id, page)
        disk.restore_segment(segment_id, {page: data}, {page: header})
