"""Post-fault audits over the durable logs of a cluster.

The chaos harness (:mod:`repro.chaos`) tortures a cluster with crashes,
partitions, and datagram faults, then asks this module whether the
transaction guarantees survived.  All audits read only *durable* state --
the non-volatile :class:`~repro.wal.store.LogStore` and the disk image --
so they are meaningful even for nodes that crashed moments earlier.

Audits provided:

- :func:`audit_atomicity` -- no transaction may be recorded COMMITTED on
  one node and ABORTED on another (or both on the same node).
- :func:`audit_client_commits` -- every commit reported to an application
  must be backed by a durable COMMITTED record somewhere (no
  committed-then-lost transactions).
- :func:`audit_committed_values` -- after quiescence + recovery, the disk
  image of every value-logged object must equal the value decided by its
  newest winning log record (no committed-then-lost writes).
- :func:`audit_drainage` -- after quiescence, no lock is still held, no
  lock waiter is queued, and no service port holds unprocessed messages.
- :func:`audit_storage_integrity` -- every disk sector passes its payload
  checksum and every log record's duplexed media verifies on both copies
  (injected corruption was detected and repaired, never left latent).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.recovery.analysis import analyze
from repro.txn.ids import TransactionID
from repro.wal.records import (
    LogRecord,
    OperationRecord,
    TransactionStatusRecord,
    TxnStatus,
    ValueUpdateRecord,
)


@dataclass
class AuditViolation:
    """One broken invariant, with enough context to debug it."""

    kind: str
    node: str = ""
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" on {self.node}" if self.node else ""
        return f"[{self.kind}]{where} {self.detail}"


@dataclass
class AuditReport:
    """The combined result of the audits run against one cluster."""

    violations: list[AuditViolation] = field(default_factory=list)
    #: terminal statuses per transaction per node (diagnostic)
    outcomes: dict[TransactionID, dict[str, set[str]]] = field(
        default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def extend(self, violations: list[AuditViolation]) -> None:
        self.violations.extend(violations)


def durable_records(tabs_node) -> list[LogRecord]:
    """The node's surviving log records (crash-safe read)."""
    store = tabs_node.log_store
    return store.read_forward(store.truncated_before)


def terminal_statuses(records: list[LogRecord]) -> dict[TransactionID,
                                                        set[str]]:
    """Every COMMITTED/ABORTED status logged, keyed by exact tid."""
    statuses: dict[TransactionID, set[str]] = {}
    for record in records:
        if not isinstance(record, TransactionStatusRecord):
            continue
        if record.status in (TxnStatus.COMMITTED, TxnStatus.ABORTED):
            statuses.setdefault(record.tid, set()).add(record.status.value)
    return statuses


# -- atomicity across nodes -----------------------------------------------------


def audit_atomicity(cluster, history: dict | None = None) -> AuditReport:
    """No transaction may be COMMITTED at one node and ABORTED at another.

    Statuses are compared per *exact* identifier: a subtransaction that
    aborted while its top-level parent committed is legitimate, but the
    same identifier carrying both outcomes -- anywhere -- means two-phase
    commit broke.

    ``history`` (``{node: {tid: {status}}}``, as accumulated by the chaos
    controller's log observers) extends the scan past log truncation:
    without it, a status record reclaimed by a checkpoint is invisible.
    """
    report = AuditReport()
    for name, tabs_node in cluster.nodes.items():
        for tid, statuses in terminal_statuses(
                durable_records(tabs_node)).items():
            merged = report.outcomes.setdefault(tid, {})
            merged.setdefault(name, set()).update(statuses)
    for name, per_tid in (history or {}).items():
        for tid, statuses in per_tid.items():
            merged = report.outcomes.setdefault(tid, {})
            merged.setdefault(name, set()).update(statuses)
    for tid, per_node in report.outcomes.items():
        seen = set().union(*per_node.values())
        if "committed" in seen and "aborted" in seen:
            where = {node: sorted(statuses)
                     for node, statuses in sorted(per_node.items())}
            report.violations.append(AuditViolation(
                "atomicity", detail=f"{tid} has split outcomes: {where}"))
    return report


def audit_client_commits(cluster,
                         committed_tids: list[TransactionID],
                         history: dict | None = None
                         ) -> list[AuditViolation]:
    """Each commit reported to an application needs a durable record.

    The coordinator forces its COMMITTED record before replying, so a
    client-visible commit that was never durably recorded anywhere is a
    lost transaction.  ``history`` (see :func:`audit_atomicity`) covers
    records a later checkpoint legitimately truncated.
    """
    durable_committed: set[TransactionID] = set()
    for tabs_node in cluster.nodes.values():
        for tid, statuses in terminal_statuses(
                durable_records(tabs_node)).items():
            if "committed" in statuses:
                durable_committed.add(tid.toplevel)
    for per_tid in (history or {}).values():
        for tid, statuses in per_tid.items():
            if "committed" in statuses:
                durable_committed.add(tid.toplevel)
    return [
        AuditViolation("lost-commit",
                       detail=f"{tid} was reported committed to the "
                              "application but no node holds a durable "
                              "COMMITTED record")
        for tid in committed_tids
        if tid.toplevel not in durable_committed]


# -- committed values versus the disk image -------------------------------------


def expected_durable_values(records: list[LogRecord]) -> dict:
    """The value each value-logged object must hold after recovery.

    Mirrors the value pass's backward latest-wins scan: the newest record
    of a *winner* (committed) transaction decides with its redo value; an
    object last touched only by losers/aborters unwinds to the oldest
    loser's undo value.  Objects touched by a still-PREPARED transaction
    or by operation-logged records are skipped -- their durable state is
    not decided by value records alone.
    """
    plan = analyze(records)
    undecided_oids = set()
    expected: dict = {}
    state: dict = {}
    for record in reversed(records):
        if isinstance(record, OperationRecord):
            undecided_oids.update(record.oids)
            continue
        if not isinstance(record, ValueUpdateRecord) or record.oid is None:
            continue
        oid = record.oid
        if state.get(oid) == "winner":
            continue
        if record.compensates_lsn:
            # An abort's compensation restored this value; mirror the
            # value pass: apply it and keep unwinding beneath it.
            expected[oid] = record.new_value
            state[oid] = "loser"
            continue
        outcome = plan.resolve(record.tid)
        if outcome.name == "PREPARED":
            undecided_oids.add(oid)
            state[oid] = "winner"  # stop scanning; value is in doubt
            continue
        if outcome.winner:
            expected[oid] = record.new_value
            state[oid] = "winner"
        else:
            expected[oid] = record.old_value
            state[oid] = "loser"
    for oid in undecided_oids:
        expected.pop(oid, None)
    return expected


def audit_committed_values(tabs_node) -> list[AuditViolation]:
    """Compare the disk image against the log's committed values.

    Only meaningful after quiescence *and* a final recovery pass (crash
    recovery ends by flushing every recovered page), because a healthy
    running node legitimately holds newer state in volatile memory than
    on disk.
    """
    records = durable_records(tabs_node)
    disk = tabs_node.node.disk
    violations = []
    for oid, value in expected_durable_values(records).items():
        page = oid.offset // _page_size()
        durable = disk.peek_page(oid.segment_id, page).get(oid.offset)
        # A None expectation (object never initialised) matches a missing
        # durable cell.
        if durable != value:
            violations.append(AuditViolation(
                "lost-write", node=tabs_node.name,
                detail=f"{oid} holds {durable!r} on disk but the log's "
                       f"newest committed value is {value!r}"))
    return violations


def _page_size() -> int:
    from repro.kernel.disk import PAGE_SIZE
    return PAGE_SIZE


# -- storage integrity ------------------------------------------------------------


def audit_storage_integrity(tabs_node) -> list[AuditViolation]:
    """Every durable byte must verify after repair + quiescence.

    Two sweeps: (1) every disk sector holding data or metadata passes its
    payload checksum -- injected bit rot, torn writes, and lost writes
    were all detected and scrubbed or repaired, none left latent to bite
    a later reader; (2) the duplexed log media verifies on both copies
    for every durable record -- single-copy rot was repaired from the
    mirror, the torn tail was salvaged away.
    """
    violations = []
    disk = tabs_node.node.disk
    for segment_id, page in disk.page_keys():
        if not disk.verify_page(segment_id, page):
            violations.append(AuditViolation(
                "latent-corruption", node=tabs_node.name,
                detail=f"sector {segment_id}:{page} fails its checksum "
                       "after repair and quiescence"))
    if not tabs_node.log_store.media_intact():
        violations.append(AuditViolation(
            "log-media-corruption", node=tabs_node.name,
            detail="a durable log record's media fails verification on "
                   "at least one duplex copy"))
    return violations


# -- drainage --------------------------------------------------------------------


def audit_drainage(cluster) -> list[AuditViolation]:
    """After quiescence no locks, waiters, or queued service messages.

    A held lock after every transaction finished means a release was lost;
    a queued message on a service port means a request loop died with work
    outstanding.
    """
    violations = []
    for name, tabs_node in cluster.nodes.items():
        if not tabs_node.node.alive:
            continue
        for server_name, server in tabs_node.servers.items():
            locks = server.library.locks
            for key, entry in locks._locks.items():
                if entry.holders:
                    violations.append(AuditViolation(
                        "lock-leak", node=name,
                        detail=f"server {server_name!r} still holds "
                               f"{sorted(map(str, entry.holders))} on {key}"))
                if entry.queue:
                    violations.append(AuditViolation(
                        "lock-waiter-leak", node=name,
                        detail=f"server {server_name!r} has "
                               f"{len(entry.queue)} waiters on {key}"))
        for service, port in tabs_node.node.services.items():
            if port.queued:
                violations.append(AuditViolation(
                    "port-backlog", node=name,
                    detail=f"service {service!r} has {port.queued} "
                           "unprocessed messages"))
    return violations
