"""Value-logging crash recovery: the single backward pass.

"Objects are reset to their most recently committed values during a one
pass scan that begins at the last log record written and proceeds
backward" (Section 2.1.3).  The first record seen for each object (i.e.
the newest) decides its recovered value: the redo value for committed and
prepared transactions, the undo value for aborted transactions and losers.
Older records for the same object are skipped -- latest wins.

The scan stops at the plan's bound (derived from the last checkpoint):
anything older is already reflected in non-volatile storage for every
object not touched since.
"""

from __future__ import annotations

from repro.kernel.vm import ObjectID, VirtualMemory
from repro.recovery.analysis import RecoveryPlan
from repro.wal.records import ValueUpdateRecord


def run_value_pass(vm: VirtualMemory, plan: RecoveryPlan,
                   bound: int | None = None):
    """Apply the backward pass into the page cache (generator).

    Returns ``{oid: outcome}`` for every object it restored.  Pages touched
    are left dirty with their ``page_lsn`` set to the deciding record's
    LSN, so the normal write-ahead gate pushes them to disk afterwards.

    ``bound`` overrides the checkpoint-derived scan bound; media recovery
    passes the archive position, since the checkpoint bound assumes a
    surviving non-volatile image.
    """
    if bound is None:
        bound = plan.scan_bound()
    decided: dict[ObjectID, str] = {}
    for record in reversed(plan.records):
        if record.lsn < bound:
            break
        if not isinstance(record, ValueUpdateRecord) or record.oid is None:
            continue
        state = decided.get(record.oid)
        if state == "winner":
            continue
        if record.compensates_lsn:
            # An abort's compensation: replay the restored value and keep
            # scanning, so older losers of other transactions still
            # unwind beneath it.
            yield from vm.write_object(record.oid, record.new_value)
            decided[record.oid] = "loser"
            vm.set_page_lsn(record.oid, record.lsn)
            continue
        outcome = plan.resolve(record.tid)
        if outcome.winner:
            # The newest winner value is final -- whether it is the newest
            # record overall, or an older committed record we reached while
            # unwinding a loser that overwrote it.
            yield from vm.write_object(record.oid, record.new_value)
            decided[record.oid] = "winner"
        else:
            # A loser that wrote the object several times must be unwound
            # all the way to its *oldest* old value: keep applying the old
            # value of each successively older loser record.
            yield from vm.write_object(record.oid, record.old_value)
            decided[record.oid] = "loser"
        vm.set_page_lsn(record.oid, record.lsn)
    return decided
