"""Recovery management.

The Recovery Manager coordinates all access to the common log
(Section 3.2.2): it spools records on behalf of data servers, the
Transaction Manager, and the kernel; it gates page write-backs behind the
write-ahead-log invariant; it drives abort processing by following a
transaction's backward chain; it takes checkpoints and reclaims log space;
and after a crash it scans the log and restores recoverable segments so
that they "reflect only the operations of committed and prepared
transactions".

Both of the paper's recovery algorithms are implemented and co-exist over
one common log: value logging (single backward pass,
:mod:`repro.recovery.value_recovery`) and operation logging (three passes,
:mod:`repro.recovery.operation_recovery`).
"""

from repro.recovery.manager import (
    RecoveryManager,
    RecoveryManagerClient,
    RmPagerClient,
)
from repro.recovery.supervisor import RecoverySupervisor

__all__ = ["RecoveryManager", "RecoveryManagerClient", "RmPagerClient",
           "RecoverySupervisor"]
