"""Operation-logging crash recovery: analysis, redo-history, undo-losers.

The operation-based algorithm "is more complex, and it requires three
passes over the log during crash recovery, instead of the single pass
needed for the value-based algorithm" (Section 2.1.3).  The three passes:

1. **Analysis** (shared with value recovery, :mod:`repro.recovery.analysis`):
   a forward read establishing transaction outcomes and the checkpoint.
2. **Redo history** (forward): every logged operation whose effects did not
   reach non-volatile storage is re-invoked, regardless of its
   transaction's outcome.  The decision uses the sequence number the
   kernel atomically stamps into each sector header when it writes a page
   (Section 3.2.1): the operation is replayed iff any covered page's
   sequence number is older than the record's LSN.
3. **Undo losers** (backward): operations of aborted and crash-active
   transactions are inverted via their logged undo operations, skipping
   records already compensated during pre-crash abort processing.

Redo and undo run through handlers the data server registers for recovery
("This procedure ... calls the server library's undo/redo code",
Section 3.1.1); handlers apply their effects directly, without locking or
logging.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import RecoveryError
from repro.kernel.disk import Disk
from repro.kernel.vm import VirtualMemory
from repro.recovery.analysis import Outcome, RecoveryPlan
from repro.wal.records import OperationRecord

#: A recovery handler: (operation name, args) -> generator applying the
#: operation against the page cache.
RecoveryApplier = Callable[[str, tuple], Iterator]


def run_operation_passes(vm: VirtualMemory, disk: Disk, plan: RecoveryPlan,
                         appliers: dict[str, RecoveryApplier]):
    """Run redo-history then undo-losers (generator).

    ``appliers`` maps server names to their recovery-apply callables.
    Returns ``(redone, undone)`` counts.
    """
    # Lazily-loaded view of each page's on-disk sequence number, advanced
    # in memory as records are replayed.
    page_seq: dict[tuple[str, int], int] = {}

    def seq_of(segment_id: str, page: int) -> int:
        key = (segment_id, page)
        if key not in page_seq:
            page_seq[key] = disk.read_sequence_number(segment_id, page)
        return page_seq[key]

    def advance(record: OperationRecord) -> None:
        for oid in record.oids:
            for page in oid.pages():
                key = (oid.segment_id, page)
                page_seq[key] = max(page_seq.get(key, 0), record.lsn)
                vm.set_page_lsn(oid, record.lsn)

    def applier_for(record: OperationRecord) -> RecoveryApplier:
        try:
            return appliers[record.server]
        except KeyError:
            raise RecoveryError(
                f"no recovery applier registered for server "
                f"{record.server!r} (operation record at lsn "
                f"{record.lsn})") from None

    # -- pass 2: redo history -------------------------------------------------
    redone = 0
    for record in plan.records:
        if not isinstance(record, OperationRecord):
            continue
        needs_redo = any(seq_of(oid.segment_id, page) < record.lsn
                         for oid in record.oids for page in oid.pages())
        if needs_redo:
            yield from applier_for(record)(record.operation,
                                           record.redo_args)
            redone += 1
        advance(record)

    # -- pass 3: undo losers ----------------------------------------------------
    compensated = {record.compensates_lsn for record in plan.records
                   if isinstance(record, OperationRecord)
                   and record.compensates_lsn}
    undone = 0
    for record in reversed(plan.records):
        if not isinstance(record, OperationRecord):
            continue
        if record.compensates_lsn or record.lsn in compensated:
            continue
        outcome = plan.resolve(record.tid)
        if outcome not in (Outcome.LOSER, Outcome.ABORTED):
            continue
        yield from applier_for(record)(record.undo_operation,
                                       record.undo_args)
        advance_lsn = record.lsn  # undo re-dirties the pages
        for oid in record.oids:
            vm.set_page_lsn(oid, advance_lsn)
        undone += 1
    return redone, undone
