"""The predicted-latency model and the paper's published numbers.

"The pre-commit latency of a transaction that is due to the execution of
primitive operations is a sum of the primitive operation times weighted by
the numbers of primitive operations performed" (Section 5.1); commit adds
the longest path through the commit protocol (Table 5-3).

This module carries the paper's published counts and times as data, so the
benchmark harness can print *paper versus reproduction* side by side.
Cells that are ambiguous in the scanned source (column drift in the
multi-node write rows of Tables 5-2/5-3) are marked ``None`` and flagged
in EXPERIMENTS.md rather than guessed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.costs import CostProfile, Primitive
from repro.perf.benchmarks import BenchmarkResult

P = Primitive


def predicted_time(counts: dict[Primitive, float],
                   profile: CostProfile) -> float:
    """Σ count(p) × time(p): the System Time Predicted by Primitives."""
    return sum(count * profile.time_of(primitive)
               for primitive, count in counts.items())


def predicted_time_of_result(result: BenchmarkResult,
                             profile: CostProfile) -> float:
    """Predicted time from a benchmark's *measured* primitive counts."""
    combined: dict[Primitive, float] = dict(result.precommit_counts)
    for primitive, count in result.commit_counts.items():
        combined[primitive] = combined.get(primitive, 0.0) + count
    return predicted_time(combined, profile)


# ---------------------------------------------------------------------------
# Paper data: Table 5-2 (pre-commit primitive counts)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PaperPrecommitRow:
    ds_calls: float = 0
    remote_ds_calls: float = 0
    small: float = 0
    large: float = 0
    sequential_reads: float | None = 0
    random_page_io: float | None = 0


PAPER_TABLE_5_2: dict[str, PaperPrecommitRow] = {
    "r1": PaperPrecommitRow(ds_calls=1, small=4),
    "r5": PaperPrecommitRow(ds_calls=5, small=4),
    "r1_seq": PaperPrecommitRow(ds_calls=1, small=4, sequential_reads=1),
    "r1_rand": PaperPrecommitRow(ds_calls=1, small=4, random_page_io=0.86),
    "w1": PaperPrecommitRow(ds_calls=1, small=6, large=1),
    "w5": PaperPrecommitRow(ds_calls=5, small=14, large=5),
    # Paging-write and multi-node paging cells suffer column drift in the
    # scan; page-I/O entries marked None are reproduced by measurement only.
    "w1_seq": PaperPrecommitRow(ds_calls=1, small=10, large=1,
                                sequential_reads=1, random_page_io=None),
    "r1r1": PaperPrecommitRow(ds_calls=1, remote_ds_calls=1, small=8),
    "r1r5": PaperPrecommitRow(ds_calls=1, remote_ds_calls=5, small=8),
    "r1r1_seq": PaperPrecommitRow(ds_calls=1, remote_ds_calls=1, small=8,
                                  sequential_reads=None),
    "w1w1": PaperPrecommitRow(ds_calls=1, remote_ds_calls=1, small=12,
                              large=2),
    "w1w1_seq": PaperPrecommitRow(ds_calls=1, remote_ds_calls=1, small=20,
                                  large=2, sequential_reads=None,
                                  random_page_io=None),
    "r1r1r1": PaperPrecommitRow(ds_calls=1, remote_ds_calls=2, small=11,
                                large=1),
    "w1w1w1": PaperPrecommitRow(ds_calls=1, remote_ds_calls=2, small=17,
                                large=3),
}


# ---------------------------------------------------------------------------
# Paper data: Table 5-3 (commit primitive counts on the longest path)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PaperCommitRow:
    datagrams: float = 0
    small: float = 0
    large: float | None = 0
    pointer: float | None = 0
    stable_writes: float = 0


PAPER_TABLE_5_3: dict[str, PaperCommitRow] = {
    "1_node_read": PaperCommitRow(small=5),
    "1_node_write": PaperCommitRow(small=8, large=1, stable_writes=1),
    "2_node_read": PaperCommitRow(datagrams=2, small=11, pointer=1),
    # The 2/3-node write rows are partially illegible in the source scan;
    # the small/datagram/stable cells below are the best consistent reading
    # and the large/pointer cells are left unknown.
    "2_node_write": PaperCommitRow(datagrams=4, small=17, large=None,
                                   pointer=None, stable_writes=1),
    "3_node_read": PaperCommitRow(datagrams=2.5, small=11, pointer=1),
    "3_node_write": PaperCommitRow(datagrams=5, small=17, large=None,
                                   pointer=None, stable_writes=1),
}

#: which commit-protocol row each benchmark uses
COMMIT_PROTOCOL_OF: dict[str, str] = {
    "r1": "1_node_read", "r5": "1_node_read", "r1_seq": "1_node_read",
    "r1_rand": "1_node_read",
    "w1": "1_node_write", "w5": "1_node_write", "w1_seq": "1_node_write",
    "r1r1": "2_node_read", "r1r5": "2_node_read", "r1r1_seq": "2_node_read",
    "w1w1": "2_node_write", "w1w1_seq": "2_node_write",
    "r1r1r1": "3_node_read", "w1w1w1": "3_node_write",
}


# ---------------------------------------------------------------------------
# Paper data: Table 5-4 (benchmark times, milliseconds)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PaperBenchmarkTimes:
    predicted: float
    tabs_process: float
    elapsed: float
    improved_architecture: float
    new_primitive_times: float


PAPER_TABLE_5_4: dict[str, PaperBenchmarkTimes] = {
    "r1": PaperBenchmarkTimes(53, 41, 110, 107, 67),
    "r5": PaperBenchmarkTimes(157, 41, 217, 213, 80),
    "r1_seq": PaperBenchmarkTimes(71, 41, 126, 123, 75),
    "r1_rand": PaperBenchmarkTimes(81, 41, 140, 137, 98),
    "w1": PaperBenchmarkTimes(156, 83, 247, 228, 136),
    "w5": PaperBenchmarkTimes(302, 119, 467, 424, 225),
    "w1_seq": PaperBenchmarkTimes(232, 104, 371, 345, 249),
    "r1r1": PaperBenchmarkTimes(306, 223, 469, 459, 228),
    "r1r5": PaperBenchmarkTimes(662, 368, 829, 819, 268),
    "r1r1_seq": PaperBenchmarkTimes(341, 226, 514, 504, 257),
    "w1w1": PaperBenchmarkTimes(697, 407, 989, 775, 442),
    "w1w1_seq": PaperBenchmarkTimes(864, 441, 1125, 873, 539),
    "r1r1r1": PaperBenchmarkTimes(416, 381, 621, 611, 282),
    "w1w1w1": PaperBenchmarkTimes(831, 670, 1200, 968, 534),
}


def paper_predicted_time(key: str, profile: CostProfile) -> float | None:
    """Predicted time from the *paper's* published counts (where legible)."""
    pre = PAPER_TABLE_5_2.get(key)
    commit = PAPER_TABLE_5_3.get(COMMIT_PROTOCOL_OF.get(key, ""))
    if pre is None or commit is None:
        return None
    cells = [
        (pre.ds_calls, P.DATA_SERVER_CALL),
        (pre.remote_ds_calls, P.INTER_NODE_DATA_SERVER_CALL),
        (pre.small + commit.small, P.SMALL_MESSAGE),
        (pre.large, P.LARGE_MESSAGE),
        (pre.sequential_reads, P.SEQUENTIAL_READ),
        (pre.random_page_io, P.RANDOM_PAGED_IO),
        (commit.datagrams, P.DATAGRAM),
        (commit.large, P.LARGE_MESSAGE),
        (commit.pointer, P.POINTER_MESSAGE),
        (commit.stable_writes, P.STABLE_STORAGE_WRITE),
    ]
    if any(count is None for count, _ in cells):
        return None
    return sum(count * profile.time_of(primitive)
               for count, primitive in cells)
