"""Throughput measurement -- the Section 7 future-work methodology.

The paper's microscopic analysis predicts *latency* under no load and
explicitly defers throughput ("we would like to develop a performance
methodology for measuring and predicting throughput").  This module adds
the measuring half: N concurrent applications run update transactions
against one node for a fixed window of simulated time, and the harness
reports committed transactions per second.

Two workload shapes expose the first-order effect:

- **disjoint**: every application writes its own cell.  Nothing conflicts;
  throughput scales with concurrency (the simulation does not model CPU
  contention between processes, so this is the lock-limited ideal).
- **shared**: every application writes the same cell.  Two-phase locking
  serializes the writers; added concurrency buys nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cluster import TabsCluster
from repro.core.config import TabsConfig
from repro.servers.int_array import IntegerArrayServer
from repro.sim import Timeout


@dataclass
class ThroughputResult:
    concurrency: int
    workload: str
    duration_ms: float
    committed: int
    aborted: int

    @property
    def commits_per_second(self) -> float:
        return self.committed / (self.duration_ms / 1000.0)


def run_throughput(concurrency: int, workload: str = "disjoint",
                   duration_ms: float = 60_000.0,
                   config: TabsConfig | None = None) -> ThroughputResult:
    """Measure committed transactions/second at a given concurrency."""
    if workload not in ("disjoint", "shared"):
        raise ValueError(f"unknown workload {workload!r}")
    cluster = TabsCluster(config or TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("array"))
    cluster.start()

    committed = [0]
    aborted = [0]
    deadline = cluster.engine.now + duration_ms

    def worker(index: int):
        app = cluster.application("n1")
        ref = yield from app.lookup_one("array")
        cell = 1 if workload == "shared" else index + 1
        iteration = 0
        while cluster.engine.now < deadline:
            iteration += 1
            tid = yield from app.begin_transaction()
            try:
                yield from app.call(ref, "set_cell",
                                    {"cell": cell, "value": iteration},
                                    tid)
            except Exception:
                yield from app.abort_transaction(tid)
                aborted[0] += 1
                continue
            ok = yield from app.end_transaction(tid)
            if ok and cluster.engine.now <= deadline:
                committed[0] += 1
            elif not ok:
                aborted[0] += 1

    workers = [cluster.spawn_on("n1", worker(index), name=f"app{index}")
               for index in range(concurrency)]

    def sentinel():
        # Keeps time advancing even if every worker blocks on a lock.
        yield Timeout(cluster.engine, duration_ms)

    cluster.spawn_on("n1", sentinel(), name="sentinel")
    for process in workers:
        cluster.engine.run_until(process)
    return ThroughputResult(concurrency=concurrency, workload=workload,
                            duration_ms=duration_ms,
                            committed=committed[0], aborted=aborted[0])


def throughput_sweep(concurrencies: list[int], workload: str,
                     duration_ms: float = 60_000.0) -> list[ThroughputResult]:
    return [run_throughput(concurrency, workload, duration_ms)
            for concurrency in concurrencies]
