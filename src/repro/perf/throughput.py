"""Throughput measurement -- the Section 7 future-work methodology.

The paper's microscopic analysis predicts *latency* under no load and
explicitly defers throughput ("we would like to develop a performance
methodology for measuring and predicting throughput").  This module adds
the measuring half: N concurrent applications run update transactions
against one node for a fixed window of simulated time, and the harness
reports committed transactions per second and physical log forces per
commit.

Two workload shapes expose the first-order locking effect:

- **disjoint**: every application writes its own cell.  Nothing conflicts;
  throughput scales with concurrency until the log device saturates.
- **shared**: every application writes the same cell.  Two-phase locking
  serializes the writers; added concurrency buys nothing.

:func:`compare_pipelines` runs the same multi-client workload under the
``paper`` commit pipeline (one log force per commit record) and the
``grouped`` pipeline (group commit + coalesced 2PC datagrams), both over
a *serial* log device -- one force in flight at a time, which is what a
real log disk does.  Under that device model the paper pipeline saturates
at 1000/79 ms ≈ 12.7 commits/second however many clients run, while group
commit amortizes one force over every commit in the window: committed
transactions per second keep scaling and forces-per-commit drop below 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.cluster import TabsCluster
from repro.core.config import CommitConfig, TabsConfig
from repro.servers.int_array import IntegerArrayServer
from repro.sim import Timeout


@dataclass
class ThroughputResult:
    concurrency: int
    workload: str
    duration_ms: float
    committed: int
    aborted: int
    #: physical log forces performed during the window
    forces: int = 0
    #: which commit pipeline produced this result
    pipeline: str = "paper"

    @property
    def commits_per_second(self) -> float:
        return self.committed / (self.duration_ms / 1000.0)

    @property
    def forces_per_commit(self) -> float:
        return self.forces / self.committed if self.committed else 0.0


def run_throughput(concurrency: int, workload: str = "disjoint",
                   duration_ms: float = 60_000.0,
                   config: TabsConfig | None = None,
                   commit: CommitConfig | None = None,
                   instrument: Callable[[TabsCluster], None] | None = None,
                   ) -> ThroughputResult:
    """Measure committed transactions/second at a given concurrency.

    ``commit`` overrides the commit-pipeline configuration of ``config``
    (or of a default config) -- the sweep harnesses use it to hold every
    other knob fixed while swapping pipelines.  ``instrument`` (if given)
    receives the started cluster before the workers spawn, mirroring
    ``run_benchmark`` -- the observability harnesses use it to enable
    tracing or profiling.
    """
    if workload not in ("disjoint", "shared"):
        raise ValueError(f"unknown workload {workload!r}")
    base = config or TabsConfig()
    if commit is not None:
        base = base.with_(commit=commit)
    cluster = TabsCluster(base)
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("array"))
    cluster.start()
    if instrument is not None:
        instrument(cluster)
    forces_before = cluster.nodes["n1"].rm.wal.forces

    committed = [0]
    aborted = [0]
    deadline = cluster.engine.now + duration_ms

    def worker(index: int):
        app = cluster.application("n1")
        ref = yield from app.lookup_one("array")
        cell = 1 if workload == "shared" else index + 1
        iteration = 0
        while cluster.engine.now < deadline:
            iteration += 1
            tid = yield from app.begin_transaction()
            try:
                yield from app.call(ref, "set_cell",
                                    {"cell": cell, "value": iteration},
                                    tid)
            except Exception:
                yield from app.abort_transaction(tid)
                aborted[0] += 1
                continue
            ok = yield from app.end_transaction(tid)
            if ok and cluster.engine.now <= deadline:
                committed[0] += 1
            elif not ok:
                aborted[0] += 1

    workers = [cluster.spawn_on("n1", worker(index), name=f"app{index}")
               for index in range(concurrency)]

    def sentinel():
        # Keeps time advancing even if every worker blocks on a lock.
        yield Timeout(cluster.engine, duration_ms)

    cluster.spawn_on("n1", sentinel(), name="sentinel")
    for process in workers:
        cluster.engine.run_until(process)
    forces = cluster.nodes["n1"].rm.wal.forces - forces_before
    return ThroughputResult(concurrency=concurrency, workload=workload,
                            duration_ms=duration_ms,
                            committed=committed[0], aborted=aborted[0],
                            forces=forces,
                            pipeline=base.commit.pipeline)


def throughput_sweep(concurrencies: list[int], workload: str,
                     duration_ms: float = 60_000.0,
                     workers: int = 1) -> list[ThroughputResult]:
    """One result per concurrency, fanned over ``workers`` processes.

    Delegates to :mod:`repro.perf.runner`; results come back in
    concurrency order whatever the worker count.
    """
    from repro.perf.runner import run_cells, throughput_sweep_cells

    return run_cells(throughput_sweep_cells(concurrencies, workload,
                                            duration_ms),
                     workers=workers)


#: the two pipeline configurations compared by :func:`compare_pipelines`;
#: both run over a serial log device so only the pipeline differs
PIPELINE_CONFIGS: dict[str, CommitConfig] = {
    "paper": CommitConfig(serial_log_device=True),
    "grouped": CommitConfig.grouped(),
}


def compare_pipelines(concurrencies: list[int],
                      workload: str = "disjoint",
                      duration_ms: float = 30_000.0,
                      workers: int = 1,
                      ) -> dict[str, list[ThroughputResult]]:
    """The group-commit study: both pipelines, same serial log device.

    Both pipelines' cells go into one flat fan-out (a single pool ride),
    then are split back per pipeline -- the result is identical to the
    sequential nested loops for any ``workers``.
    """
    from repro.perf.runner import run_cells, throughput_sweep_cells

    names = list(PIPELINE_CONFIGS)
    cells = [cell for name in names
             for cell in throughput_sweep_cells(
                 concurrencies, workload, duration_ms,
                 commit=PIPELINE_CONFIGS[name])]
    results = run_cells(cells, workers=workers)
    step = len(concurrencies)
    return {name: results[i * step:(i + 1) * step]
            for i, name in enumerate(names)}
