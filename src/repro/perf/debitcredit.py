"""DebitCredit throughput: TPS, abort rate, and latency distribution.

The Section 7 methodology of :mod:`repro.perf.throughput` applied to the
banking workload of :mod:`repro.workloads.debitcredit`: N closed-loop
clients -- each homed on a branch, round-robin -- run DebitCredit
transactions for a window of simulated time, and the harness reports
committed transactions per second, the abort rate, physical log forces
per commit, and a log-bucket latency histogram of the full
begin-to-commit path.

Where the throughput module's ``disjoint``/``shared`` cells isolate the
locking effect synthetically, DebitCredit is the *composed* case: every
local transaction serializes on its branch's hot balance row for the
branch-update-plus-commit window, ``1 - locality`` of the traffic spans
two nodes (real 2PC), and every transaction appends history.  Commit
latency is therefore the throughput ceiling -- the hot row admits one
committer at a time per branch -- which is exactly what the ``grouped``
commit pipeline attacks by amortizing log forces across the prepare and
commit records queued inside one force window.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.core.cluster import TabsCluster
from repro.core.config import CommitConfig, TabsConfig, WorkloadConfig
from repro.obs.metrics import Histogram
from repro.perf.throughput import PIPELINE_CONFIGS
from repro.sim import Timeout
from repro.workloads.debitcredit import debitcredit_txn, draw_spec


@dataclass
class DebitCreditResult:
    clients: int
    duration_ms: float
    committed: int
    aborted: int
    #: committed transactions that spanned two nodes (remote account)
    remote_committed: int = 0
    #: physical log forces across every node during the window
    forces: int = 0
    pipeline: str = "paper"
    #: begin-to-commit latency of committed transactions (simulated ms)
    latency: Histogram = field(default_factory=Histogram)

    @property
    def tps(self) -> float:
        return self.committed / (self.duration_ms / 1000.0)

    @property
    def abort_rate(self) -> float:
        attempts = self.committed + self.aborted
        return self.aborted / attempts if attempts else 0.0

    @property
    def forces_per_commit(self) -> float:
        return self.forces / self.committed if self.committed else 0.0

    def latency_summary(self) -> dict:
        return self.latency.snapshot()


def run_debitcredit(clients: int, duration_ms: float = 30_000.0,
                    config: TabsConfig | None = None,
                    commit: CommitConfig | None = None,
                    workload: WorkloadConfig | None = None,
                    instrument: Callable[[TabsCluster], None] | None = None,
                    ) -> DebitCreditResult:
    """Measure DebitCredit TPS at a given closed-loop client count.

    ``commit`` and ``workload`` override those blocks of ``config`` (or
    of a default config), so sweeps can hold everything else fixed.  The
    run is a pure function of the configuration: every client draws its
    transaction stream from its own seeded RNG.  ``instrument`` (if
    given) receives the built cluster before the clients spawn,
    mirroring ``run_benchmark``.
    """
    base = config or TabsConfig()
    if commit is not None:
        base = base.with_(commit=commit)
    if workload is not None:
        base = base.with_(workload=workload)
    cluster = TabsCluster(base)
    topology = cluster.build_workload()
    if instrument is not None:
        instrument(cluster)
    schema = base.workload
    forces_before = sum(node.rm.wal.forces
                       for node in cluster.nodes.values())

    committed = [0]
    aborted = [0]
    remote_committed = [0]
    latency = Histogram()
    deadline = cluster.engine.now + duration_ms

    def worker(index: int):
        home = topology.client_home(index)
        node_name = topology.node_name(home)
        rng = random.Random((base.seed * 1_000_003) ^ (index * 7919))
        app = cluster.application(node_name)
        while cluster.engine.now < deadline:
            spec = draw_spec(rng, schema, home)
            started = cluster.engine.now
            tid = yield from app.begin_transaction()
            try:
                yield from debitcredit_txn(app, topology, spec, tid)
            except Exception:
                yield from app.abort_transaction(tid)
                aborted[0] += 1
                continue
            ok = yield from app.end_transaction(tid)
            if ok and cluster.engine.now <= deadline:
                committed[0] += 1
                if spec.remote:
                    remote_committed[0] += 1
                elapsed = cluster.engine.now - started
                latency.observe(elapsed)
                cluster.ctx.metrics.histogram(
                    node_name, "debitcredit.txn_ms").observe(elapsed)
            elif not ok:
                aborted[0] += 1

    workers = [cluster.spawn_on(
                   topology.node_name(topology.client_home(index)),
                   worker(index), name=f"client{index}")
               for index in range(clients)]

    def sentinel():
        # Keeps time advancing even if every client blocks on a lock.
        yield Timeout(cluster.engine, duration_ms)

    cluster.spawn_on(topology.node_name(0), sentinel(), name="sentinel")
    for process in workers:
        cluster.engine.run_until(process)
    forces = sum(node.rm.wal.forces
                 for node in cluster.nodes.values()) - forces_before
    return DebitCreditResult(clients=clients, duration_ms=duration_ms,
                             committed=committed[0], aborted=aborted[0],
                             remote_committed=remote_committed[0],
                             forces=forces, pipeline=base.commit.pipeline,
                             latency=latency)


def debitcredit_sweep(client_counts: list[int],
                      duration_ms: float = 30_000.0,
                      config: TabsConfig | None = None,
                      workers: int = 1) -> list[DebitCreditResult]:
    """One result per client count, fanned over ``workers`` processes.

    Delegates to :mod:`repro.perf.runner`; results come back in client-
    count order whatever the worker count.
    """
    from repro.perf.runner import debitcredit_sweep_cells, run_cells

    return run_cells(debitcredit_sweep_cells(client_counts, duration_ms,
                                             config=config),
                     workers=workers)


def compare_debitcredit_pipelines(client_counts: list[int],
                                  duration_ms: float = 15_000.0,
                                  workload: WorkloadConfig | None = None,
                                  workers: int = 1,
                                  ) -> dict[str, list[DebitCreditResult]]:
    """The hot-row study: both commit pipelines, same serial log device.

    Reuses :data:`~repro.perf.throughput.PIPELINE_CONFIGS` so the
    DebitCredit comparison and the synthetic one measure the exact same
    two pipeline configurations.  Both pipelines' cells ride one flat
    fan-out across ``workers`` processes; the per-pipeline split is
    recovered from cell order, so the dict is identical for any count.
    """
    from repro.perf.runner import debitcredit_sweep_cells, run_cells

    names = list(PIPELINE_CONFIGS)
    cells = [cell for name in names
             for cell in debitcredit_sweep_cells(
                 client_counts, duration_ms,
                 commit=PIPELINE_CONFIGS[name], workload=workload)]
    results = run_cells(cells, workers=workers)
    step = len(client_counts)
    return {name: results[i * step:(i + 1) * step]
            for i, name in enumerate(names)}
