"""The fourteen benchmark transactions of Section 5.

Benchmarks exercise four dimensions of system behaviour: read-only versus
update; no paging, sequential paging, or random paging; single versus
multiple operations; and one, two, or three nodes.  Each is "as simple as
possible consistent with forming a basis for estimating the performance of
other transactions".

The runner executes a benchmark transaction repeatedly under no load on a
freshly built cluster, discards the warm-up transient, and reports average
elapsed time, per-phase primitive counts, and TABS system-process CPU time
-- the same quantities Tables 5-2, 5-3, and 5-4 tabulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.cluster import TabsCluster
from repro.core.config import TabsConfig
from repro.kernel.costs import Phase, Primitive
from repro.kernel.disk import PAGE_SIZE
from repro.servers.int_array import WORD_SIZE, IntegerArrayServer

CELLS_PER_PAGE = PAGE_SIZE // WORD_SIZE

#: Size of the paging benchmark's array: "This array is 5000 pages, which
#: is more than three times the available physical memory".
PAGED_ARRAY_PAGES = 5000

#: Effective page-buffer size during the paging benchmarks.  A Perq with
#: TABS running leaves well under a third of the 5000-page array resident;
#: 700 frames reproduces the paper's measured 0.86 page I/Os per
#: random-read transaction (1 - 700/5000 = 0.86).
BENCH_VM_CAPACITY_PAGES = 700


@dataclass(frozen=True)
class OpSpec:
    """One data-server operation inside a benchmark transaction."""

    node_index: int  # 0 = the application's own node
    kind: str        # "read" | "write"
    paging: str      # "none" | "sequential" | "random"


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of Tables 5-2 / 5-4."""

    key: str
    title: str
    operations: tuple[OpSpec, ...]

    @property
    def node_count(self) -> int:
        return max(op.node_index for op in self.operations) + 1

    @property
    def is_update(self) -> bool:
        return any(op.kind == "write" for op in self.operations)


def _ops(count: int, node: int, kind: str, paging: str = "none"):
    return tuple(OpSpec(node, kind, paging) for _ in range(count))


BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec("r1", "1 Local Read, No Paging", _ops(1, 0, "read")),
    BenchmarkSpec("r5", "5 Local Read, No Paging", _ops(5, 0, "read")),
    BenchmarkSpec("r1_seq", "1 Local Read, Seq. Paging",
                  _ops(1, 0, "read", "sequential")),
    BenchmarkSpec("r1_rand", "1 Local Read, Random Paging",
                  _ops(1, 0, "read", "random")),
    BenchmarkSpec("w1", "1 Local Write, No Paging", _ops(1, 0, "write")),
    BenchmarkSpec("w5", "5 Local Write, No Paging", _ops(5, 0, "write")),
    BenchmarkSpec("w1_seq", "1 Local Write, Seq. Paging",
                  _ops(1, 0, "write", "sequential")),
    BenchmarkSpec("r1r1", "1 Lcl Rd, 1 Rem Rd, No Paging",
                  _ops(1, 0, "read") + _ops(1, 1, "read")),
    BenchmarkSpec("r1r5", "1 Lcl Rd, 5 Rem Rd, No Paging",
                  _ops(1, 0, "read") + _ops(5, 1, "read")),
    BenchmarkSpec("r1r1_seq", "1 Lcl Rd, 1 Rem Rd, Seq. Paging",
                  _ops(1, 0, "read", "sequential")
                  + _ops(1, 1, "read", "sequential")),
    BenchmarkSpec("w1w1", "1 Lcl Wr, 1 Rem Wr, No Paging",
                  _ops(1, 0, "write") + _ops(1, 1, "write")),
    BenchmarkSpec("w1w1_seq", "1 Lcl Wr, 1 Rem Wr, Seq. Paging",
                  _ops(1, 0, "write", "sequential")
                  + _ops(1, 1, "write", "sequential")),
    BenchmarkSpec("r1r1r1", "1 Lcl Rd, 1 Rem Rd, 1 Rem Rd, NP",
                  _ops(1, 0, "read") + _ops(1, 1, "read")
                  + _ops(1, 2, "read")),
    BenchmarkSpec("w1w1w1", "1 Lcl Wr, 1 Rem Wr, 1 Rem Wr, NP",
                  _ops(1, 0, "write") + _ops(1, 1, "write")
                  + _ops(1, 2, "write")),
)

BENCHMARKS_BY_KEY = {spec.key: spec for spec in BENCHMARKS}


@dataclass
class BenchmarkResult:
    """Per-transaction averages over the measured iterations."""

    spec: BenchmarkSpec
    config: TabsConfig
    iterations: int
    elapsed_ms: float
    #: primitive counts per phase, averaged per transaction
    precommit_counts: dict[Primitive, float] = field(default_factory=dict)
    commit_counts: dict[Primitive, float] = field(default_factory=dict)
    #: CPU ms per transaction for the TABS system processes (TM/RM/CM)
    tabs_process_ms: float = 0.0
    #: primitive time per transaction (the predicted-by-primitives sum)
    primitive_time_ms: float = 0.0

    def count(self, primitive: Primitive) -> float:
        return (self.precommit_counts.get(primitive, 0.0)
                + self.commit_counts.get(primitive, 0.0))


class _Paginator:
    """Chooses the cell each operation touches, per the paging mode."""

    def __init__(self, ctx_random) -> None:
        self.random = ctx_random
        # Start past the prefilled frames so sequential access faults from
        # the first measured transaction (steady state).
        self._sequential_page = BENCH_VM_CAPACITY_PAGES

    def cell_for(self, op: OpSpec, iteration: int) -> int:
        if op.paging == "none":
            return 1
        if op.paging == "sequential":
            self._sequential_page = (self._sequential_page + 1) % \
                PAGED_ARRAY_PAGES
            return self._sequential_page * CELLS_PER_PAGE + 1
        page = self.random.randrange(PAGED_ARRAY_PAGES)
        return page * CELLS_PER_PAGE + 1


def build_benchmark_cluster(spec: BenchmarkSpec,
                            config: TabsConfig) -> TabsCluster:
    """A cluster with one array server per participating node."""
    cluster = TabsCluster(config.with_(
        vm_capacity_pages=min(config.vm_capacity_pages,
                              BENCH_VM_CAPACITY_PAGES)))
    for index in range(spec.node_count):
        name = f"node{index}"
        cluster.add_node(name)
        cluster.add_server(name, IntegerArrayServer.factory(f"array{index}"))
    cluster.start()
    return cluster


def _prefill_page_cache(cluster: TabsCluster, spec: BenchmarkSpec) -> None:
    """Fill each paging node's buffer so measurement starts in steady state.

    Read benchmarks prefill with clean pages (evictions are free); write
    benchmarks prefill with dirty ones, so every measured eviction pays the
    write-back conversation a long-running system would pay.
    """
    nodes_paging = {op.node_index for op in spec.operations
                    if op.paging != "none"}
    dirty = spec.is_update
    for index in nodes_paging:
        node = cluster.node(f"node{index}").node
        segment_id = f"node{index}:array{index}"

        def prefill(node=node, segment_id=segment_id):
            for page in range(node.vm.capacity_pages):
                if dirty:
                    from repro.kernel.vm import ObjectID
                    yield from node.vm.write_object(
                        ObjectID(segment_id, page * PAGE_SIZE, WORD_SIZE),
                        0)
                else:
                    yield from node.vm.ensure_resident(segment_id, page)

        cluster.run_on(f"node{index}", prefill())


def run_benchmark(spec: BenchmarkSpec, config: TabsConfig | None = None,
                  iterations: int = 20,
                  warmup: int = 2,
                  instrument: Callable[[TabsCluster], None] | None = None,
                  ) -> BenchmarkResult:
    """Execute one benchmark and average the measured iterations.

    ``instrument``, when given, is called with the freshly built cluster
    before any transaction runs -- the hook the trace CLI and tests use to
    call :meth:`~repro.core.cluster.TabsCluster.enable_tracing` (or attach
    any other passive observer) without rebuilding the runner.
    """
    config = config or TabsConfig()
    cluster = build_benchmark_cluster(spec, config)
    if instrument is not None:
        instrument(cluster)
    _prefill_page_cache(cluster, spec)
    app = cluster.application("node0", measured=True)
    paginators = [_Paginator(cluster.ctx.random)
                  for _ in range(len(spec.operations))]

    # Resolve references once, in the background phase, as a real
    # application would (name dissemination is not part of the benchmark).
    refs = {}
    for op in spec.operations:
        if op.node_index not in refs:
            refs[op.node_index] = cluster.run_on(
                "node0", app.lookup_one(f"array{op.node_index}"))

    def one_transaction(iteration: int):
        tid = yield from app.begin_transaction()
        for op_index, op in enumerate(spec.operations):
            cell = paginators[op_index].cell_for(op, iteration)
            operation = "get_cell" if op.kind == "read" else "set_cell"
            body = {"cell": cell}
            if op.kind == "write":
                body["value"] = iteration + 1
            yield from app.call(refs[op.node_index], operation, body, tid)
        committed = yield from app.end_transaction(tid)
        assert committed, f"benchmark transaction aborted ({spec.key})"

    for iteration in range(warmup):
        cluster.run_on("node0", one_transaction(iteration))
    cluster.settle()

    meter = cluster.meter
    meter.reset()
    started = cluster.engine.now
    for iteration in range(iterations):
        cluster.run_on("node0", one_transaction(warmup + iteration))
    elapsed = (cluster.engine.now - started) / iterations
    cluster.settle()  # drain trailing asynchronous work before reading CPU

    def per_txn(counts: dict) -> dict:
        return {prim: count / iterations for prim, count in counts.items()}

    return BenchmarkResult(
        spec=spec, config=config, iterations=iterations,
        elapsed_ms=elapsed,
        precommit_counts=per_txn(meter.phase_counts(Phase.PRE_COMMIT)),
        commit_counts=per_txn(meter.phase_counts(Phase.COMMIT)),
        tabs_process_ms=meter.total_cpu(("TM", "RM", "CM")) / iterations,
        primitive_time_ms=(
            meter.primitive_time.get(Phase.PRE_COMMIT, 0.0)
            + meter.primitive_time.get(Phase.COMMIT, 0.0)) / iterations,
    )
