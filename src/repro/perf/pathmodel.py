"""Analytic longest-path commit counts (the paper's Table 5-3 method).

Table 5-3 counts primitives on "the longest estimated execution path"
through the commit protocol: work on parallel branches to different child
nodes overlaps, so only one branch's primitives appear, and the second
prepare datagram contributes only its sender-side half (the famous
"2.5 datagrams" of the 3-node read).

This module applies the same estimation to *our* protocol, so the
reproduction's Table 5-3 can be compared with the paper's like for like
(the measured counts in ``repro.perf.benchmarks`` are totals).

Our commit flows, from the implementation (small messages numbered):

1-node read-only   end-req, prepare, vote, txn-done, reply            (5)
1-node write       end-req, prepare, vote, force-req, forced, commit,
                   commit-ack, reply (+1 large prepare-record,
                   +1 stable write)                                    (8)

For multi-node transactions the local branch overlaps the remote one and
the remote branch dominates; the path runs coordinator -> child -> back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.costs import CostProfile, Primitive

P = Primitive


@dataclass(frozen=True)
class PathCounts:
    """Primitive executions on the longest commit path."""

    datagrams: float = 0.0
    small: float = 0.0
    large: float = 0.0
    pointer: float = 0.0
    stable_writes: float = 0.0

    def as_dict(self) -> dict[Primitive, float]:
        return {P.DATAGRAM: self.datagrams, P.SMALL_MESSAGE: self.small,
                P.LARGE_MESSAGE: self.large, P.POINTER_MESSAGE: self.pointer,
                P.STABLE_STORAGE_WRITE: self.stable_writes}

    def time(self, profile: CostProfile) -> float:
        return sum(count * profile.time_of(primitive)
                   for primitive, count in self.as_dict().items())


def commit_path(nodes: int, update: bool) -> PathCounts:
    """Longest-path counts for our commit protocol.

    ``nodes`` counts participating nodes; ``update`` selects the write
    protocol.  Parallel-branch accounting: each *additional* child beyond
    the first adds half a datagram per phase-one/phase-two send (the
    sender-side serialization), exactly the paper's approximation -- the
    paper stops at three nodes; the formula extends its arithmetic to
    wider fan-outs for the scaling study.
    """
    if nodes < 1:
        raise ValueError("need at least one node")
    children = nodes - 1
    extra_sends = max(0, children - 1)  # overlapped sends: half each

    if nodes == 1 and not update:
        return PathCounts(small=5)
    if nodes == 1 and update:
        return PathCounts(small=8, large=1, stable_writes=1)

    if not update:
        # end-req, spanning-req (+ptr reply), send-dg-req, [prepare dg],
        # CM->TM at child, prepare to server, vote, send-vote-req,
        # [vote dg], CM->TM at coordinator, txn-done, reply.
        return PathCounts(
            datagrams=2 + 0.5 * extra_sends,
            small=12,
            pointer=1)

    # Update: the remote branch carries phase one (prepare dg, child
    # prepares: server prepare/large record/vote, child forces PREPARED,
    # vote dg), then the coordinator forces COMMITTED, then phase two
    # (commit dg, child commits: force COMMITTED, server commit/ack,
    # ack dg).
    return PathCounts(
        datagrams=4 + 2 * 0.5 * extra_sends,
        small=(
            1 +   # end-req
            1 +   # spanning request (its reply is the pointer message)
            1 +   # send-prepare request to the CM
            1 +   # child CM -> child TM
            2 +   # child: prepare to server, vote back
            2 +   # child: force PREPARED (request + done)
            1 +   # child: send-vote request
            1 +   # coordinator CM -> TM (vote)
            2 +   # coordinator: force COMMITTED (request + done)
            1 +   # send-commit request
            1 +   # child CM -> TM (commit)
            2 +   # child: force COMMITTED (request + done)
            2 +   # child: commit to server, ack back
            1 +   # child: send-ack request
            1 +   # coordinator CM -> TM (ack)
            1 +   # txn-done note
            1),   # reply to the application
        large=1,          # the child's prepare record
        pointer=1,
        stable_writes=3)  # child PREPARED, coordinator + child COMMITTED


#: the protocol rows of Table 5-3, in the paper's order
TABLE_5_3_PATHS: dict[str, PathCounts] = {
    "1_node_read": commit_path(1, update=False),
    "1_node_write": commit_path(1, update=True),
    "2_node_read": commit_path(2, update=False),
    "2_node_write": commit_path(2, update=True),
    "3_node_read": commit_path(3, update=False),
    "3_node_write": commit_path(3, update=True),
}
