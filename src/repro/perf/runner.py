"""A QUANTAS-style parallel experiment runner.

Performance studies and chaos soaks are embarrassingly parallel: every
``(configuration, seed)`` cell is an independent, deterministic simulation.
This module fans a list of :class:`Cell` specifications across worker
processes (the shape QUANTAS uses for its consensus-algorithm sweeps) and
aggregates the results in **cell order**, so the output is byte-identical
no matter how many workers ran or in what order they finished:

- every cell is a pure function of its spec -- the worker builds the
  cluster, runs it, and returns a picklable result;
- results travel back tagged with their cell index
  (``imap_unordered`` is free to deliver them in completion order);
- the aggregator slots them by index, so ``workers=1`` and ``workers=N``
  produce the same list.

``workers=1`` bypasses multiprocessing entirely and runs the cells
inline; it is the reference execution the determinism suite compares the
parallel paths against.  Worker processes are started with the ``fork``
method when the platform offers it (cheap, inherits the imported tree)
and fall back to ``spawn`` elsewhere -- cells and their parameters must
therefore be module-level and picklable.

The high-level sweeps (:func:`throughput_sweep_cells`,
:func:`debitcredit_sweep_cells`, :func:`chaos_soak_cells`) mirror the
sequential sweeps in :mod:`repro.perf.throughput`,
:mod:`repro.perf.debitcredit`, and the chaos soak suite; the ``sweep``
CLI subcommand (``python -m repro sweep``) drives them.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import TabsError


@dataclass(frozen=True)
class Cell:
    """One experiment: an independent ``(kind, params, seed)`` simulation.

    ``params`` is a tuple of ``(name, value)`` pairs (not a dict) so cells
    are hashable and their pickled form is canonical.
    """

    kind: str
    params: tuple = ()
    seed: int = 0

    def param_dict(self) -> dict:
        return dict(self.params)

    @classmethod
    def of(cls, kind: str, seed: int = 0, **params) -> "Cell":
        """Build a cell from keyword parameters (sorted for canonical form)."""
        return cls(kind=kind,
                   params=tuple(sorted(params.items())), seed=seed)


# -- cell kinds -------------------------------------------------------------------
#
# Each kind maps to a module-level function (picklable under spawn) taking
# (params: dict, seed: int) and returning a picklable result.  Imports are
# local so that importing the runner does not drag the whole perf stack
# into processes that never run a cell.


def _cell_throughput(params: dict, seed: int):
    from repro.core.config import TabsConfig
    from repro.perf.throughput import run_throughput

    return run_throughput(params["concurrency"],
                          workload=params.get("workload", "disjoint"),
                          duration_ms=params.get("duration_ms", 60_000.0),
                          config=TabsConfig(seed=seed),
                          commit=params.get("commit"))


def _cell_debitcredit(params: dict, seed: int):
    from repro.core.config import TabsConfig
    from repro.perf.debitcredit import run_debitcredit

    config = params.get("config")
    if config is None:
        config = TabsConfig(seed=seed)
    return run_debitcredit(params["clients"],
                           duration_ms=params.get("duration_ms", 30_000.0),
                           config=config,
                           commit=params.get("commit"),
                           workload=params.get("workload"))


def _cell_chaos_soak(params: dict, seed: int) -> dict:
    """One chaos soak: random fault plan, seeded traffic, full audit.

    Returns a summary dict (the live cluster is not picklable): the
    deterministic fields a soak fleet aggregates over.
    """
    from repro.chaos import ChaosController, ChaosWorkload, random_plan
    from repro.chaos.workload import build_cluster

    node_count = params.get("node_count", 3)
    nodes = [f"n{i}" for i in range(node_count)]
    plan = random_plan(seed=seed, nodes=nodes,
                       duration_ms=params.get("plan_ms", 8_000.0),
                       episodes=params.get("episodes", 5))
    cluster = build_cluster(node_count, seed=seed)
    controller = ChaosController(cluster, plan, seed=seed)
    workload = ChaosWorkload(cluster, controller, seed=seed)
    workload.setup()
    controller.install()
    workload.schedule_traffic(transfers=params.get("transfers", 24))
    workload.run(params.get("run_ms", 10_000.0))
    quiet = workload.finale()
    report = workload.check_invariants(quiet=quiet)
    return {
        "seed": seed,
        "quiet": quiet,
        "ok": report.ok,
        "violations": sorted(str(v) for v in report.violations),
        "trace_events": len(controller.trace),
        "events_executed": cluster.engine.events_executed,
    }


CELL_KINDS: dict[str, Callable[[dict, int], object]] = {
    "throughput": _cell_throughput,
    "debitcredit": _cell_debitcredit,
    "chaos_soak": _cell_chaos_soak,
}


def run_cell(cell: Cell):
    """Run one cell in this process and return its result."""
    try:
        runner = CELL_KINDS[cell.kind]
    except KeyError:
        raise TabsError(f"unknown cell kind {cell.kind!r}; known: "
                        f"{sorted(CELL_KINDS)}") from None
    return runner(cell.param_dict(), cell.seed)


def _run_indexed(indexed: tuple) -> tuple:
    """Worker entry point: ``(index, cell) -> (index, result)``.

    The index tag is what makes the fan-out order-independent: workers
    may finish in any order, the aggregation slots results by index.
    """
    index, cell = indexed
    return index, run_cell(cell)


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context("spawn")


def run_cells(cells: list[Cell], workers: int = 1) -> list:
    """Run every cell; returns results in **cell order** regardless of
    ``workers``.

    ``workers=1`` runs inline (the reference execution); ``workers>1``
    fans the cells across a process pool.  Oversubscribing (more workers
    than cells, or than cores) is allowed and changes nothing but wall
    time.
    """
    if workers < 1:
        raise TabsError(f"workers must be >= 1, got {workers}")
    cells = list(cells)
    if workers == 1 or len(cells) <= 1:
        return [run_cell(cell) for cell in cells]
    results: list = [None] * len(cells)
    ctx = _pool_context()
    with ctx.Pool(processes=min(workers, len(cells))) as pool:
        for index, result in pool.imap_unordered(
                _run_indexed, enumerate(cells), chunksize=1):
            results[index] = result
    return results


# -- sweep builders ---------------------------------------------------------------


def throughput_sweep_cells(concurrencies: list[int],
                           workload: str = "disjoint",
                           duration_ms: float = 60_000.0,
                           seed: int = 1985,
                           commit=None) -> list[Cell]:
    extra = {"commit": commit} if commit is not None else {}
    return [Cell.of("throughput", seed=seed, concurrency=concurrency,
                    workload=workload, duration_ms=duration_ms, **extra)
            for concurrency in concurrencies]


def debitcredit_sweep_cells(client_counts: list[int],
                            duration_ms: float = 30_000.0,
                            seed: int = 1985,
                            commit=None, workload=None,
                            config=None) -> list[Cell]:
    extra = {}
    if commit is not None:
        extra["commit"] = commit
    if workload is not None:
        extra["workload"] = workload
    if config is not None:
        extra["config"] = config
    return [Cell.of("debitcredit", seed=seed, clients=clients,
                    duration_ms=duration_ms, **extra)
            for clients in client_counts]


def chaos_soak_cells(seeds: list[int], node_count: int = 3,
                     transfers: int = 24, episodes: int = 5,
                     plan_ms: float = 8_000.0,
                     run_ms: float = 10_000.0) -> list[Cell]:
    return [Cell.of("chaos_soak", seed=seed, node_count=node_count,
                    transfers=transfers, episodes=episodes,
                    plan_ms=plan_ms, run_ms=run_ms)
            for seed in seeds]


# -- JSON-able aggregation --------------------------------------------------------


def result_row(cell: Cell, result) -> dict:
    """One cell's result as a deterministic, JSON-able row."""
    row = {"kind": cell.kind, "seed": cell.seed}
    for name, value in cell.params:
        # Config-object parameters (CommitConfig / WorkloadConfig) are
        # summarized by repr so the row stays JSON-able.
        row[name] = (value if isinstance(value, (int, float, str, bool))
                     or value is None else repr(value))
    if isinstance(result, dict):
        row.update(result)
        return row
    # perf result dataclasses (ThroughputResult / DebitCreditResult)
    for name in ("concurrency", "clients", "workload", "committed",
                 "aborted", "remote_committed", "forces", "pipeline"):
        value = getattr(result, name, None)
        if value is not None:
            row[name] = value
    if getattr(result, "duration_ms", None):
        row["tps"] = round(
            result.committed / (result.duration_ms / 1000.0), 3)
    return row


def sweep_payload(cells: list[Cell], results: list,
                  workers: int) -> dict:
    """The ``sweep`` subcommand's JSON document.

    Deterministic in the cells alone: ``workers`` is recorded for
    provenance but every other byte is independent of it.
    """
    return {
        "cells": len(cells),
        "workers": workers,
        "rows": [result_row(cell, result)
                 for cell, result in zip(cells, results)],
    }
