"""Table 5-4's four columns: measured, predicted, and two projections.

- **System Time Predicted by Primitives**: the analytic sum over the
  benchmark's primitive counts.
- **Measured Elapsed Time**: the simulated no-load latency under the
  measured-1985 profile with the four TABS processes separate.
- **Improved TABS Architecture**: Recovery and Transaction Managers merged
  into the kernel; intra-kernel messages free, prepare piggybacking, and
  distributed phase two overlapped with succeeding transactions.
- **New Primitive Times**: the improved architecture running on Table 5-5's
  achievable primitive times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TabsConfig
from repro.perf.benchmarks import (
    BENCHMARKS,
    BenchmarkResult,
    BenchmarkSpec,
    run_benchmark,
)
from repro.perf.model import predicted_time_of_result


@dataclass
class Table54Row:
    spec: BenchmarkSpec
    predicted_ms: float
    tabs_process_ms: float
    elapsed_ms: float
    improved_ms: float
    new_primitives_ms: float
    measured: BenchmarkResult


def run_table_5_4_row(spec: BenchmarkSpec,
                      iterations: int = 20) -> Table54Row:
    """All four columns for one benchmark."""
    measured = run_benchmark(spec, TabsConfig.measured(),
                             iterations=iterations)
    improved = run_benchmark(spec, TabsConfig.improved_architecture(),
                             iterations=iterations)
    new_primitives = run_benchmark(spec, TabsConfig.new_primitives(),
                                   iterations=iterations)
    return Table54Row(
        spec=spec,
        predicted_ms=predicted_time_of_result(measured,
                                              measured.config.profile),
        tabs_process_ms=measured.tabs_process_ms,
        elapsed_ms=measured.elapsed_ms,
        improved_ms=improved.elapsed_ms,
        new_primitives_ms=new_primitives.elapsed_ms,
        measured=measured,
    )


def run_table_5_4(keys: list[str] | None = None,
                  iterations: int = 20) -> list[Table54Row]:
    """Regenerate Table 5-4 (all benchmarks, or a named subset)."""
    specs = BENCHMARKS if keys is None else [
        spec for spec in BENCHMARKS if spec.key in keys]
    return [run_table_5_4_row(spec, iterations=iterations)
            for spec in specs]
