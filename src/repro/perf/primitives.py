"""Micro-measurement of the primitive operations (Table 5-1).

"The costs of the primitives were estimated by repeatedly calling the
appropriate Accent and TABS functions."  This module does the same against
the simulated substrate: each measurement exercises the real code path (a
null RPC for the Data Server Call, an actual log force for the Stable
Storage Write, ...) and reports the observed per-operation latency.  The
result should equal the configured cost profile -- measuring it end to end
verifies that no path charges a primitive twice or not at all.
"""

from __future__ import annotations

from repro.core.cluster import TabsCluster
from repro.core.config import TabsConfig
from repro.kernel.costs import Primitive
from repro.kernel.messages import Message, MessageKind
from repro.servers.base import BaseDataServer
from repro.txn.ids import TransactionID
from repro.wal.log import WriteAheadLog
from repro.wal.records import ValueUpdateRecord


class _NullServer(BaseDataServer):
    """A data server whose one operation does nothing (null RPC target)."""

    TYPE_NAME = "null"
    SEGMENT_PAGES = 4

    def op_null(self, body: dict, tid: TransactionID):
        return {}
        yield  # pragma: no cover


def _measure_message(cluster: TabsCluster, kind: MessageKind,
                     repetitions: int) -> float:
    node = cluster.node("m0").node
    port = node.create_port("bench")
    started = cluster.engine.now
    for _ in range(repetitions):
        port.send(Message(op="ping", kind=kind))
        cluster.engine.run_until(port.receive())
    return (cluster.engine.now - started) / repetitions


def _measure_null_call(cluster: TabsCluster, target: str,
                       repetitions: int) -> float:
    app = cluster.application("m0")
    ref = cluster.run_on("m0", app.lookup_one(target))

    def one():
        yield from app.call(ref, "null", {}, None)

    cluster.run_on("m0", one())  # warm the session
    started = cluster.engine.now
    for _ in range(repetitions):
        cluster.run_on("m0", one())
    return (cluster.engine.now - started) / repetitions


def _measure_datagram(cluster: TabsCluster, repetitions: int) -> float:
    """Send-to-delivery time of one datagram between Communication
    Managers (the Transaction Manager request hop is subtracted)."""
    node_a = cluster.node("m0").node
    node_b = cluster.node("m1").node
    sink = node_b.create_port("dg-sink")
    node_b.services["bench_sink"] = sink
    cm_port = node_a.service("communication_manager")
    small = cluster.ctx.profile.time_of(Primitive.SMALL_MESSAGE)
    cpu = cluster.ctx.cpu_costs.cm_datagram
    started = cluster.engine.now
    for _ in range(repetitions):
        cm_port.send(Message(op="cm.send_datagram", body={
            "target": "m1",
            "payload": Message(op="ping", body={"service": "bench_sink"})}))
        cluster.engine.run_until(sink.receive())
    per_op = (cluster.engine.now - started) / repetitions
    # Remove the request hop into the CM, its CPU, and the local delivery
    # hop at the receiver: what remains is the wire datagram itself.
    return per_op - 2 * small - 2 * cpu


def _measure_paged_io(cluster: TabsCluster, sequential: bool,
                      repetitions: int) -> float:
    node = cluster.node("m0").node
    if sequential:
        # Warm read to put the arm at page 0; the measured reads then form
        # an unbroken sequential run.
        cluster.run_on("m0", node.disk.read_page("bench-segment", 0))
    started = cluster.engine.now

    def reads():
        for index in range(repetitions):
            page = index + 1 if sequential else (index * 37 + 5) % 3000
            yield from node.disk.read_page("bench-segment", page)

    cluster.run_on("m0", reads())
    return (cluster.engine.now - started) / repetitions


def _measure_stable_write(cluster: TabsCluster, repetitions: int) -> float:
    wal = WriteAheadLog(cluster.ctx)
    started = cluster.engine.now

    def force_each():
        for value in range(repetitions):
            wal.append(ValueUpdateRecord(old_value=value,
                                         new_value=value + 1))
            yield from wal.force()

    cluster.run_on("m0", force_each())
    return (cluster.engine.now - started) / repetitions


def measure_primitives(config: TabsConfig | None = None,
                       repetitions: int = 20) -> dict[Primitive, float]:
    """Measure all nine primitives end to end on a two-node cluster."""
    config = config or TabsConfig()
    cluster = TabsCluster(config)
    for name in ("m0", "m1"):
        cluster.add_node(name)
    cluster.add_server("m0", _NullServer.factory("null-local"))
    cluster.add_server("m1", _NullServer.factory("null-remote"))
    cluster.start()

    results = {
        Primitive.DATA_SERVER_CALL:
            _measure_null_call(cluster, "null-local", repetitions),
        Primitive.INTER_NODE_DATA_SERVER_CALL:
            _measure_null_call(cluster, "null-remote", repetitions),
        Primitive.DATAGRAM: _measure_datagram(cluster, repetitions),
        Primitive.SMALL_MESSAGE:
            _measure_message(cluster, MessageKind.SMALL, repetitions),
        Primitive.LARGE_MESSAGE:
            _measure_message(cluster, MessageKind.LARGE, repetitions),
        Primitive.POINTER_MESSAGE:
            _measure_message(cluster, MessageKind.POINTER, repetitions),
        Primitive.RANDOM_PAGED_IO:
            _measure_paged_io(cluster, sequential=False,
                              repetitions=repetitions),
        Primitive.SEQUENTIAL_READ:
            _measure_paged_io(cluster, sequential=True,
                              repetitions=repetitions),
        Primitive.STABLE_STORAGE_WRITE:
            _measure_stable_write(cluster, repetitions),
    }
    return results
