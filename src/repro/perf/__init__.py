"""The Section 5 performance-evaluation methodology.

"A Microscopic Approach to Transaction System Performance Evaluation":
each benchmark is substantially made up of the repetitious execution of a
collection of primitive operations; latency under no load is the sum of
primitive times weighted by their counts, plus TABS system-process CPU
time.  This package regenerates all five tables:

- :mod:`repro.perf.primitives` -- Table 5-1 (and 5-5) primitive times, by
  micro-measuring the substrate,
- :mod:`repro.perf.benchmarks` -- the fourteen benchmark transactions of
  Tables 5-2/5-4 and the no-load runner,
- :mod:`repro.perf.model` -- predicted latency from primitive counts,
  with the paper's published counts carried alongside for comparison,
- :mod:`repro.perf.projections` -- the Improved-Architecture and
  New-Primitive-Times projections of Table 5-4,
- :mod:`repro.perf.report` -- text tables for the benchmark harness,
- :mod:`repro.perf.runner` -- the parallel ``(config, seed)`` experiment
  runner behind the sweeps and the ``sweep`` CLI subcommand.
"""

from repro.perf.benchmarks import (
    BENCHMARKS,
    BenchmarkResult,
    BenchmarkSpec,
    run_benchmark,
)
from repro.perf.model import predicted_time
from repro.perf.projections import run_table_5_4
from repro.perf.runner import Cell, run_cells

__all__ = [
    "BENCHMARKS", "BenchmarkSpec", "BenchmarkResult", "run_benchmark",
    "predicted_time", "run_table_5_4", "Cell", "run_cells",
]
