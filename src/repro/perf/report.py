"""Text rendering of the reproduced tables, paper-vs-ours side by side."""

from __future__ import annotations

from repro.kernel.costs import CostProfile, Primitive, round_count
from repro.perf.benchmarks import BenchmarkResult
from repro.perf.model import (
    COMMIT_PROTOCOL_OF,
    PAPER_TABLE_5_2,
    PAPER_TABLE_5_3,
    PAPER_TABLE_5_4,
)

P = Primitive

_PRIMITIVE_LABELS = {
    P.DATA_SERVER_CALL: "Data Server Call",
    P.INTER_NODE_DATA_SERVER_CALL: "Inter-Node Data Server Call",
    P.DATAGRAM: "Datagram",
    P.SMALL_MESSAGE: "Small Contiguous Message",
    P.LARGE_MESSAGE: "Large Contiguous Message",
    P.POINTER_MESSAGE: "Pointer Message",
    P.RANDOM_PAGED_IO: "Random Access Paged I/O",
    P.SEQUENTIAL_READ: "Sequential Read",
    P.STABLE_STORAGE_WRITE: "Stable Storage Write",
}


def format_row(cells: list[str], widths: list[int]) -> str:
    return "  ".join(cell.rjust(width) if index else cell.ljust(width)
                     for index, (cell, width) in
                     enumerate(zip(cells, widths)))


def render_table(title: str, header: list[str],
                 rows: list[list[str]]) -> str:
    widths = [max(len(header[i]), *(len(row[i]) for row in rows))
              if rows else len(header[i]) for i in range(len(header))]
    lines = [title, "=" * len(title), format_row(header, widths),
             format_row(["-" * w for w in widths], widths)]
    lines.extend(format_row(row, widths) for row in rows)
    return "\n".join(lines)


#: the robustness counters surfaced alongside the paper tables, in a
#: stable rendering order
ROBUSTNESS_COUNTERS = ("failures_detected", "false_suspicions",
                       "aborts_on_failure", "rpc_retries",
                       "self_recoveries")


def render_robustness_counters(meter) -> str:
    """The failure-detection / self-healing counters of one run.

    Reads :attr:`repro.kernel.costs.CostMeter.counters`; counters that
    never fired render as 0 so the report shape is stable.
    """
    rows = [[name.replace("_", " "), str(meter.counter(name))]
            for name in ROBUSTNESS_COUNTERS]
    extras = sorted(set(meter.counters) - set(ROBUSTNESS_COUNTERS))
    rows.extend([name.replace("_", " "), str(meter.counter(name))]
                for name in extras)
    return render_table("Robustness counters", ["event", "count"], rows)


def render_metrics(registry) -> str:
    """Per-node counters, gauges, and latency histograms of one run.

    Reads a :class:`repro.obs.MetricsRegistry`.  Rows sort by
    ``(node, name)``, so two same-seed runs render identically.
    """
    sections = []
    counters = registry.counters()
    if counters:
        rows = [[node, name, str(metric.value)]
                for (node, name), metric in sorted(counters.items())]
        sections.append(render_table(
            "Counters", ["node", "counter", "count"], rows))
    gauges = registry.gauges()
    if gauges:
        rows = [[node, name, str(metric.value), str(metric.high_water)]
                for (node, name), metric in sorted(gauges.items())]
        sections.append(render_table(
            "Gauges", ["node", "gauge", "value", "max"], rows))
    histograms = registry.histograms()
    if histograms:
        rows = [[node, name, str(metric.count), f"{metric.mean:.2f}",
                 f"{metric.p50:.2f}", f"{metric.p95:.2f}",
                 f"{metric.p99:.2f}",
                 f"{metric.min if metric.min is not None else 0.0:.2f}",
                 f"{metric.max if metric.max is not None else 0.0:.2f}"]
                for (node, name), metric in sorted(histograms.items())]
        sections.append(render_table(
            "Latency histograms (ms)",
            ["node", "histogram", "n", "mean", "p50", "p95", "p99",
             "min", "max"], rows))
    return "\n\n".join(sections) if sections else "no metrics recorded"


def render_table_5_1(measured: dict[Primitive, float],
                     paper_profile: CostProfile) -> str:
    rows = [[_PRIMITIVE_LABELS[p], f"{measured[p]:.1f}",
             f"{paper_profile.time_of(p):.1f}"]
            for p in Primitive]
    return render_table(
        "Table 5-1: Primitive Operation Times (ms)",
        ["Primitive", "measured (sim)", "paper"], rows)


def _fmt(value: float | None) -> str:
    """Render a count, rounding (half-even) at the report boundary only.

    Without the rounding, an exact-in-spirit count like ``3.0000000000004``
    (floating-point dust from per-iteration averaging) would print as
    ``3.00`` while its neighbours print ``3``.
    """
    if value is None:
        return "?"
    value = round_count(value)
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def render_table_5_2(results: list[BenchmarkResult]) -> str:
    header = ["Benchmark", "DSC", "rDSC", "small", "large", "seq", "rand",
              "| paper:", "DSC", "rDSC", "small", "large", "seq", "rand"]
    rows = []
    for result in results:
        counts = result.precommit_counts
        paper = PAPER_TABLE_5_2.get(result.spec.key)
        rows.append([
            result.spec.title,
            _fmt(counts.get(P.DATA_SERVER_CALL, 0)),
            _fmt(counts.get(P.INTER_NODE_DATA_SERVER_CALL, 0)),
            _fmt(counts.get(P.SMALL_MESSAGE, 0)),
            _fmt(counts.get(P.LARGE_MESSAGE, 0)),
            _fmt(counts.get(P.SEQUENTIAL_READ, 0)),
            _fmt(counts.get(P.RANDOM_PAGED_IO, 0)),
            "|",
            _fmt(paper.ds_calls if paper else None),
            _fmt(paper.remote_ds_calls if paper else None),
            _fmt(paper.small if paper else None),
            _fmt(paper.large if paper else None),
            _fmt(paper.sequential_reads if paper else None),
            _fmt(paper.random_page_io if paper else None),
        ])
    return render_table(
        "Table 5-2: Pre-Commit Primitive Counts (measured | paper)",
        header, rows)


def render_table_5_3(results: list[BenchmarkResult]) -> str:
    from repro.perf.pathmodel import TABLE_5_3_PATHS

    header = ["Benchmark (commit protocol)", "dg", "small", "large", "ptr",
              "stable", "| path:", "dg", "small", "stable",
              "| paper path:", "dg", "small", "large", "ptr", "stable"]
    rows = []
    seen_protocols = set()
    for result in results:
        protocol = COMMIT_PROTOCOL_OF.get(result.spec.key)
        if protocol in seen_protocols:
            continue
        seen_protocols.add(protocol)
        counts = result.commit_counts
        paper = PAPER_TABLE_5_3.get(protocol)
        path = TABLE_5_3_PATHS.get(protocol)
        rows.append([
            f"{result.spec.title} ({protocol})",
            _fmt(counts.get(P.DATAGRAM, 0)),
            _fmt(counts.get(P.SMALL_MESSAGE, 0)),
            _fmt(counts.get(P.LARGE_MESSAGE, 0)),
            _fmt(counts.get(P.POINTER_MESSAGE, 0)),
            _fmt(counts.get(P.STABLE_STORAGE_WRITE, 0)),
            "|",
            _fmt(path.datagrams if path else None),
            _fmt(path.small if path else None),
            _fmt(path.stable_writes if path else None),
            "|",
            _fmt(paper.datagrams if paper else None),
            _fmt(paper.small if paper else None),
            _fmt(paper.large if paper else None),
            _fmt(paper.pointer if paper else None),
            _fmt(paper.stable_writes if paper else None),
        ])
    return render_table(
        "Table 5-3: Commit Primitive Counts "
        "(measured totals | our longest path | paper longest path)",
        header, rows)


def render_table_5_4(rows_data) -> str:
    header = ["Benchmark", "pred", "proc", "elapsed", "improved", "newprim",
              "| paper:", "pred", "proc", "elapsed", "improved", "newprim"]
    rows = []
    for row in rows_data:
        paper = PAPER_TABLE_5_4.get(row.spec.key)
        rows.append([
            row.spec.title,
            _fmt(round(row.predicted_ms)),
            _fmt(round(row.tabs_process_ms)),
            _fmt(round(row.elapsed_ms)),
            _fmt(round(row.improved_ms)),
            _fmt(round(row.new_primitives_ms)),
            "|",
            _fmt(paper.predicted if paper else None),
            _fmt(paper.tabs_process if paper else None),
            _fmt(paper.elapsed if paper else None),
            _fmt(paper.improved_architecture if paper else None),
            _fmt(paper.new_primitive_times if paper else None),
        ])
    return render_table(
        "Table 5-4: Benchmark Times in ms (ours | paper)", header, rows)


def render_table_5_5(measured: dict[Primitive, float],
                     paper_profile: CostProfile) -> str:
    rows = [[_PRIMITIVE_LABELS[p], f"{measured[p]:.1f}",
             f"{paper_profile.time_of(p):.2f}"]
            for p in Primitive]
    return render_table(
        "Table 5-5: Achievable Primitive Operation Times (ms)",
        ["Primitive", "measured (sim)", "paper"], rows)
