"""Several data servers sharing one node's common log.

"All objects in TABS use one of two co-existing write-ahead logging
techniques and share a common log" (Section 2.1.3): value-logged and
operation-logged servers interleave records in a single log, one
transaction can span both, and crash recovery untangles them.
"""

import pytest

from repro import TabsCluster, TabsConfig
from repro.errors import WriteAheadLogError
from repro.servers.int_array import IntegerArrayServer
from repro.servers.op_array import OperationArrayServer
from repro.wal.records import OperationRecord, ValueUpdateRecord


@pytest.fixture
def env():
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("values"))
    cluster.add_server("n1", OperationArrayServer.factory("counters"))
    cluster.start()
    app = cluster.application("n1")

    def refs():
        values = yield from app.lookup_one("values")
        counters = yield from app.lookup_one("counters")
        return values, counters

    values, counters = cluster.run_on("n1", refs())
    return cluster, app, values, counters


def test_one_transaction_spans_both_logging_techniques(env):
    cluster, app, values, counters = env

    def body(tid):
        yield from app.call(values, "set_cell",
                            {"cell": 1, "value": 10}, tid)
        yield from app.call(counters, "add_cell",
                            {"cell": 1, "delta": 3}, tid)

    cluster.run_transaction("n1", body)
    tabs = cluster.node("n1")
    durable = tabs.rm.wal.read_forward(tabs.rm.wal.store.truncated_before)
    kinds = {type(r).__name__ for r in durable}
    assert "ValueUpdateRecord" in kinds
    assert "OperationRecord" in kinds


def test_abort_undoes_across_both_servers(env):
    cluster, app, values, counters = env

    def aborted():
        tid = yield from app.begin_transaction()
        yield from app.call(values, "set_cell",
                            {"cell": 1, "value": 99}, tid)
        yield from app.call(counters, "add_cell",
                            {"cell": 1, "delta": 99}, tid)
        yield from app.abort_transaction(tid)

    cluster.run_on("n1", aborted())

    def read(tid):
        first = yield from app.call(values, "get_cell", {"cell": 1}, tid)
        second = yield from app.call(counters, "get_cell", {"cell": 1},
                                     tid)
        return first["value"], second["value"]

    assert cluster.run_transaction("n1", read) == (0, 0)


def test_interleaved_records_recover_to_their_own_servers(env):
    cluster, app, values, counters = env

    def mixed(tid):
        yield from app.call(values, "set_cell", {"cell": 1, "value": 5},
                            tid)
        yield from app.call(counters, "add_cell", {"cell": 1, "delta": 7},
                            tid)
        yield from app.call(values, "set_cell", {"cell": 2, "value": 6},
                            tid)
        yield from app.call(counters, "add_cell", {"cell": 2, "delta": 8},
                            tid)

    cluster.run_transaction("n1", mixed)
    cluster.crash_node("n1")
    report = cluster.restart_node("n1")
    assert report.values_restored >= 2
    assert report.operations_redone >= 2

    app2 = cluster.application("n1")

    def verify(tid):
        values2 = yield from app2.lookup_one("values")
        counters2 = yield from app2.lookup_one("counters")
        out = []
        for cell in (1, 2):
            v = yield from app2.call(values2, "get_cell", {"cell": cell},
                                     tid)
            c = yield from app2.call(counters2, "get_cell", {"cell": cell},
                                     tid)
            out.append((v["value"], c["value"]))
        return out

    assert cluster.run_transaction("n1", verify) == [(5, 7), (6, 8)]


def _abort_double_write(cluster, app, values):
    """Abort a transaction that wrote cell 1 twice (both cycles logged);
    returns (tid, the cell's oid) after the undo walk restored 0."""
    def aborted():
        tid = yield from app.begin_transaction()
        yield from app.call(values, "set_cell", {"cell": 1, "value": 11},
                            tid)
        yield from app.call(values, "set_cell", {"cell": 1, "value": 22},
                            tid)
        yield from app.abort_transaction(tid)
        return tid

    tid = cluster.run_on("n1", aborted())
    wal = cluster.node("n1").rm.wal
    records = []
    for lsn in range(1, wal.last_lsn + 1):
        try:
            records.append(wal.record_at(lsn))
        except WriteAheadLogError:
            continue  # reclaimed or never durable
    oid = next(r.oid for r in records
               if isinstance(r, ValueUpdateRecord) and r.tid == tid
               and r.new_value == 22)
    return tid, oid


def test_zombie_record_restores_committed_value_not_first_write(env):
    """A record spooled *after* the abort's undo walk (a zombie write
    racing its own abort) whose old value is the transaction's own
    earlier write must be undone to the committed value the walk
    restored -- not to the transaction's first, equally-aborted write."""
    from repro.recovery.manager import RecoveryManagerClient

    cluster, app, values, counters = env
    tabs = cluster.node("n1")
    tid, oid = _abort_double_write(cluster, app, values)
    zombie = ValueUpdateRecord(tid=tid, server="values", oid=oid,
                               old_value=11, new_value=33)
    client = RecoveryManagerClient(tabs.node)
    cluster.run_on("n1", client.spool(zombie))

    def read(tid2):
        reply = yield from app.call(values, "get_cell", {"cell": 1}, tid2)
        return reply["value"]

    assert cluster.run_transaction("n1", read) == 0


def test_abort_tombstones_age_out_after_two_checkpoints(env):
    """The RM's zombie tombstones must not grow without bound: an entry
    that has survived one full checkpoint interval can have nothing
    still in flight and is dropped at the next checkpoint."""
    cluster, app, values, counters = env
    tabs = cluster.node("n1")
    tid, _ = _abort_double_write(cluster, app, values)
    assert tid in tabs.rm._aborted_tids
    cluster.run_on("n1", tabs.rm.take_checkpoint({}))
    assert tid in tabs.rm._aborted_tids  # one interval of grace
    cluster.run_on("n1", tabs.rm.take_checkpoint({}))
    assert tid not in tabs.rm._aborted_tids
    assert tid not in tabs.rm._undone_values


def test_records_carry_their_servers_names(env):
    cluster, app, values, counters = env

    def body(tid):
        yield from app.call(values, "set_cell", {"cell": 3, "value": 1},
                            tid)
        yield from app.call(counters, "add_cell", {"cell": 3, "delta": 1},
                            tid)

    cluster.run_transaction("n1", body)
    tabs = cluster.node("n1")
    durable = tabs.rm.wal.read_forward(tabs.rm.wal.store.truncated_before)
    value_servers = {r.server for r in durable
                     if isinstance(r, ValueUpdateRecord)}
    op_servers = {r.server for r in durable
                  if isinstance(r, OperationRecord)}
    assert "values" in value_servers
    assert "counters" in op_servers
