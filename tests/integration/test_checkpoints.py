"""Transaction-Manager-driven periodic checkpoints (Section 3.2.2)."""

from repro import TabsCluster, TabsConfig
from repro.servers.int_array import IntegerArrayServer


def build(checkpoint_every=None):
    cluster = TabsCluster(TabsConfig(
        checkpoint_every_commits=checkpoint_every))
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("array"))
    cluster.start()
    return cluster


def run_writes(cluster, count):
    app = cluster.application("n1")
    for index in range(count):
        def body(tid, index=index):
            ref = yield from app.lookup_one("array")
            yield from app.call(ref, "set_cell",
                                {"cell": (index % 5) + 1,
                                 "value": index}, tid)
        cluster.run_transaction("n1", body)
    cluster.settle()


def test_checkpoints_fire_at_the_configured_cadence():
    cluster = build(checkpoint_every=5)
    tabs = cluster.node("n1")
    baseline = tabs.rm.checkpoints_taken  # startup clean-point checkpoint
    run_writes(cluster, 17)
    assert tabs.rm.checkpoints_taken - baseline == 3  # at 5, 10, 15


def test_no_checkpoints_when_disabled():
    cluster = build(checkpoint_every=None)
    tabs = cluster.node("n1")
    baseline = tabs.rm.checkpoints_taken
    run_writes(cluster, 17)
    assert tabs.rm.checkpoints_taken == baseline


def test_checkpoint_records_active_transactions():
    cluster = build(checkpoint_every=1)
    app = cluster.application("n1")
    from repro.sim import Timeout

    def lingering():
        tid = yield from app.begin_transaction()
        ref = yield from app.lookup_one("array")
        yield from app.call(ref, "set_cell", {"cell": 9, "value": 1}, tid)
        yield Timeout(cluster.engine, 60_000.0)
        return tid

    process = cluster.spawn_on("n1", lingering())
    cluster.engine.run(until=cluster.engine.now + 1_000.0)
    run_writes(cluster, 2)  # each commit checkpoints

    from repro.wal.records import CheckpointRecord
    tabs = cluster.node("n1")
    durable = tabs.rm.wal.read_forward(tabs.rm.wal.store.truncated_before)
    checkpoints = [r for r in durable if isinstance(r, CheckpointRecord)]
    assert checkpoints
    assert checkpoints[-1].active_transactions  # the lingering txn shows
    process.kill("test over")


def test_recovery_after_periodic_checkpoints_is_bounded():
    cluster = build(checkpoint_every=5)
    run_writes(cluster, 40)
    cluster.crash_node("n1")
    report = cluster.restart_node("n1")
    # The scan is bounded by the latest checkpoint's horizon, not the
    # whole history of 40 transactions.
    assert report.values_restored <= 12
    app = cluster.application("n1")

    def read(tid):
        ref = yield from app.lookup_one("array")
        result = yield from app.call(ref, "get_cell", {"cell": 5}, tid)
        return result["value"]

    assert cluster.run_transaction("n1", read) == 39
