"""End-to-end tests for the B-tree server (Section 4.4)."""

import pytest

from repro import TabsCluster, TabsConfig
from repro.servers.btree import MAX_KEYS, BTreeServer


@pytest.fixture
def cluster():
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1", BTreeServer.factory("dirs"))
    cluster.start()
    return cluster


@pytest.fixture
def env(cluster):
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("dirs"))

    def create(tid):
        yield from app.call(ref, "create_directory",
                            {"directory": "users"}, tid)

    cluster.run_transaction("n1", create)
    return cluster, app, ref


def call(app, ref, tid, op, **body):
    result = yield from app.call(ref, op, dict(body, directory="users"), tid)
    return result


def test_insert_and_lookup(env):
    cluster, app, ref = env

    def body(tid):
        yield from call(app, ref, tid, "insert", key="alice", value=30)
        result = yield from call(app, ref, tid, "lookup", key="alice")
        return result["value"]

    assert cluster.run_transaction("n1", body) == 30


def test_lookup_missing_key_fails(env):
    cluster, app, ref = env

    def body(tid):
        yield from call(app, ref, tid, "lookup", key="ghost")

    with pytest.raises(Exception, match="no key"):
        cluster.run_transaction("n1", body)


def test_duplicate_insert_rejected(env):
    cluster, app, ref = env

    def body(tid):
        yield from call(app, ref, tid, "insert", key="k", value=1)
        yield from call(app, ref, tid, "insert", key="k", value=2)

    with pytest.raises(Exception, match="duplicate"):
        cluster.run_transaction("n1", body)


def test_update_changes_value(env):
    cluster, app, ref = env

    def body(tid):
        yield from call(app, ref, tid, "insert", key="k", value="old")
        yield from call(app, ref, tid, "update", key="k", value="new")
        result = yield from call(app, ref, tid, "lookup", key="k")
        return result["value"]

    assert cluster.run_transaction("n1", body) == "new"


def test_delete_removes_key(env):
    cluster, app, ref = env

    def body(tid):
        yield from call(app, ref, tid, "insert", key="k", value=1)
        yield from call(app, ref, tid, "delete", key="k")

    cluster.run_transaction("n1", body)

    def check(tid):
        yield from call(app, ref, tid, "lookup", key="k")

    with pytest.raises(Exception, match="no key"):
        cluster.run_transaction("n1", check)


def test_many_inserts_force_splits_and_stay_sorted(env):
    cluster, app, ref = env
    keys = [f"key{i:03d}" for i in range(5 * MAX_KEYS)]

    def fill(tid):
        # Insert in an order that exercises splits on both flanks.
        for key in keys[::2] + keys[1::2]:
            yield from call(app, ref, tid, "insert", key=key, value=key)

    cluster.run_transaction("n1", fill)

    def scan(tid):
        result = yield from call(app, ref, tid, "scan")
        return result["entries"]

    entries = cluster.run_transaction("n1", scan)
    assert [key for key, _ in entries] == sorted(keys)


def test_deletes_force_merges(env):
    cluster, app, ref = env
    keys = [f"k{i:03d}" for i in range(4 * MAX_KEYS)]

    def fill(tid):
        for key in keys:
            yield from call(app, ref, tid, "insert", key=key, value=1)

    cluster.run_transaction("n1", fill)

    def drain(tid):
        for key in keys[:-3]:
            yield from call(app, ref, tid, "delete", key=key)
        result = yield from call(app, ref, tid, "scan")
        return result["entries"]

    entries = cluster.run_transaction("n1", drain)
    assert [key for key, _ in entries] == keys[-3:]


def test_range_scan(env):
    cluster, app, ref = env

    def body(tid):
        for key in "abcdef":
            yield from call(app, ref, tid, "insert", key=key, value=key)
        result = yield from call(app, ref, tid, "scan", lo="b", hi="d")
        return [key for key, _ in result["entries"]]

    assert cluster.run_transaction("n1", body) == ["b", "c", "d"]


def test_aborted_insert_rolls_back_tree_and_allocator(env):
    cluster, app, ref = env
    keys = [f"k{i}" for i in range(3 * MAX_KEYS)]

    def committed(tid):
        for key in keys[:4]:
            yield from call(app, ref, tid, "insert", key=key, value=1)

    cluster.run_transaction("n1", committed)

    def aborted():
        app2 = cluster.application("n1")
        tid = yield from app2.begin_transaction()
        for key in keys[4:]:
            result = yield from app2.call(
                ref, "insert", {"directory": "users", "key": key,
                                "value": 1}, tid)
            del result
        yield from app2.abort_transaction(tid)

    cluster.run_on("n1", aborted())

    def scan(tid):
        result = yield from call(app, ref, tid, "scan")
        return [key for key, _ in result["entries"]]

    assert cluster.run_transaction("n1", scan) == sorted(keys[:4])


def test_tree_survives_crash(env):
    cluster, app, ref = env
    keys = [f"key{i:02d}" for i in range(20)]

    def fill(tid):
        for key in keys:
            yield from call(app, ref, tid, "insert", key=key, value=key)

    cluster.run_transaction("n1", fill)
    cluster.crash_node("n1")
    cluster.restart_node("n1")

    app2 = cluster.application("n1")

    def scan(tid):
        ref2 = yield from app2.lookup_one("dirs")
        result = yield from app2.call(ref2, "scan",
                                      {"directory": "users"}, tid)
        return [key for key, _ in result["entries"]]

    assert cluster.run_transaction("n1", scan) == keys


def test_secondary_index(env):
    cluster, app, ref = env

    def body(tid):
        yield from call(app, ref, tid, "create_index", field="city")
        people = {"alice": {"city": "pgh"}, "bob": {"city": "nyc"},
                  "carol": {"city": "pgh"}}
        for key, value in people.items():
            yield from call(app, ref, tid, "insert", key=key, value=value)
        result = yield from call(app, ref, tid, "lookup_by_index",
                                 field="city", key="pgh")
        return sorted(result["primary_keys"])

    assert cluster.run_transaction("n1", body) == ["alice", "carol"]


def test_secondary_index_follows_update_and_delete(env):
    cluster, app, ref = env

    def body(tid):
        yield from call(app, ref, tid, "create_index", field="city")
        yield from call(app, ref, tid, "insert", key="alice",
                        value={"city": "pgh"})
        yield from call(app, ref, tid, "update", key="alice",
                        value={"city": "nyc"})
        pgh = yield from call(app, ref, tid, "lookup_by_index",
                              field="city", key="pgh")
        nyc = yield from call(app, ref, tid, "lookup_by_index",
                              field="city", key="nyc")
        yield from call(app, ref, tid, "delete", key="alice")
        gone = yield from call(app, ref, tid, "lookup_by_index",
                               field="city", key="nyc")
        return (pgh["primary_keys"], nyc["primary_keys"],
                gone["primary_keys"])

    assert cluster.run_transaction("n1", body) == ([], ["alice"], [])


def test_two_directories_are_independent(cluster):
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("dirs"))

    def body(tid):
        for directory in ("left", "right"):
            yield from app.call(ref, "create_directory",
                                {"directory": directory}, tid)
        yield from app.call(ref, "insert", {"directory": "left",
                                            "key": "k", "value": "L"}, tid)
        yield from app.call(ref, "insert", {"directory": "right",
                                            "key": "k", "value": "R"}, tid)
        left = yield from app.call(ref, "lookup",
                                   {"directory": "left", "key": "k"}, tid)
        right = yield from app.call(ref, "lookup",
                                    {"directory": "right", "key": "k"}, tid)
        return left["value"], right["value"]

    assert cluster.run_transaction("n1", body) == ("L", "R")
