"""The replicated directory object over three nodes (Section 4.5)."""

import pytest

from repro import QuorumUnavailable, TabsCluster, TabsConfig, TabsError
from repro.servers.btree import KeyNotFound
from repro.servers.replicated_dir import (
    DirectoryRepresentativeServer,
    Replica,
    ReplicatedDirectory,
)


def make_cluster():
    cluster = TabsCluster(TabsConfig())
    for index in range(3):
        name = f"n{index}"
        cluster.add_node(name)
        cluster.add_server(
            name, DirectoryRepresentativeServer.factory(f"rep{index}"))
    cluster.start()
    return cluster


def make_directory(cluster, app, **kwargs):
    replicas = []
    for index in range(3):
        ref = cluster.run_on("n0", app.lookup_one(f"rep{index}"))
        replicas.append(Replica(ref=ref, weight=1))
    directory = ReplicatedDirectory(app, replicas, read_quorum=2,
                                    write_quorum=2, **kwargs)
    cluster.run_transaction("n0", directory.create)
    cluster.settle()
    return directory


@pytest.fixture
def env():
    cluster = make_cluster()
    app = cluster.application("n0")
    directory = make_directory(cluster, app)
    return cluster, app, directory


def test_quorum_rule_enforced():
    cluster = make_cluster()
    app = cluster.application("n0")
    refs = [cluster.run_on("n0", app.lookup_one(f"rep{i}"))
            for i in range(3)]
    replicas = [Replica(ref=r) for r in refs]
    with pytest.raises(TabsError, match="intersect"):
        ReplicatedDirectory(app, replicas, read_quorum=1, write_quorum=1)
    with pytest.raises(TabsError, match="majority"):
        ReplicatedDirectory(app, replicas, read_quorum=3, write_quorum=1)


def test_insert_then_lookup(env):
    cluster, app, directory = env

    def body(tid):
        yield from directory.insert(tid, "alpha", 1)
        value = yield from directory.lookup(tid, "alpha")
        return value

    assert cluster.run_transaction("n0", body) == 1
    cluster.settle()


def test_update_bumps_version(env):
    cluster, app, directory = env

    def body(tid):
        yield from directory.insert(tid, "k", "v1")
        yield from directory.update(tid, "k", "v2")
        value = yield from directory.lookup(tid, "k")
        return value

    assert cluster.run_transaction("n0", body) == "v2"
    cluster.settle()


def test_delete_leaves_tombstone(env):
    cluster, app, directory = env

    def body(tid):
        yield from directory.insert(tid, "k", 1)
        yield from directory.delete(tid, "k")

    cluster.run_transaction("n0", body)
    cluster.settle()

    def check(tid):
        yield from directory.lookup(tid, "k")

    with pytest.raises(KeyNotFound):
        cluster.run_transaction("n0", check)
    cluster.settle()


def test_duplicate_insert_rejected(env):
    cluster, app, directory = env

    def body(tid):
        yield from directory.insert(tid, "k", 1)
        yield from directory.insert(tid, "k", 2)

    with pytest.raises(TabsError, match="exists"):
        cluster.run_transaction("n0", body)
    cluster.settle()


def test_data_available_with_one_node_down(env):
    """The paper's own test: 3 nodes permit one to fail with the data
    remaining available."""
    cluster, app, directory = env

    def fill(tid):
        yield from directory.insert(tid, "durable", "value")

    cluster.run_transaction("n0", fill)
    cluster.settle()
    cluster.crash_node("n2")

    def read(tid):
        value = yield from directory.lookup(tid, "durable")
        return value

    assert cluster.run_transaction("n0", read) == "value"
    cluster.settle()


def test_writes_succeed_with_one_node_down(env):
    cluster, app, directory = env
    cluster.crash_node("n2")

    def fill(tid):
        yield from directory.insert(tid, "k", "written-during-failure")

    cluster.run_transaction("n0", fill)
    cluster.settle()

    def read(tid):
        value = yield from directory.lookup(tid, "k")
        return value

    assert cluster.run_transaction("n0", read) == "written-during-failure"
    cluster.settle()


def test_two_nodes_down_denies_quorum(env):
    cluster, app, directory = env
    cluster.crash_node("n1")
    cluster.crash_node("n2")

    def read(tid):
        yield from directory.lookup(tid, "anything")

    with pytest.raises(QuorumUnavailable):
        cluster.run_transaction("n0", read)
    cluster.settle()


def test_recovered_node_catches_up_via_versions(env):
    """A stale replica (down during a write) never wins a vote: the read
    quorum intersects the write quorum, so the highest version prevails."""
    cluster, app, directory = env

    def v1(tid):
        yield from directory.insert(tid, "k", "v1")

    cluster.run_transaction("n0", v1)
    cluster.settle()
    cluster.crash_node("n0")  # n0 hosts rep0, the first replica probed

    app1 = cluster.application("n1")
    directory1 = ReplicatedDirectory(
        app1,
        [Replica(ref=cluster.run_on("n1", app1.lookup_one(f"rep{i}")))
         for i in (1, 2)] ,
        read_quorum=2, write_quorum=2)
    # Write v2 while n0 is down (quorum = the two survivors).
    directory1.read_quorum = 2
    directory1.write_quorum = 2
    directory1.replicas = directory1.replicas  # unchanged

    def v2(tid):
        yield from directory1.update(tid, "k", "v2")

    cluster.run_transaction("n1", v2)
    cluster.settle()

    cluster.restart_node("n0")
    app0 = cluster.application("n0")
    refs = [cluster.run_on("n0", app0.lookup_one(f"rep{i}"))
            for i in range(3)]
    directory0 = ReplicatedDirectory(
        app0, [Replica(ref=r) for r in refs], read_quorum=2, write_quorum=2)

    def read(tid):
        value = yield from directory0.lookup(tid, "k")
        return value

    # rep0 still holds v1; the quorum includes a v2 holder, and v2 wins.
    assert cluster.run_transaction("n0", read) == "v2"
    cluster.settle()


def test_read_repair_pushes_winning_version(env):
    cluster, app, directory = env

    def v1(tid):
        yield from directory.insert(tid, "k", "v1")

    cluster.run_transaction("n0", v1)
    cluster.settle()
    cluster.crash_node("n2")

    def v2(tid):
        yield from directory.update(tid, "k", "v2")

    cluster.run_transaction("n0", v2)
    cluster.settle()
    cluster.restart_node("n2")

    # Rebuild refs (rep2's port changed) with read repair enabled.
    app2 = cluster.application("n0")
    refs = [cluster.run_on("n0", app2.lookup_one(f"rep{i}"))
            for i in (2, 0, 1)]  # probe the stale replica first
    repairing = ReplicatedDirectory(
        app2, [Replica(ref=r) for r in refs], read_quorum=2, write_quorum=2,
        read_repair=True)

    def read(tid):
        value = yield from repairing.lookup(tid, "k")
        return value

    assert cluster.run_transaction("n0", read) == "v2"
    cluster.settle()

    # After repair, even a quorum of {rep2, rep0} alone sees v2 at rep2.
    solo = ReplicatedDirectory(
        app2, [Replica(ref=refs[0], weight=2)], read_quorum=2,
        write_quorum=2)

    def read_stale_only(tid):
        value = yield from solo.lookup(tid, "k")
        return value

    assert cluster.run_transaction("n0", read_stale_only) == "v2"
    cluster.settle()


def test_aborted_replicated_insert_recovers_on_all_nodes(env):
    cluster, app, directory = env

    def aborted():
        tid = yield from app.begin_transaction()
        yield from directory.insert(tid, "ghost", 1)
        yield from app.abort_transaction(tid)

    cluster.run_on("n0", aborted())
    cluster.settle()

    def check(tid):
        yield from directory.lookup(tid, "ghost")

    with pytest.raises(KeyNotFound):
        cluster.run_transaction("n0", check)
    cluster.settle()
