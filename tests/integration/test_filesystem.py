"""The transactional file system server."""

import pytest

from repro import TabsCluster, TabsConfig
from repro.servers.filesystem import (
    CHUNK_CHARS,
    TransactionalFileSystemServer,
)


@pytest.fixture
def env():
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1",
                       TransactionalFileSystemServer.factory("disk0"))
    cluster.start()
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("disk0"))

    def mkfs(tid):
        yield from app.call(ref, "mkfs", {}, tid)

    cluster.run_transaction("n1", mkfs)
    return cluster, app, ref


def fs_call(app, ref, tid, op, **body):
    result = yield from app.call(ref, op, body, tid)
    return result


def one(cluster, app, ref, op, **body):
    def txn(tid):
        result = yield from fs_call(app, ref, tid, op, **body)
        return result
    return cluster.run_transaction("n1", txn)


def test_create_write_read(env):
    cluster, app, ref = env

    def body(tid):
        yield from fs_call(app, ref, tid, "create", path="/motd")
        yield from fs_call(app, ref, tid, "write", path="/motd",
                           data="hello, world")
        result = yield from fs_call(app, ref, tid, "read", path="/motd")
        return result["data"]

    assert cluster.run_transaction("n1", body) == "hello, world"


def test_large_file_spans_chunks(env):
    cluster, app, ref = env
    data = "x" * (3 * CHUNK_CHARS + 17)
    one(cluster, app, ref, "create", path="/big")
    one(cluster, app, ref, "write", path="/big", data=data)
    result = one(cluster, app, ref, "read", path="/big")
    assert result["data"] == data
    assert result["size"] == len(data)


def test_append_extends_content(env):
    cluster, app, ref = env
    one(cluster, app, ref, "create", path="/log")
    one(cluster, app, ref, "append", path="/log", data="one ")
    one(cluster, app, ref, "append", path="/log", data="two")
    assert one(cluster, app, ref, "read", path="/log")["data"] == "one two"


def test_append_across_chunk_boundary(env):
    cluster, app, ref = env
    one(cluster, app, ref, "create", path="/long")
    first = "a" * (CHUNK_CHARS - 3)
    second = "b" * 10
    one(cluster, app, ref, "append", path="/long", data=first)
    one(cluster, app, ref, "append", path="/long", data=second)
    assert one(cluster, app, ref, "read", path="/long")["data"] == \
        first + second


def test_directories_and_listing(env):
    cluster, app, ref = env

    def body(tid):
        yield from fs_call(app, ref, tid, "mkdir", path="/etc")
        yield from fs_call(app, ref, tid, "mkdir", path="/etc/rc.d")
        yield from fs_call(app, ref, tid, "create", path="/etc/motd")
        listing = yield from fs_call(app, ref, tid, "list_dir", path="/etc")
        root = yield from fs_call(app, ref, tid, "list_dir", path="/")
        return listing["entries"], root["entries"]

    etc, root = cluster.run_transaction("n1", body)
    assert etc == ["motd", "rc.d"]
    assert root == ["etc"]


def test_create_under_missing_parent_fails(env):
    cluster, app, ref = env
    with pytest.raises(Exception, match="no such path"):
        one(cluster, app, ref, "create", path="/nowhere/file")


def test_write_to_directory_fails(env):
    cluster, app, ref = env
    one(cluster, app, ref, "mkdir", path="/d")
    with pytest.raises(Exception, match="is a directory"):
        one(cluster, app, ref, "write", path="/d", data="nope")


def test_remove_file_frees_pages_for_reuse(env):
    cluster, app, ref = env
    tabs = cluster.node("n1")
    one(cluster, app, ref, "create", path="/tmp1")
    one(cluster, app, ref, "write", path="/tmp1", data="z" * CHUNK_CHARS * 4)
    one(cluster, app, ref, "remove", path="/tmp1")
    # Allocator state: freed pages are available again.
    frame = tabs.node.vm.frame("n1:disk0", 1)
    allocator = (frame.data.get(512) if frame is not None
                 else tabs.node.disk.peek_page("n1:disk0", 1).get(512))
    assert len(allocator["free"]) >= 4


def test_remove_nonempty_directory_fails(env):
    cluster, app, ref = env
    one(cluster, app, ref, "mkdir", path="/d")
    one(cluster, app, ref, "create", path="/d/f")
    with pytest.raises(Exception, match="not empty"):
        one(cluster, app, ref, "remove", path="/d")


def test_rename_file(env):
    cluster, app, ref = env
    one(cluster, app, ref, "create", path="/old")
    one(cluster, app, ref, "write", path="/old", data="payload")
    one(cluster, app, ref, "rename", source="/old", target="/new")
    assert one(cluster, app, ref, "read", path="/new")["data"] == "payload"
    with pytest.raises(Exception, match="no such path"):
        one(cluster, app, ref, "read", path="/old")


def test_rename_subtree(env):
    cluster, app, ref = env

    def build(tid):
        yield from fs_call(app, ref, tid, "mkdir", path="/a")
        yield from fs_call(app, ref, tid, "mkdir", path="/a/b")
        yield from fs_call(app, ref, tid, "create", path="/a/b/f")
        yield from fs_call(app, ref, tid, "write", path="/a/b/f",
                           data="deep")

    cluster.run_transaction("n1", build)
    result = one(cluster, app, ref, "rename", source="/a", target="/z")
    assert result["moved"] == 3
    assert one(cluster, app, ref, "read", path="/z/b/f")["data"] == "deep"


def test_rename_into_own_subtree_rejected(env):
    cluster, app, ref = env
    one(cluster, app, ref, "mkdir", path="/a")
    with pytest.raises(Exception, match="into itself"):
        one(cluster, app, ref, "rename", source="/a", target="/a/b")


def test_multi_file_transaction_is_atomic(env):
    """The point of a *transactional* file system: an aborted batch of
    file operations leaves no trace, even across files."""
    cluster, app, ref = env
    one(cluster, app, ref, "create", path="/keep")
    one(cluster, app, ref, "write", path="/keep", data="original")

    def aborted():
        tid = yield from app.begin_transaction()
        yield from fs_call(app, ref, tid, "write", path="/keep",
                           data="clobbered")
        yield from fs_call(app, ref, tid, "create", path="/fresh")
        yield from fs_call(app, ref, tid, "write", path="/fresh",
                           data="partial")
        yield from app.abort_transaction(tid)

    cluster.run_on("n1", aborted())
    assert one(cluster, app, ref, "read", path="/keep")["data"] == \
        "original"
    with pytest.raises(Exception, match="no such path"):
        one(cluster, app, ref, "stat", path="/fresh")


def test_filesystem_survives_crash(env):
    cluster, app, ref = env

    def build(tid):
        yield from fs_call(app, ref, tid, "mkdir", path="/home")
        yield from fs_call(app, ref, tid, "create", path="/home/notes")
        yield from fs_call(app, ref, tid, "write", path="/home/notes",
                           data="durable " * 50)

    cluster.run_transaction("n1", build)
    cluster.crash_node("n1")
    cluster.restart_node("n1")
    app2 = cluster.application("n1")

    def reread(tid):
        fresh = yield from app2.lookup_one("disk0")
        result = yield from app2.call(fresh, "read",
                                      {"path": "/home/notes"}, tid)
        return result["data"]

    assert cluster.run_transaction("n1", reread) == "durable " * 50
