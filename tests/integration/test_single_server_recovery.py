"""Single-server recovery without node recovery (the Section 7 extension).

A data-server process dies; the node, its other servers, the common log,
and the recoverable segment all survive.  Recovery re-creates the process,
aborts the transactions whose server-side state evaporated, and re-locks
in-doubt data.
"""

import pytest

from repro import TabsCluster, TabsConfig
from repro.servers.int_array import IntegerArrayServer
from repro.sim import Timeout


@pytest.fixture
def cluster():
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("victim"))
    cluster.add_server("n1", IntegerArrayServer.factory("bystander"))
    cluster.start()
    return cluster


def recover(cluster, name="victim"):
    return cluster.run_on(
        "n1", cluster.node("n1").recover_server_generator(name))


def set_cell(app, ref, tid, cell, value):
    yield from app.call(ref, "set_cell", {"cell": cell, "value": value}, tid)


def get_value(cluster, app, name, cell):
    def body(tid):
        ref = yield from app.lookup_one(name)
        result = yield from app.call(ref, "get_cell", {"cell": cell}, tid)
        return result["value"]
    return cluster.run_transaction("n1", body)


def test_committed_data_survives_server_failure(cluster):
    app = cluster.application("n1")

    def write(tid):
        ref = yield from app.lookup_one("victim")
        yield from set_cell(app, ref, tid, 1, 42)

    cluster.run_transaction("n1", write)
    cluster.node("n1").fail_server("victim")
    recover(cluster)
    assert get_value(cluster, app, "victim", 1) == 42


def test_other_servers_unaffected(cluster):
    app = cluster.application("n1")

    def write(tid):
        ref = yield from app.lookup_one("bystander")
        yield from set_cell(app, ref, tid, 1, 7)

    cluster.run_transaction("n1", write)
    cluster.node("n1").fail_server("victim")
    # The bystander keeps serving while the victim is down.
    assert get_value(cluster, app, "bystander", 1) == 7
    recover(cluster)


def test_in_flight_transaction_at_failed_server_is_aborted(cluster):
    app = cluster.application("n1")
    tm = cluster.node("n1").tm

    def in_flight():
        tid = yield from app.begin_transaction()
        ref = yield from app.lookup_one("victim")
        yield from set_cell(app, ref, tid, 1, 999)
        yield Timeout(cluster.engine, 60_000.0)
        return tid

    process = cluster.spawn_on("n1", in_flight())
    cluster.engine.run(until=cluster.engine.now + 1_000.0)
    cluster.node("n1").fail_server("victim")
    recover(cluster)
    # The recovery aborted the transaction and undid its buffered write.
    assert tm.aborts >= 1
    assert get_value(cluster, app, "victim", 1) == 0
    process.kill("test over")


def test_transaction_spanning_both_servers_is_aborted_everywhere(cluster):
    """Failure atomicity across servers: when the victim's half dies, the
    bystander's half must roll back too."""
    app = cluster.application("n1")

    def in_flight():
        tid = yield from app.begin_transaction()
        victim = yield from app.lookup_one("victim")
        bystander = yield from app.lookup_one("bystander")
        yield from set_cell(app, victim, tid, 1, 111)
        yield from set_cell(app, bystander, tid, 1, 222)
        yield Timeout(cluster.engine, 60_000.0)

    process = cluster.spawn_on("n1", in_flight())
    cluster.engine.run(until=cluster.engine.now + 1_000.0)
    cluster.node("n1").fail_server("victim")
    recover(cluster)
    assert get_value(cluster, app, "victim", 1) == 0
    assert get_value(cluster, app, "bystander", 1) == 0
    process.kill("test over")


def test_lookup_after_recovery_returns_the_new_port(cluster):
    app = cluster.application("n1")
    old_ref = cluster.run_on("n1", app.lookup_one("victim"))
    cluster.node("n1").fail_server("victim")
    recover(cluster)
    new_ref = cluster.run_on("n1", app.lookup_one("victim"))
    assert new_ref.port is not old_ref.port
    assert new_ref.port.alive
    assert not old_ref.port.alive


def test_new_transactions_proceed_after_recovery(cluster):
    app = cluster.application("n1")
    cluster.node("n1").fail_server("victim")
    recover(cluster)

    def write(tid):
        ref = yield from app.lookup_one("victim")
        yield from set_cell(app, ref, tid, 3, 33)

    cluster.run_transaction("n1", write)
    assert get_value(cluster, app, "victim", 3) == 33


def test_prepared_transaction_stays_locked_across_server_recovery():
    """A subordinate's data server fails while a distributed transaction
    is prepared: recovery re-locks the in-doubt data from the log, and
    the outcome still applies."""
    cluster = TabsCluster(TabsConfig())
    for name in ("coord", "sub"):
        cluster.add_node(name)
        cluster.add_server(name, IntegerArrayServer.factory(f"arr_{name}"))
    cluster.start()
    app = cluster.application("coord")
    sub_tabs = cluster.node("sub")

    def transfer(tid):
        local = yield from app.lookup_one("arr_coord")
        remote = yield from app.lookup_one("arr_sub")
        yield from app.call(local, "set_cell", {"cell": 1, "value": 5}, tid)
        yield from app.call(remote, "set_cell", {"cell": 1, "value": 6},
                            tid)

    # Deterministically hold the subordinate in doubt: its TM receives the
    # commit request but waits at a test gate before processing it.
    from repro.sim import Event

    gate = Event(cluster.engine, "commit-gate")
    sub_tm = sub_tabs.tm
    original_commit_handler = sub_tm._handle_commit_req

    def gated_commit(message):
        yield gate
        yield from original_commit_handler(message)

    sub_tm._handle_commit_req = gated_commit

    from repro.wal.records import TransactionStatusRecord, TxnStatus

    def fail_when_prepared():
        while True:
            yield Timeout(cluster.engine, 0.5)
            durable = sub_tabs.rm.wal.read_forward(
                sub_tabs.rm.wal.store.truncated_before)
            if any(isinstance(r, TransactionStatusRecord)
                   and r.status is TxnStatus.PREPARED for r in durable):
                sub_tabs.fail_server("arr_sub")
                return

    watcher = cluster.spawn_on("coord", fail_when_prepared())
    txn = cluster.spawn_on("coord", app.run_transaction(transfer))
    cluster.engine.run(until=cluster.engine.now + 2_000.0)
    assert not watcher.alive

    cluster.run_on("sub", sub_tabs.recover_server_generator("arr_sub"))
    server = sub_tabs.servers["arr_sub"]
    # The in-doubt write is re-locked: nobody else may touch cell 1.
    assert server.library.locks.is_locked(
        server.library.create_object_id(server.base_va, 4))
    gate.succeed()  # the outcome finally gets through
    cluster.engine.run_until(txn)
    cluster.settle(extra_ms=20_000.0)

    def check(tid):
        remote = yield from app.lookup_one("arr_sub")
        result = yield from app.call(remote, "get_cell", {"cell": 1}, tid)
        return result["value"]

    assert cluster.run_transaction("coord", check) == 6
