"""Representative-level semantics of the replicated directory."""

import pytest

from repro import TabsCluster
from repro.servers.replicated_dir import (
    DirectoryRepresentativeServer,
    Replica,
    ReplicatedDirectory,
)
from tests.property.conftest import fast_config


@pytest.fixture
def env():
    cluster = TabsCluster(fast_config())
    cluster.add_node("n1")
    cluster.add_server("n1",
                       DirectoryRepresentativeServer.factory("rep"))
    cluster.start()
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("rep"))

    def create(tid):
        yield from app.call(ref, "create_directory",
                            {"directory": "entries"}, tid)

    cluster.run_transaction("n1", create)
    return cluster, app, ref


def rep_read(cluster, app, ref, key):
    def body(tid):
        result = yield from app.call(ref, "rep_read",
                                     {"directory": "entries", "key": key},
                                     tid)
        return result
    return cluster.run_transaction("n1", body)


def rep_write(cluster, app, ref, key, value, version, deleted=False):
    def body(tid):
        yield from app.call(ref, "rep_write",
                            {"directory": "entries", "key": key,
                             "value": value, "version": version,
                             "deleted": deleted}, tid)
    cluster.run_transaction("n1", body)


def test_absent_key_votes_version_zero(env):
    cluster, app, ref = env
    vote = rep_read(cluster, app, ref, "missing")
    assert vote == {"present": False, "version": 0}


def test_write_then_read_vote(env):
    cluster, app, ref = env
    rep_write(cluster, app, ref, "k", "v1", version=1)
    vote = rep_read(cluster, app, ref, "k")
    assert vote["present"] and vote["version"] == 1
    assert vote["value"] == "v1" and not vote["deleted"]


def test_rep_write_is_insert_or_update(env):
    cluster, app, ref = env
    rep_write(cluster, app, ref, "k", "v1", version=1)
    rep_write(cluster, app, ref, "k", "v2", version=2)
    vote = rep_read(cluster, app, ref, "k")
    assert vote["version"] == 2 and vote["value"] == "v2"


def test_tombstone_vote(env):
    cluster, app, ref = env
    rep_write(cluster, app, ref, "k", "v1", version=1)
    rep_write(cluster, app, ref, "k", None, version=2, deleted=True)
    vote = rep_read(cluster, app, ref, "k")
    assert vote["present"] and vote["deleted"] and vote["version"] == 2


def test_winning_vote_selection():
    votes = [
        (None, {"present": True, "version": 3, "value": "old"}),
        (None, {"present": True, "version": 7, "value": "new"}),
        (None, {"present": False, "version": 0}),
    ]
    winner = ReplicatedDirectory._winning_vote(votes)
    assert winner["version"] == 7 and winner["value"] == "new"


def test_winning_vote_of_all_absent():
    votes = [(None, {"present": False, "version": 0})] * 3
    assert not ReplicatedDirectory._winning_vote(votes)["present"]


def test_weighted_replicas_reach_quorum_with_fewer_sites(env):
    """Weights are Gifford's point: one heavy replica can carry a quorum."""
    cluster, app, ref = env
    heavy = Replica(ref=ref, weight=3)
    directory = ReplicatedDirectory(app, [heavy], read_quorum=2,
                                    write_quorum=2)

    def body(tid):
        yield from directory.insert(tid, "solo", 1)
        value = yield from directory.lookup(tid, "solo")
        return value

    assert cluster.run_transaction("n1", body) == 1
