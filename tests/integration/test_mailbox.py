"""The mailbox server: type-specific locking in action (Section 4.6's
promised exploration)."""

import pytest

from repro import TabsCluster, TabsConfig
from repro.servers.mailbox import MAILBOX_PROTOCOL, PUT, READ, TAKE, \
    MailboxServer
from repro.sim import Timeout


@pytest.fixture
def cluster():
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1", MailboxServer.factory("mail"))
    cluster.start()
    return cluster


@pytest.fixture
def env(cluster):
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("mail"))
    return cluster, app, ref


def test_protocol_matrix():
    assert MAILBOX_PROTOCOL.compatible(PUT, PUT)
    assert MAILBOX_PROTOCOL.compatible(READ, READ)
    assert not MAILBOX_PROTOCOL.compatible(PUT, READ)
    assert not MAILBOX_PROTOCOL.compatible(PUT, TAKE)
    assert not MAILBOX_PROTOCOL.compatible(READ, TAKE)
    assert not MAILBOX_PROTOCOL.compatible(TAKE, TAKE)


def test_put_then_take(env):
    cluster, app, ref = env

    def body(tid):
        yield from app.call(ref, "put", {"mailbox": 0, "message": "hi"},
                            tid)
        yield from app.call(ref, "put", {"mailbox": 0, "message": "there"},
                            tid)
        result = yield from app.call(ref, "take_all", {"mailbox": 0}, tid)
        return result["messages"]

    assert cluster.run_transaction("n1", body) == ["hi", "there"]


def test_mailboxes_are_independent(env):
    cluster, app, ref = env

    def body(tid):
        yield from app.call(ref, "put", {"mailbox": 0, "message": "a"}, tid)
        yield from app.call(ref, "put", {"mailbox": 1, "message": "b"}, tid)
        first = yield from app.call(ref, "read_all", {"mailbox": 0}, tid)
        second = yield from app.call(ref, "read_all", {"mailbox": 1}, tid)
        return first["messages"], second["messages"]

    assert cluster.run_transaction("n1", body) == (["a"], ["b"])


def test_concurrent_puts_do_not_block_each_other(env):
    """The point of the type-specific matrix: two uncommitted senders
    deliver to the same mailbox concurrently -- read/write locking would
    serialize them."""
    cluster, app, ref = env
    progress = []

    def sender(name, hold_ms):
        tid = yield from app.begin_transaction()
        yield from app.call(ref, "put",
                            {"mailbox": 0, "message": name}, tid)
        progress.append((name, "delivered", cluster.engine.now))
        yield Timeout(cluster.engine, hold_ms)
        yield from app.end_transaction(tid)

    first = cluster.spawn_on("n1", sender("first", 5_000.0))
    second = cluster.spawn_on("n1", sender("second", 0.0))
    cluster.engine.run_until(second)
    # The second sender delivered while the first still held its PUT lock.
    assert [name for name, _, _ in progress] == ["first", "second"]
    delivered = {name: at for name, _, at in progress}
    assert delivered["second"] < 1_000.0  # no 5-second wait
    cluster.engine.run_until(first)


def test_take_blocks_until_puts_commit(env):
    cluster, app, ref = env

    def slow_sender():
        tid = yield from app.begin_transaction()
        yield from app.call(ref, "put",
                            {"mailbox": 0, "message": "pending"}, tid)
        yield Timeout(cluster.engine, 3_000.0)
        yield from app.end_transaction(tid)

    sender = cluster.spawn_on("n1", slow_sender())
    cluster.engine.run(until=cluster.engine.now + 1_000.0)

    def drain(tid):
        result = yield from app.call(ref, "take_all", {"mailbox": 0}, tid)
        return result["messages"]

    started = cluster.engine.now
    messages = cluster.run_transaction("n1", drain)
    assert messages == ["pending"]          # saw the committed message
    assert cluster.engine.now - started > 1_500.0  # after waiting for it
    cluster.engine.run_until(sender)


def test_aborted_put_never_appears(env):
    cluster, app, ref = env

    def aborted():
        tid = yield from app.begin_transaction()
        yield from app.call(ref, "put",
                            {"mailbox": 0, "message": "ghost"}, tid)
        yield from app.abort_transaction(tid)

    cluster.run_on("n1", aborted())

    def read(tid):
        result = yield from app.call(ref, "read_all", {"mailbox": 0}, tid)
        return result["messages"]

    assert cluster.run_transaction("n1", read) == []


def test_slots_compact_after_committed_take(env):
    cluster, app, ref = env
    from repro.servers.mailbox import SLOTS_PER_MAILBOX

    def fill_and_drain(round_number):
        def body(tid):
            for index in range(SLOTS_PER_MAILBOX):
                yield from app.call(
                    ref, "put",
                    {"mailbox": 0,
                     "message": f"{round_number}.{index}"}, tid)
            result = yield from app.call(ref, "take_all",
                                         {"mailbox": 0}, tid)
            return len(result["messages"])
        return body

    # Two full rounds through one mailbox: slot space is reused.
    assert cluster.run_transaction(
        "n1", fill_and_drain(0)) == SLOTS_PER_MAILBOX
    assert cluster.run_transaction(
        "n1", fill_and_drain(1)) == SLOTS_PER_MAILBOX


def test_mail_survives_crash(env):
    cluster, app, ref = env

    def deliver(tid):
        yield from app.call(ref, "put",
                            {"mailbox": 2, "message": "important"}, tid)

    cluster.run_transaction("n1", deliver)
    cluster.crash_node("n1")
    cluster.restart_node("n1")
    app2 = cluster.application("n1")

    def drain(tid):
        fresh = yield from app2.lookup_one("mail")
        result = yield from app2.call(fresh, "take_all", {"mailbox": 2},
                                      tid)
        return result["messages"]

    assert cluster.run_transaction("n1", drain) == ["important"]
