"""End-to-end tests for the weak queue server (Section 4.2)."""

import pytest

from repro import TabsCluster, TabsConfig
from repro.servers.weak_queue import WeakQueueServer


@pytest.fixture
def cluster():
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1", WeakQueueServer.factory("queue", capacity=16))
    cluster.start()
    return cluster


@pytest.fixture
def app(cluster):
    return cluster.application("n1")


def enqueue(app, ref, tid, data):
    result = yield from app.call(ref, "enqueue", {"data": data}, tid)
    return result


def dequeue(app, ref, tid):
    result = yield from app.call(ref, "dequeue", {}, tid)
    return result["data"]


def test_enqueue_dequeue_roundtrip(cluster, app):
    def body(tid):
        ref = yield from app.lookup_one("queue")
        yield from enqueue(app, ref, tid, "item")
        value = yield from dequeue(app, ref, tid)
        return value

    assert cluster.run_transaction("n1", body) == "item"


def test_fifo_when_uncontended(cluster, app):
    def producer(tid):
        ref = yield from app.lookup_one("queue")
        for item in ("a", "b", "c"):
            yield from enqueue(app, ref, tid, item)

    def consumer(tid):
        ref = yield from app.lookup_one("queue")
        items = []
        for _ in range(3):
            items.append((yield from dequeue(app, ref, tid)))
        return items

    cluster.run_transaction("n1", producer)
    assert cluster.run_transaction("n1", consumer) == ["a", "b", "c"]


def test_is_queue_empty(cluster, app):
    def check(tid):
        ref = yield from app.lookup_one("queue")
        result = yield from app.call(ref, "is_queue_empty", {}, tid)
        return result["empty"]

    assert cluster.run_transaction("n1", check) is True

    def fill(tid):
        ref = yield from app.lookup_one("queue")
        yield from enqueue(app, ref, tid, 1)

    cluster.run_transaction("n1", fill)
    assert cluster.run_transaction("n1", check) is False


def test_aborted_enqueue_leaves_gap_not_item(cluster, app):
    def aborted():
        tid = yield from app.begin_transaction()
        ref = yield from app.lookup_one("queue")
        yield from enqueue(app, ref, tid, "ghost")
        yield from app.abort_transaction(tid)

    cluster.run_on("n1", aborted())

    def check(tid):
        ref = yield from app.lookup_one("queue")
        result = yield from app.call(ref, "is_queue_empty", {}, tid)
        return result["empty"]

    assert cluster.run_transaction("n1", check) is True


def test_dequeue_skips_element_locked_by_inflight_enqueue(cluster, app):
    """The weak-queue semantics: a dequeuer passes over elements another
    transaction is still manipulating, rather than waiting."""
    from repro.sim import Timeout

    ref = cluster.run_on("n1", app.lookup_one("queue"))

    def committed_then_pending():
        tid = yield from app.begin_transaction()
        yield from enqueue(app, ref, tid, "first")
        yield from app.end_transaction(tid)
        # Second enqueue stays uncommitted while the consumer runs.
        tid2 = yield from app.begin_transaction()
        yield from enqueue(app, ref, tid2, "pending")
        yield Timeout(cluster.engine, 5_000.0)
        yield from app.end_transaction(tid2)

    producer = cluster.spawn_on("n1", committed_then_pending())
    cluster.engine.run(until=cluster.engine.now + 2_000.0)

    def consume(tid):
        value = yield from dequeue(app, ref, tid)
        return value

    # Only "first" is dequeueable; "pending" is locked and skipped.
    assert cluster.run_transaction("n1", consume) == "first"
    cluster.engine.run_until(producer)
    assert cluster.run_transaction("n1", consume) == "pending"


def test_aborted_dequeue_restores_item(cluster, app):
    ref = cluster.run_on("n1", app.lookup_one("queue"))

    def fill(tid):
        yield from enqueue(app, ref, tid, "precious")

    cluster.run_transaction("n1", fill)

    def aborted():
        tid = yield from app.begin_transaction()
        yield from dequeue(app, ref, tid)
        yield from app.abort_transaction(tid)

    cluster.run_on("n1", aborted())

    def consume(tid):
        value = yield from dequeue(app, ref, tid)
        return value

    assert cluster.run_transaction("n1", consume) == "precious"


def test_queue_full_after_capacity_enqueues(cluster, app):
    ref = cluster.run_on("n1", app.lookup_one("queue"))

    def fill(tid):
        for item in range(16):
            yield from enqueue(app, ref, tid, item)

    cluster.run_transaction("n1", fill)

    def overflow(tid):
        yield from enqueue(app, ref, tid, "too much")

    with pytest.raises(Exception, match="slots used"):
        cluster.run_transaction("n1", overflow)


def test_garbage_collection_reclaims_dequeued_slots(cluster, app):
    """Head advance (a side effect of Enqueue) makes the array reusable."""
    ref = cluster.run_on("n1", app.lookup_one("queue"))

    def producer_consumer(round_number):
        def body(tid):
            yield from enqueue(app, ref, tid, round_number)
            value = yield from dequeue(app, ref, tid)
            assert value == round_number
        return body

    # 3x capacity worth of traffic through a 16-slot queue.
    for round_number in range(48):
        cluster.run_transaction("n1", producer_consumer(round_number))


def test_tail_recomputed_after_crash(cluster, app):
    ref = cluster.run_on("n1", app.lookup_one("queue"))

    def fill(tid):
        for item in ("sturdy-1", "sturdy-2"):
            yield from enqueue(app, ref, tid, item)

    cluster.run_transaction("n1", fill)
    cluster.crash_node("n1")
    cluster.restart_node("n1")

    app2 = cluster.application("n1")

    def drain(tid):
        ref2 = yield from app2.lookup_one("queue")
        first = yield from app2.call(ref2, "dequeue", {}, tid)
        second = yield from app2.call(ref2, "dequeue", {}, tid)
        return [first["data"], second["data"]]

    assert cluster.run_transaction("n1", drain) == ["sturdy-1", "sturdy-2"]
