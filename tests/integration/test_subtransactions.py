"""The limited subtransaction facility (Sections 2.1.3, 3.2.3).

- a subtransaction behaves as a completely separate transaction for
  synchronization (it can even deadlock with its siblings);
- it is not committed until its top-level parent commits;
- it can abort without causing its parent to abort;
- when a parent commits or aborts, its live subtransactions go with it.
"""

import pytest

from repro import TabsCluster, TabsConfig, TransactionAborted
from repro.servers.int_array import IntegerArrayServer


@pytest.fixture
def cluster():
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("array"))
    cluster.start()
    return cluster


@pytest.fixture
def env(cluster):
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("array"))
    return cluster, app, ref


def set_cell(app, ref, tid, cell, value):
    yield from app.call(ref, "set_cell", {"cell": cell, "value": value}, tid)


def get_cell(app, ref, tid, cell):
    result = yield from app.call(ref, "get_cell", {"cell": cell}, tid)
    return result["value"]


def read_later(cluster, app, ref, cell):
    def body(tid):
        value = yield from get_cell(app, ref, tid, cell)
        return value
    return cluster.run_transaction("n1", body)


def test_subtransaction_ids_nest(env):
    cluster, app, ref = env

    def body():
        parent = yield from app.begin_transaction()
        child = yield from app.begin_transaction(parent=parent)
        grandchild = yield from app.begin_transaction(parent=child)
        yield from app.end_transaction(grandchild)
        yield from app.end_transaction(child)
        yield from app.end_transaction(parent)
        return parent, child, grandchild

    parent, child, grandchild = cluster.run_on("n1", body())
    assert child.parent == parent
    assert grandchild.parent == child
    assert grandchild.toplevel == parent


def test_subtransaction_commit_is_deferred_to_parent(env):
    """A committed subtransaction's update is invisible to other
    transactions until the top level commits."""
    cluster, app, ref = env
    from repro.sim import Timeout

    def body():
        parent = yield from app.begin_transaction()
        child = yield from app.begin_transaction(parent=parent)
        yield from set_cell(app, ref, child, 1, 42)
        yield from app.end_transaction(child)  # merge into parent
        yield Timeout(cluster.engine, 8_000.0)  # < the 10 s lock time-out
        yield from app.end_transaction(parent)

    process = cluster.spawn_on("n1", body())
    cluster.engine.run(until=cluster.engine.now + 3_000.0)

    # Mid-flight: the child ended, but another reader must still block /
    # not see the value (we use a conditional probe via a short timeout).
    probe_app = cluster.application("n1")

    def probe():
        tid = yield from probe_app.begin_transaction()
        try:
            value = yield from probe_app.call(
                ref, "get_cell", {"cell": 1}, tid)
            return value["value"]
        finally:
            yield from probe_app.abort_transaction(tid)

    probe_process = cluster.spawn_on("n1", probe())
    cluster.engine.run(until=cluster.engine.now + 2_000.0)
    assert not probe_process.processed  # blocked on the inherited lock
    cluster.engine.run_until(process)
    cluster.engine.run_until(probe_process)
    assert probe_process.result() == 42  # granted only after parent commit


def test_subtransaction_abort_spares_parent(env):
    cluster, app, ref = env

    def body():
        parent = yield from app.begin_transaction()
        yield from set_cell(app, ref, parent, 1, 10)
        child = yield from app.begin_transaction(parent=parent)
        yield from set_cell(app, ref, child, 2, 20)
        yield from app.abort_transaction(child)
        committed = yield from app.end_transaction(parent)
        return committed

    assert cluster.run_on("n1", body()) is True
    assert read_later(cluster, app, ref, 1) == 10
    assert read_later(cluster, app, ref, 2) == 0


def test_parent_abort_takes_down_live_children(env):
    cluster, app, ref = env

    def body():
        parent = yield from app.begin_transaction()
        child = yield from app.begin_transaction(parent=parent)
        yield from set_cell(app, ref, child, 1, 5)
        # Child never ends; parent aborts.
        yield from app.abort_transaction(parent)

    cluster.run_on("n1", body())
    assert read_later(cluster, app, ref, 1) == 0


def test_parent_commit_sweeps_up_unended_children(env):
    """When a parent transaction commits, its subtransactions are
    committed as well."""
    cluster, app, ref = env

    def body():
        parent = yield from app.begin_transaction()
        child = yield from app.begin_transaction(parent=parent)
        yield from set_cell(app, ref, child, 3, 33)
        committed = yield from app.end_transaction(parent)
        return committed

    assert cluster.run_on("n1", body()) is True
    assert read_later(cluster, app, ref, 3) == 33


def test_intra_transaction_isolation_between_siblings(env):
    """Subtransactions synchronize like separate transactions: two
    siblings updating the same datum conflict (the paper's noted
    intra-transaction deadlock risk)."""
    cluster, app, ref = env

    def body():
        parent = yield from app.begin_transaction()
        first = yield from app.begin_transaction(parent=parent)
        yield from set_cell(app, ref, first, 1, 1)
        second = yield from app.begin_transaction(parent=parent)
        # The sibling blocks on first's lock until its time-out.
        try:
            yield from app.call(ref, "set_cell",
                                {"cell": 1, "value": 2}, second)
            return "no conflict"
        except Exception as error:
            return type(error).__name__

    # Lock time-outs surface as LockTimeout marshalled through the server.
    assert cluster.run_on("n1", body()) == "LockTimeout"


def test_sibling_can_update_after_sibling_merges(env):
    """Once a subtransaction ends, its locks pass to the parent, and a
    later sibling (same family) may acquire them."""
    cluster, app, ref = env

    def body():
        parent = yield from app.begin_transaction()
        first = yield from app.begin_transaction(parent=parent)
        yield from set_cell(app, ref, first, 1, 1)
        yield from app.end_transaction(first)
        second = yield from app.begin_transaction(parent=parent)
        # The parent holds the lock now; the sibling is a *different*
        # transaction and must fail (strict separation, per the paper).
        try:
            yield from app.call(ref, "set_cell",
                                {"cell": 1, "value": 2}, second)
            outcome = "acquired"
        except Exception as error:
            outcome = type(error).__name__
        yield from app.end_transaction(parent)
        return outcome

    assert cluster.run_on("n1", body()) == "LockTimeout"


def test_begin_under_terminated_parent_rejected(env):
    cluster, app, ref = env

    def body():
        parent = yield from app.begin_transaction()
        yield from app.abort_transaction(parent)
        yield from app.begin_transaction(parent=parent)

    with pytest.raises(TransactionAborted):
        cluster.run_on("n1", body())


def test_crash_before_parent_commit_undoes_merged_child(env):
    cluster, app, ref = env
    from repro.sim import Timeout

    def body():
        parent = yield from app.begin_transaction()
        child = yield from app.begin_transaction(parent=parent)
        yield from set_cell(app, ref, child, 1, 77)
        yield from app.end_transaction(child)
        yield Timeout(cluster.engine, 60_000.0)  # parent never commits

    cluster.spawn_on("n1", body())
    cluster.engine.run(until=cluster.engine.now + 5_000.0)
    cluster.crash_node("n1")
    cluster.restart_node("n1")

    app2 = cluster.application("n1")

    def check(tid):
        ref2 = yield from app2.lookup_one("array")
        result = yield from app2.call(ref2, "get_cell", {"cell": 1}, tid)
        return result["value"]

    assert cluster.run_transaction("n1", check) == 0


def test_committed_parent_with_merged_child_survives_crash(env):
    cluster, app, ref = env

    def body():
        parent = yield from app.begin_transaction()
        child = yield from app.begin_transaction(parent=parent)
        yield from set_cell(app, ref, child, 1, 88)
        yield from app.end_transaction(child)
        yield from set_cell(app, ref, parent, 2, 99)
        yield from app.end_transaction(parent)

    cluster.run_on("n1", body())
    cluster.crash_node("n1")
    cluster.restart_node("n1")

    app2 = cluster.application("n1")

    def check(tid):
        ref2 = yield from app2.lookup_one("array")
        first = yield from app2.call(ref2, "get_cell", {"cell": 1}, tid)
        second = yield from app2.call(ref2, "get_cell", {"cell": 2}, tid)
        return first["value"], second["value"]

    assert cluster.run_transaction("n1", check) == (88, 99)
