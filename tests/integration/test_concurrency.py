"""Concurrent-transaction behaviour: isolation, fairness, determinism."""

from repro import TabsCluster
from repro.servers.int_array import IntegerArrayServer
from repro.sim import Timeout
from tests.property.conftest import fast_config


def build(config=None):
    cluster = TabsCluster(config or fast_config())
    cluster.add_node("n1")
    cluster.add_server("n1", IntegerArrayServer.factory("array"))
    cluster.start()
    return cluster


def test_many_disjoint_writers_all_commit():
    cluster = build()
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("array"))
    outcomes = []

    def writer(index):
        for round_number in range(5):
            tid = yield from app.begin_transaction()
            yield from app.call(ref, "set_cell",
                                {"cell": index + 1,
                                 "value": round_number}, tid)
            ok = yield from app.end_transaction(tid)
            outcomes.append(ok)

    workers = [cluster.spawn_on("n1", writer(index)) for index in range(8)]
    for worker in workers:
        cluster.engine.run_until(worker)
    assert outcomes == [True] * 40

    def verify(tid):
        values = []
        for cell in range(1, 9):
            result = yield from app.call(ref, "get_cell", {"cell": cell},
                                         tid)
            values.append(result["value"])
        return values

    assert cluster.run_transaction("n1", verify) == [4] * 8


def test_conflicting_increments_serialize_correctly():
    """Thirty-two concurrent increments of one cell; two-phase locking
    makes the interleaving equivalent to some serial order, so no
    increment is lost.  (The increments take the write lock up front; a
    read-then-upgrade pattern would deadlock among the readers -- that
    pathology is exercised in the retry test below.)"""
    from repro.servers.op_array import OperationArrayServer

    cluster = TabsCluster(fast_config(lock_timeout_ms=300_000.0))
    cluster.add_node("n1")
    cluster.add_server("n1", OperationArrayServer.factory("counter"))
    cluster.start()
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("counter"))

    def incrementer():
        for _ in range(4):
            tid = yield from app.begin_transaction()
            yield from app.call(ref, "add_cell",
                                {"cell": 1, "delta": 1}, tid)
            ok = yield from app.end_transaction(tid)
            assert ok

    workers = [cluster.spawn_on("n1", incrementer()) for _ in range(8)]
    for worker in workers:
        cluster.engine.run_until(worker)

    def read(tid):
        result = yield from app.call(ref, "get_cell", {"cell": 1}, tid)
        return result["value"]

    assert cluster.run_transaction("n1", read) == 32


def test_retry_loop_recovers_from_deadlocks():
    """Transactions locking two cells in opposite orders deadlock; the
    application-library retry loop (time-out -> abort -> retry) makes
    them all eventually commit."""
    cluster = build(fast_config(lock_timeout_ms=500.0))
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("array"))
    commits = []

    def worker(first, second, value):
        def body(tid):
            yield from app.call(ref, "set_cell",
                                {"cell": first, "value": value}, tid)
            yield Timeout(cluster.engine, 50.0)
            yield from app.call(ref, "set_cell",
                                {"cell": second, "value": value}, tid)

        def run():
            yield from app.run_transaction(body, retries=10)
            commits.append((first, second))

        return run()

    workers = [cluster.spawn_on("n1", worker(1, 2, 10)),
               cluster.spawn_on("n1", worker(2, 1, 20)),
               cluster.spawn_on("n1", worker(1, 2, 30))]
    for process in workers:
        cluster.engine.run_until(process)
    assert len(commits) == 3

    def read(tid):
        first = yield from app.call(ref, "get_cell", {"cell": 1}, tid)
        second = yield from app.call(ref, "get_cell", {"cell": 2}, tid)
        return first["value"], second["value"]

    # Whichever order they serialized in, both cells carry the same
    # (last) writer's value -- the deadlock was broken, nothing was lost.
    first, second = cluster.run_transaction("n1", read)
    assert first in (10, 20, 30) and second in (10, 20, 30)


def test_readers_share_while_writer_waits():
    cluster = build()
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("array"))
    log = []

    def reader(name):
        tid = yield from app.begin_transaction()
        yield from app.call(ref, "get_cell", {"cell": 1}, tid)
        log.append((name, "read", cluster.engine.now))
        yield Timeout(cluster.engine, 2_000.0)
        yield from app.end_transaction(tid)

    def writer():
        yield Timeout(cluster.engine, 100.0)
        tid = yield from app.begin_transaction()
        yield from app.call(ref, "set_cell", {"cell": 1, "value": 1}, tid)
        log.append(("writer", "wrote", cluster.engine.now))
        yield from app.end_transaction(tid)

    workers = [cluster.spawn_on("n1", reader("r1")),
               cluster.spawn_on("n1", reader("r2")),
               cluster.spawn_on("n1", writer())]
    for process in workers:
        cluster.engine.run_until(process)
    reads = [at for name, what, at in log if what == "read"]
    wrote = next(at for _, what, at in log if what == "wrote")
    # Both readers ran concurrently; the writer waited for both commits.
    assert max(reads) < 2_000.0
    assert wrote >= 2_000.0


class TestDeterminism:
    def test_same_seed_same_trace(self):
        """The whole simulation is deterministic: identical configs give
        identical clocks, counters, and results."""
        from repro.perf.benchmarks import BENCHMARKS_BY_KEY, run_benchmark

        first = run_benchmark(BENCHMARKS_BY_KEY["w1w1"], iterations=5)
        second = run_benchmark(BENCHMARKS_BY_KEY["w1w1"], iterations=5)
        assert first.elapsed_ms == second.elapsed_ms
        assert first.precommit_counts == second.precommit_counts
        assert first.commit_counts == second.commit_counts
        assert first.tabs_process_ms == second.tabs_process_ms

    def test_random_paging_reproducible_via_seed(self):
        from repro.perf.benchmarks import BENCHMARKS_BY_KEY, run_benchmark

        first = run_benchmark(BENCHMARKS_BY_KEY["r1_rand"], iterations=10)
        second = run_benchmark(BENCHMARKS_BY_KEY["r1_rand"], iterations=10)
        assert first.elapsed_ms == second.elapsed_ms
