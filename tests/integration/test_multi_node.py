"""Distributed transactions across two and three nodes."""

import pytest

from repro import SessionBroken, TabsCluster, TabsConfig
from repro.servers.int_array import IntegerArrayServer


def make_cluster(node_count=2):
    cluster = TabsCluster(TabsConfig())
    for index in range(node_count):
        name = f"n{index}"
        cluster.add_node(name)
        cluster.add_server(name,
                           IntegerArrayServer.factory(f"array{index}"))
    cluster.start()
    return cluster


def set_cell(app, ref, tid, cell, value):
    yield from app.call(ref, "set_cell", {"cell": cell, "value": value}, tid)


def get_cell(app, ref, tid, cell):
    result = yield from app.call(ref, "get_cell", {"cell": cell}, tid)
    return result["value"]


def test_remote_read_through_broadcast_lookup():
    cluster = make_cluster(2)
    app = cluster.application("n0")

    def body(tid):
        # array1 lives on n1; the name resolves via Name Server broadcast.
        ref = yield from app.lookup_one("array1")
        value = yield from get_cell(app, ref, tid, 1)
        return value

    assert cluster.run_transaction("n0", body) == 0


def test_two_node_write_commits_atomically():
    cluster = make_cluster(2)
    app = cluster.application("n0")

    def transfer(tid):
        local = yield from app.lookup_one("array0")
        remote = yield from app.lookup_one("array1")
        yield from set_cell(app, local, tid, 1, 100)
        yield from set_cell(app, remote, tid, 1, 200)

    cluster.run_transaction("n0", transfer)
    cluster.settle()

    def check(tid):
        local = yield from app.lookup_one("array0")
        remote = yield from app.lookup_one("array1")
        first = yield from get_cell(app, local, tid, 1)
        second = yield from get_cell(app, remote, tid, 1)
        return first, second

    assert cluster.run_transaction("n0", check) == (100, 200)


def test_two_node_abort_undoes_both_nodes():
    cluster = make_cluster(2)
    app = cluster.application("n0")

    def aborted():
        tid = yield from app.begin_transaction()
        local = yield from app.lookup_one("array0")
        remote = yield from app.lookup_one("array1")
        yield from set_cell(app, local, tid, 1, 111)
        yield from set_cell(app, remote, tid, 1, 222)
        yield from app.abort_transaction(tid)

    cluster.run_on("n0", aborted())
    cluster.settle()

    def check(tid):
        local = yield from app.lookup_one("array0")
        remote = yield from app.lookup_one("array1")
        first = yield from get_cell(app, local, tid, 1)
        second = yield from get_cell(app, remote, tid, 1)
        return first, second

    assert cluster.run_transaction("n0", check) == (0, 0)


def test_three_node_write_commit():
    cluster = make_cluster(3)
    app = cluster.application("n0")

    def body(tid):
        for index in range(3):
            ref = yield from app.lookup_one(f"array{index}")
            yield from set_cell(app, ref, tid, 1, index + 1)

    cluster.run_transaction("n0", body)
    cluster.settle()

    def check(tid):
        values = []
        for index in range(3):
            ref = yield from app.lookup_one(f"array{index}")
            values.append((yield from get_cell(app, ref, tid, 1)))
        return values

    assert cluster.run_transaction("n0", check) == [1, 2, 3]


def test_remote_crash_before_commit_aborts_transaction():
    cluster = make_cluster(2)
    app = cluster.application("n0")

    def body():
        tid = yield from app.begin_transaction()
        local = yield from app.lookup_one("array0")
        remote = yield from app.lookup_one("array1")
        yield from set_cell(app, local, tid, 1, 5)
        yield from set_cell(app, remote, tid, 1, 5)
        cluster.crash_node("n1")
        committed = yield from app.end_transaction(tid)
        return committed

    assert cluster.run_on("n0", body()) is False
    cluster.settle()

    def check(tid):
        local = yield from app.lookup_one("array0")
        value = yield from get_cell(app, local, tid, 1)
        return value

    assert cluster.run_transaction("n0", check) == 0


def test_call_to_crashed_node_raises_session_broken():
    cluster = make_cluster(2)
    app = cluster.application("n0")
    ref = cluster.run_on("n0", app.lookup_one("array1"))
    cluster.crash_node("n1")

    def body(tid):
        yield from get_cell(app, ref, tid, 1)

    with pytest.raises(SessionBroken):
        cluster.run_transaction("n0", body)


def test_stale_reference_after_restart_is_transparently_re_resolved():
    """A reference minted before the serving node restarted is stale; the
    RPC layer re-resolves it through the Name Server automatically, so
    the caller never sees the restart."""
    cluster = make_cluster(2)
    app = cluster.application("n0")
    ref = cluster.run_on("n0", app.lookup_one("array1"))
    cluster.crash_node("n1")
    cluster.restart_node("n1")

    def stale(tid):
        value = yield from get_cell(app, ref, tid, 1)
        return value

    assert cluster.run_transaction("n0", stale) == 0
    assert cluster.meter.counter("rpc_retries") >= 1


def test_stale_reference_fails_fast_when_retries_disabled():
    from repro.rpc.stubs import call

    cluster = make_cluster(2)
    app = cluster.application("n0")
    ref = cluster.run_on("n0", app.lookup_one("array1"))
    cluster.crash_node("n1")
    cluster.restart_node("n1")

    def stale(tid):
        yield from call(cluster.network, cluster.node("n0").node, ref,
                        "get_cell", {"cell": 1}, tid, retries=0)

    with pytest.raises(SessionBroken, match="stale"):
        cluster.run_transaction("n0", stale)


def test_committed_distributed_write_survives_participant_crash():
    cluster = make_cluster(2)
    app = cluster.application("n0")

    def transfer(tid):
        local = yield from app.lookup_one("array0")
        remote = yield from app.lookup_one("array1")
        yield from set_cell(app, local, tid, 1, 42)
        yield from set_cell(app, remote, tid, 1, 43)

    cluster.run_transaction("n0", transfer)
    cluster.settle()
    cluster.crash_node("n1")
    cluster.restart_node("n1")

    def check(tid):
        remote = yield from app.lookup_one("array1")
        value = yield from get_cell(app, remote, tid, 1)
        return value

    assert cluster.run_transaction("n0", check) == 43


def test_participant_crash_while_prepared_blocks_then_resolves():
    """Two-phase commit's blocking window: a participant that crashes
    after voting finds the PREPARED record at recovery, re-locks the data,
    queries the coordinator, and commits."""
    cluster = make_cluster(2)
    app = cluster.application("n0")
    remote_tabs = cluster.node("n1")

    # Intercept the subordinate's vote moment by crashing n1 immediately
    # after its PREPARED record is forced.  We detect that via the log.
    def transfer(tid):
        local = yield from app.lookup_one("array0")
        remote = yield from app.lookup_one("array1")
        yield from set_cell(app, local, tid, 1, 7)
        yield from set_cell(app, remote, tid, 1, 8)

    from repro.wal.records import TransactionStatusRecord, TxnStatus

    coordinator_tabs = cluster.node("n0")

    def crash_when_prepared():
        """Crash n1 in the window where it is PREPARED and the coordinator
        has durably COMMITTED, but before n1 processes the commit request."""
        from repro.sim import Timeout
        while True:
            yield Timeout(cluster.engine, 0.5)
            remote_log = remote_tabs.rm.wal.read_forward(
                remote_tabs.rm.wal.store.truncated_before)
            prepared = any(
                isinstance(r, TransactionStatusRecord)
                and r.status is TxnStatus.PREPARED for r in remote_log)
            committed_at_remote = any(
                isinstance(r, TransactionStatusRecord)
                and r.status is TxnStatus.COMMITTED for r in remote_log)
            coordinator_log = coordinator_tabs.rm.wal.read_forward(
                coordinator_tabs.rm.wal.store.truncated_before)
            committed = any(
                isinstance(r, TransactionStatusRecord)
                and r.status is TxnStatus.COMMITTED
                for r in coordinator_log)
            if prepared and committed and not committed_at_remote:
                cluster.crash_node("n1")
                return

    watcher = cluster.spawn_on("n0", crash_when_prepared(), name="watcher")
    app_process = cluster.spawn_on(
        "n0", app.run_transaction(transfer), name="txn")
    cluster.engine.run(until=cluster.engine.now + 5_000.0)
    assert not watcher.alive  # the crash fired in the in-doubt window

    # The restarted participant finds the PREPARED record, re-locks, asks
    # the coordinator, and learns "committed".
    cluster.restart_node("n1")
    report = cluster.node("n1").last_recovery
    assert len(report.prepared_restored) == 1
    cluster.engine.run_until(app_process)
    cluster.settle(extra_ms=15_000.0)

    def check(tid):
        remote = yield from app.lookup_one("array1")
        value = yield from get_cell(app, remote, tid, 1)
        return value

    assert cluster.run_transaction("n0", check) == 8
