"""Crash/restart scenarios for both recovery algorithms."""

from repro import TabsCluster, TabsConfig
from repro.servers.int_array import IntegerArrayServer
from repro.servers.op_array import OperationArrayServer


def make_cluster(server_factory=None):
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1",
                       server_factory or IntegerArrayServer.factory("array"))
    cluster.start()
    return cluster


def run_set(cluster, app, cell, value, name="array"):
    def body(tid):
        ref = yield from app.lookup_one(name)
        yield from app.call(ref, "set_cell",
                            {"cell": cell, "value": value}, tid)
    cluster.run_transaction("n1", body)


def run_get(cluster, app, cell, name="array"):
    def body(tid):
        ref = yield from app.lookup_one(name)
        result = yield from app.call(ref, "get_cell", {"cell": cell}, tid)
        return result["value"]
    return cluster.run_transaction("n1", body)


class TestValueLoggingRecovery:
    def test_committed_updates_survive_crash(self):
        cluster = make_cluster()
        app = cluster.application("n1")
        for cell in range(1, 6):
            run_set(cluster, app, cell, cell * 11)
        cluster.crash_node("n1")
        cluster.restart_node("n1")
        app = cluster.application("n1")
        assert [run_get(cluster, app, cell) for cell in range(1, 6)] == \
            [11, 22, 33, 44, 55]

    def test_uncommitted_update_is_undone_by_crash(self):
        cluster = make_cluster()
        app = cluster.application("n1")
        run_set(cluster, app, 1, 10)

        def in_flight():
            tid = yield from app.begin_transaction()
            ref = yield from app.lookup_one("array")
            yield from app.call(ref, "set_cell",
                                {"cell": 1, "value": 999}, tid)
            from repro.sim import Timeout
            yield Timeout(cluster.engine, 60_000.0)

        cluster.spawn_on("n1", in_flight())
        cluster.engine.run(until=cluster.engine.now + 1_000.0)
        cluster.crash_node("n1")
        cluster.restart_node("n1")
        app = cluster.application("n1")
        assert run_get(cluster, app, 1) == 10

    def test_update_in_log_buffer_only_is_lost_cleanly(self):
        """An unforced update (commit not reached) vanishes: the volatile
        log buffer dies with the node, and no page escaped to disk."""
        cluster = make_cluster()
        app = cluster.application("n1")

        def begin_only():
            tid = yield from app.begin_transaction()
            ref = yield from app.lookup_one("array")
            yield from app.call(ref, "set_cell",
                                {"cell": 2, "value": 7}, tid)

        cluster.run_on("n1", begin_only())  # never commits
        cluster.crash_node("n1")
        cluster.restart_node("n1")
        app = cluster.application("n1")
        assert run_get(cluster, app, 2) == 0

    def test_double_crash(self):
        cluster = make_cluster()
        app = cluster.application("n1")
        run_set(cluster, app, 1, 1)
        cluster.crash_node("n1")
        cluster.restart_node("n1")
        app = cluster.application("n1")
        run_set(cluster, app, 2, 2)
        cluster.crash_node("n1")
        cluster.restart_node("n1")
        app = cluster.application("n1")
        assert run_get(cluster, app, 1) == 1
        assert run_get(cluster, app, 2) == 2

    def test_latest_committed_value_wins(self):
        cluster = make_cluster()
        app = cluster.application("n1")
        for value in (1, 2, 3):
            run_set(cluster, app, 1, value)
        cluster.crash_node("n1")
        cluster.restart_node("n1")
        app = cluster.application("n1")
        assert run_get(cluster, app, 1) == 3


class TestOperationLoggingRecovery:
    def make(self):
        cluster = make_cluster(OperationArrayServer.factory("oparray"))
        return cluster, cluster.application("n1")

    def add(self, cluster, app, cell, delta):
        def body(tid):
            ref = yield from app.lookup_one("oparray")
            result = yield from app.call(ref, "add_cell",
                                         {"cell": cell, "delta": delta},
                                         tid)
            return result["value"]
        return cluster.run_transaction("n1", body)

    def get(self, cluster, app, cell):
        def body(tid):
            ref = yield from app.lookup_one("oparray")
            result = yield from app.call(ref, "get_cell",
                                         {"cell": cell}, tid)
            return result["value"]
        return cluster.run_transaction("n1", body)

    def test_committed_operations_redone(self):
        cluster, app = self.make()
        assert self.add(cluster, app, 1, 5) == 5
        assert self.add(cluster, app, 1, 7) == 12
        cluster.crash_node("n1")
        report = cluster.restart_node("n1")
        assert report.operations_redone >= 2
        app = cluster.application("n1")
        assert self.get(cluster, app, 1) == 12

    def test_uncommitted_operation_undone(self):
        cluster, app = self.make()
        self.add(cluster, app, 1, 10)

        def in_flight():
            tid = yield from app.begin_transaction()
            ref = yield from app.lookup_one("oparray")
            yield from app.call(ref, "add_cell",
                                {"cell": 1, "delta": 100}, tid)
            from repro.sim import Timeout
            yield Timeout(cluster.engine, 60_000.0)

        cluster.spawn_on("n1", in_flight())
        cluster.engine.run(until=cluster.engine.now + 1_000.0)
        cluster.crash_node("n1")
        cluster.restart_node("n1")
        app = cluster.application("n1")
        assert self.get(cluster, app, 1) == 10

    def test_multi_page_operation_one_record(self):
        cluster, app = self.make()
        tabs = cluster.node("n1")

        def fill(tid):
            ref = yield from app.lookup_one("oparray")
            # 400 cells span 4 pages (128 words per page).
            yield from app.call(ref, "fill_range",
                                {"start": 1, "count": 400, "value": 9}, tid)

        before = tabs.rm.wal.last_lsn
        cluster.run_transaction("n1", fill)
        from repro.wal.records import OperationRecord
        durable = tabs.rm.wal.read_forward(
            tabs.rm.wal.store.truncated_before)
        new_records = [r for r in durable
                       if r.lsn > before and isinstance(r, OperationRecord)]
        assert len(new_records) == 1
        assert len(list(new_records[0].oids[0].pages())) >= 4

        cluster.crash_node("n1")
        cluster.restart_node("n1")
        app = cluster.application("n1")
        assert self.get(cluster, app, 1) == 9
        assert self.get(cluster, app, 400) == 9
        assert self.get(cluster, app, 401) == 0

    def test_aborted_fill_restores_old_values(self):
        cluster, app = self.make()
        self.add(cluster, app, 5, 50)

        def aborted():
            tid = yield from app.begin_transaction()
            ref = yield from app.lookup_one("oparray")
            yield from app.call(ref, "fill_range",
                                {"start": 1, "count": 10, "value": 0}, tid)
            yield from app.abort_transaction(tid)

        cluster.run_on("n1", aborted())
        assert self.get(cluster, app, 5) == 50

    def test_abort_then_crash_does_not_double_undo(self):
        """Compensation records keep recovery from undoing twice."""
        cluster, app = self.make()
        self.add(cluster, app, 1, 10)

        def aborted():
            tid = yield from app.begin_transaction()
            ref = yield from app.lookup_one("oparray")
            yield from app.call(ref, "add_cell",
                                {"cell": 1, "delta": 5}, tid)
            yield from app.abort_transaction(tid)

        cluster.run_on("n1", aborted())
        assert self.get(cluster, app, 1) == 10
        cluster.crash_node("n1")
        cluster.restart_node("n1")
        app = cluster.application("n1")
        assert self.get(cluster, app, 1) == 10


class TestCheckpointsAndReclamation:
    def test_checkpoint_bounds_recovery_scan(self):
        cluster = make_cluster()
        app = cluster.application("n1")
        tabs = cluster.node("n1")
        for cell in range(1, 30):
            run_set(cluster, app, cell, cell)
        # Take a checkpoint (as the Transaction Manager would periodically).
        cluster.run_on("n1", tabs.rm.take_checkpoint({}, flush=True))
        for cell in range(30, 35):
            run_set(cluster, app, cell, cell)
        cluster.crash_node("n1")
        report = cluster.restart_node("n1")
        # Everything still correct...
        app = cluster.application("n1")
        assert run_get(cluster, app, 1) == 1
        assert run_get(cluster, app, 34) == 34
        # ...and the value pass stopped at the checkpoint bound: it decided
        # far fewer objects than were ever written.
        assert report.values_restored <= 10

    def test_log_reclamation_under_pressure(self):
        config = TabsConfig(log_capacity_records=300)
        cluster = TabsCluster(config)
        cluster.add_node("n1")
        cluster.add_server("n1", IntegerArrayServer.factory("array"))
        cluster.start()
        app = cluster.application("n1")
        tabs = cluster.node("n1")
        # Enough traffic to overflow a 300-record store several times.
        for round_number in range(150):
            run_set(cluster, app, (round_number % 10) + 1, round_number)
        cluster.settle()
        assert tabs.rm.reclamations > 0
        assert len(tabs.log_store) < 300
        # And the data survives a crash even after truncation.
        cluster.crash_node("n1")
        cluster.restart_node("n1")
        app = cluster.application("n1")
        assert run_get(cluster, app, 10) == 149

    def test_recovery_truncates_after_clean_point(self):
        cluster = make_cluster()
        app = cluster.application("n1")
        for cell in range(1, 10):
            run_set(cluster, app, cell, cell)
        cluster.crash_node("n1")
        cluster.restart_node("n1")
        tabs = cluster.node("n1")
        # Post-recovery checkpoint + truncation leave a short log.
        assert len(tabs.log_store) <= 2


class TestAbortCompensation:
    """Abort processing's undo writes bypass the write-ahead gate, so
    they are logged as value compensation records: without them, a
    checkpoint taken before the abort would let recovery's backward scan
    stop short of the undo and resurrect the flushed pre-abort value."""

    def test_abort_after_checkpoint_and_flush_survives_crash(self):
        cluster = make_cluster()
        app = cluster.application("n1")
        tabs = cluster.node("n1")
        run_set(cluster, app, 1, 10)

        def scenario():
            tid = yield from app.begin_transaction()
            ref = yield from app.lookup_one("array")
            yield from app.call(ref, "set_cell",
                                {"cell": 1, "value": 999}, tid)
            # The uncommitted 999 reaches disk (page stealing), and the
            # checkpoint then bounds the next recovery's backward scan
            # *after* the update record.
            yield from tabs.node.vm.flush_all()
            yield from tabs.rm.take_checkpoint(
                tabs.tm.active_transactions())
            yield from app.abort_transaction(tid)

        cluster.run_on("n1", scenario())
        # The undone page is only dirty in volatile memory; the crash
        # discards it, so recovery must reproduce the undo from the log.
        cluster.crash_node("n1")
        cluster.restart_node("n1")
        app = cluster.application("n1")
        assert run_get(cluster, app, 1) == 10

    def test_compensated_abort_is_idempotent_across_recoveries(self):
        cluster = make_cluster()
        app = cluster.application("n1")
        tabs = cluster.node("n1")
        run_set(cluster, app, 2, 5)

        def aborted():
            tid = yield from app.begin_transaction()
            ref = yield from app.lookup_one("array")
            yield from app.call(ref, "set_cell",
                                {"cell": 2, "value": 777}, tid)
            yield from app.abort_transaction(tid)

        cluster.run_on("n1", aborted())
        for _ in range(2):
            cluster.crash_node("n1")
            cluster.restart_node("n1")
        app = cluster.application("n1")
        assert run_get(cluster, app, 2) == 5
        del tabs
