"""End-to-end tests for the I/O server's transaction-based display model."""

import pytest

from repro import TabsCluster, TabsConfig
from repro.servers.io_server import IOServer


@pytest.fixture
def cluster():
    cluster = TabsCluster(TabsConfig())
    cluster.add_node("n1")
    cluster.add_server("n1", IOServer.factory("display"))
    cluster.start()
    return cluster


@pytest.fixture
def env(cluster):
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("display"))

    def obtain(tid):
        result = yield from app.call(ref, "obtain_io_area", {}, tid)
        return result["area"]

    area = cluster.run_transaction("n1", obtain)
    return cluster, app, ref, area


def render(cluster, app, ref, area):
    def body(tid):
        result = yield from app.call(ref, "render_area", {"area": area}, tid)
        return result["lines"]
    return cluster.run_transaction("n1", body)


def test_committed_output_renders_black(env):
    cluster, app, ref, area = env

    def body(tid):
        yield from app.call(ref, "write_to_area",
                            {"area": area, "data": "deposited $35"}, tid)

    cluster.run_transaction("n1", body)
    assert render(cluster, app, ref, area) == ["  deposited $35"]


def test_in_progress_output_renders_grey(env):
    cluster, app, ref, area = env
    from repro.sim import Timeout

    def slow():
        app2 = cluster.application("n1")
        tid = yield from app2.begin_transaction()
        yield from app2.call(ref, "write_to_area",
                             {"area": area, "data": "pending..."}, tid)
        yield Timeout(cluster.engine, 10_000.0)
        yield from app2.end_transaction(tid)

    writer = cluster.spawn_on("n1", slow())
    cluster.engine.run(until=cluster.engine.now + 2_000.0)
    assert render(cluster, app, ref, area) == ["~ pending..."]
    cluster.engine.run_until(writer)
    assert render(cluster, app, ref, area) == ["  pending..."]


def test_aborted_output_is_struck_through_not_erased(env):
    cluster, app, ref, area = env

    def aborted():
        app2 = cluster.application("n1")
        tid = yield from app2.begin_transaction()
        yield from app2.call(ref, "write_to_area",
                             {"area": area, "data": "withdraw $80"}, tid)
        yield from app2.abort_transaction(tid)

    cluster.run_on("n1", aborted())
    lines = render(cluster, app, ref, area)
    assert len(lines) == 1
    assert "-" in lines[0]          # struck through
    assert "withdraw" in lines[0]   # but still legible


def test_output_survives_client_abort_because_io_is_not_failure_atomic(env):
    cluster, app, ref, area = env

    def aborted():
        app2 = cluster.application("n1")
        tid = yield from app2.begin_transaction()
        yield from app2.call(ref, "write_to_area",
                             {"area": area, "data": "tentative"}, tid)
        yield from app2.abort_transaction(tid)

    cluster.run_on("n1", aborted())
    # The characters are still there (permanent), only re-styled.
    assert len(render(cluster, app, ref, area)) == 1


def test_read_line_echoes_boxed_input(env):
    cluster, app, ref, area = env

    def feed(tid):
        yield from app.call(ref, "feed_input",
                            {"area": area, "data": "35"}, tid)

    cluster.run_transaction("n1", feed)

    def body(tid):
        result = yield from app.call(ref, "read_line_from_area",
                                     {"area": area}, tid)
        return result["data"]

    assert cluster.run_transaction("n1", body) == "35"
    lines = render(cluster, app, ref, area)
    assert any("[35]" in line for line in lines)


def test_crash_restores_screen_with_interrupted_txn_struck(env):
    """Figure 4-1's area two: the node failed during the transaction,
    causing it to abort; the restored screen strikes its output through."""
    cluster, app, ref, area = env

    def committed(tid):
        yield from app.call(ref, "write_to_area",
                            {"area": area, "data": "deposit ok"}, tid)

    cluster.run_transaction("n1", committed)

    def in_flight():
        app2 = cluster.application("n1")
        tid = yield from app2.begin_transaction()
        yield from app2.call(ref, "write_to_area",
                             {"area": area, "data": "withdraw $80"}, tid)
        from repro.sim import Timeout
        yield Timeout(cluster.engine, 60_000.0)

    cluster.spawn_on("n1", in_flight())
    cluster.engine.run(until=cluster.engine.now + 2_000.0)

    cluster.crash_node("n1")
    cluster.restart_node("n1")

    app3 = cluster.application("n1")

    def rerender(tid):
        ref2 = yield from app3.lookup_one("display")
        result = yield from app3.call(ref2, "render_area",
                                      {"area": area}, tid)
        return result["lines"]

    lines = cluster.run_transaction("n1", rerender)
    assert lines[0] == "  deposit ok"          # black: really happened
    assert "-" in lines[1] and "withdraw" in lines[1]  # struck through


def test_multiple_areas_are_independent(cluster):
    app = cluster.application("n1")
    ref = cluster.run_on("n1", app.lookup_one("display"))

    def two_areas(tid):
        first = yield from app.call(ref, "obtain_io_area", {}, tid)
        second = yield from app.call(ref, "obtain_io_area", {}, tid)
        return first["area"], second["area"]

    area1, area2 = cluster.run_transaction("n1", two_areas)
    assert area1 != area2

    def write(area, text):
        def body(tid):
            yield from app.call(ref, "write_to_area",
                                {"area": area, "data": text}, tid)
        return body

    cluster.run_transaction("n1", write(area1, "one"))
    cluster.run_transaction("n1", write(area2, "two"))
    assert render(cluster, app, ref, area1) == ["  one"]
    assert render(cluster, app, ref, area2) == ["  two"]
