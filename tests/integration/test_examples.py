"""Smoke tests: every shipped example runs to completion.

The examples are part of the public surface; each is executed in-process
(the simulation is deterministic and fast) and its assertions are real.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    path.stem
    for path in (Path(__file__).parents[2] / "examples").glob("*.py"))


def test_every_example_is_covered():
    assert EXAMPLES == ["bank_terminal", "crash_recovery",
                        "distributed_mail", "print_spooler", "quickstart",
                        "replicated_directory", "weak_queue_pipeline"]


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    path = Path(__file__).parents[2] / "examples" / f"{name}.py"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_quickstart_output_shape(capsys):
    path = Path(__file__).parents[2] / "examples" / "quickstart.py"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert "committed transaction wrote and read back: 100" in out
    assert "after crash + recovery the cell holds: 100" in out


def test_bank_terminal_shows_all_three_styles(capsys):
    path = Path(__file__).parents[2] / "examples" / "bank_terminal.py"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert "~ " in out          # grey, in progress
    assert "-withdraw-" in out  # struck through after the crash
    assert "[80]" in out        # boxed user input
